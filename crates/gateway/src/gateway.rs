//! The gateway facade: admission, routing, and batched serving.

use crate::config::{GatewayConfig, TenantConfig};
use crate::error::{GatewayError, QuotaResource, Result};
use crate::pool::TenantPool;
use crate::session::{SessionState, SessionTable};
use crate::stats::{GatewayStats, SlotStatsRow, TenantStats};
use glimmer_core::blinding::MaskShare;
use glimmer_core::channel::{ChannelAccept, ChannelOffer};
use glimmer_core::enclave_app::MaskDelivery;
use glimmer_core::protocol::{BatchItem, BatchOutcome};
use glimmer_crypto::drbg::Drbg;
use sgx_sim::{AttestationService, Measurement};
use std::collections::BTreeMap;

/// One drained reply, routed back to the device that owns the session.
#[derive(Debug, Clone)]
pub struct GatewayResponse {
    /// The session the reply belongs to.
    pub session_id: u64,
    /// The owning tenant.
    pub tenant: String,
    /// The enclave's outcome for the item.
    pub outcome: BatchOutcome,
}

struct TenantState {
    pool: TenantPool,
    stats: TenantStats,
}

/// A sharded, multi-tenant enclave-pool server for glimmer-as-a-service
/// traffic.
///
/// The gateway owns, per tenant, a pool of pre-provisioned Glimmer enclaves
/// (image built, platform attested, endorsement key installed — all paid once
/// at start-up), a session table mapping device sessions onto pool slots with
/// least-loaded sharding, per-slot request queues drained through one
/// `PROCESS_BATCH` ECALL per round, and admission control (session quotas,
/// queue-depth backpressure, endorsement budgets).
///
/// The gateway itself is *untrusted*, exactly like the remote host of
/// Section 4.2: it only ever sees ciphertext, attestation transcripts, and
/// the public one-bit endorsed/failed outcome per request.
pub struct Gateway {
    config: GatewayConfig,
    tenants: BTreeMap<String, TenantState>,
    table: SessionTable,
}

impl Gateway {
    /// Builds the gateway: creates and provisions `slots_per_tenant` enclaves
    /// for every tenant up front.
    pub fn new(
        config: GatewayConfig,
        tenants: Vec<TenantConfig>,
        avs: &mut AttestationService,
        rng: &mut Drbg,
    ) -> Result<Self> {
        let mut states: BTreeMap<String, TenantState> = BTreeMap::new();
        for tenant in tenants {
            let name = tenant.name.clone();
            if states.contains_key(&name) {
                return Err(GatewayError::DuplicateTenant(name));
            }
            let pool = TenantPool::new(
                tenant,
                config.slots_per_tenant,
                &config.platform_config,
                rng,
                avs,
            )?;
            states.insert(
                name,
                TenantState {
                    pool,
                    stats: TenantStats::default(),
                },
            );
        }
        Ok(Gateway {
            config,
            tenants: states,
            table: SessionTable::new(),
        })
    }

    /// The enrolled tenant names, in deterministic order.
    #[must_use]
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }

    /// The measurement a device connecting to `tenant` must verify.
    pub fn measurement(&self, tenant: &str) -> Result<Measurement> {
        Ok(self.tenant(tenant)?.pool.measurement())
    }

    fn tenant(&self, name: &str) -> Result<&TenantState> {
        self.tenants
            .get(name)
            .ok_or_else(|| GatewayError::UnknownTenant(name.to_string()))
    }

    fn tenant_mut(&mut self, name: &str) -> Result<&mut TenantState> {
        self.tenants
            .get_mut(name)
            .ok_or_else(|| GatewayError::UnknownTenant(name.to_string()))
    }

    /// Opens a device session for `tenant`: admits it against the session
    /// quota, pins it to the least-loaded pool slot, and returns the
    /// attestation offer the device verifies.
    pub fn open_session(&mut self, tenant: &str) -> Result<(u64, ChannelOffer)> {
        let slot_id = {
            let state = self.tenant_mut(tenant)?;
            if state.pool.total_sessions() >= state.pool.config.quota.max_sessions {
                state.stats.throttled += 1;
                return Err(GatewayError::QuotaExceeded {
                    tenant: tenant.to_string(),
                    resource: QuotaResource::Sessions,
                });
            }
            state.pool.least_loaded_slot()
        };
        let session_id = self.table.open(tenant, slot_id);
        let state = self.tenant_mut(tenant)?;
        let slot = &mut state.pool.slots[slot_id];
        match slot.client_mut().open_session(session_id) {
            Ok(offer) => {
                slot.session_opened();
                state.stats.sessions_opened += 1;
                Ok((session_id, offer))
            }
            Err(e) => {
                let _ = self.table.close(session_id);
                Err(GatewayError::Glimmer(e))
            }
        }
    }

    /// Completes a session's attested handshake with the device's response.
    pub fn complete_session(&mut self, session_id: u64, accept: &ChannelAccept) -> Result<()> {
        let entry = self.table.get(session_id)?;
        if entry.state == SessionState::Established {
            return Err(GatewayError::SessionAlreadyEstablished(session_id));
        }
        let (tenant, slot_id) = (entry.tenant.clone(), entry.slot);
        let state = self.tenant_mut(&tenant)?;
        if let Err(e) = state.pool.slots[slot_id]
            .client_mut()
            .accept_session(session_id, accept)
        {
            // The enclave consumed the pending handshake, so this session id
            // can never complete; tear it down instead of leaving a wedged
            // Pending entry pinning the slot and the tenant's session quota.
            // The device retries by opening a fresh session.
            let _ = self.close_session(session_id);
            return Err(GatewayError::Glimmer(e));
        }
        self.table.establish(session_id)?;
        Ok(())
    }

    /// Closes a session: erases its channel keys inside the enclave and
    /// discards any requests it still had queued.
    pub fn close_session(&mut self, session_id: u64) -> Result<()> {
        let entry = self.table.close(session_id)?;
        let state = self.tenant_mut(&entry.tenant)?;
        let slot = &mut state.pool.slots[entry.slot];
        let dropped = slot.discard_session_items(session_id);
        slot.session_closed();
        slot.client_mut()
            .close_session(session_id)
            .map_err(GatewayError::Glimmer)?;
        state.stats.dropped += dropped as u64;
        state.stats.sessions_closed += 1;
        Ok(())
    }

    /// Installs a blinding mask share into the enclave serving `session_id`
    /// (the tenant's blinding service issues one per client and round).
    ///
    /// The mask is bound to the session inside the enclave: the session
    /// becomes authorized to contribute as the mask's client id, and only as
    /// client ids bound this way. That binding is what stops co-located
    /// sessions on a pooled slot from impersonating each other's devices.
    ///
    /// This plaintext variant hands the mask values to the gateway process,
    /// so it is only appropriate when the tenant operates the gateway
    /// itself. Against an untrusted gateway, use the attested tenant
    /// channel ([`Gateway::tenant_channel_offer`]) and
    /// [`Gateway::install_mask_encrypted`], which keep mask values sealed
    /// end-to-end between the tenant and the enclave.
    pub fn install_mask(&mut self, session_id: u64, mask: &MaskShare) -> Result<()> {
        self.install_mask_delivery(session_id, &MaskDelivery::plain(mask))
    }

    /// Installs a session-bound mask from an AEAD-encrypted delivery sealed
    /// under the tenant's attested channel to the session's slot. The
    /// gateway relays the ciphertext; only the enclave can open it.
    pub fn install_mask_encrypted(
        &mut self,
        session_id: u64,
        nonce: [u8; 12],
        ciphertext: Vec<u8>,
    ) -> Result<()> {
        self.install_mask_delivery(session_id, &MaskDelivery::Encrypted { nonce, ciphertext })
    }

    fn install_mask_delivery(&mut self, session_id: u64, delivery: &MaskDelivery) -> Result<()> {
        let entry = self.table.get(session_id)?;
        let (tenant, slot_id) = (entry.tenant.clone(), entry.slot);
        let state = self.tenant_mut(&tenant)?;
        state.pool.slots[slot_id]
            .client_mut()
            .install_session_mask_delivery(session_id, delivery)
            .map_err(GatewayError::Glimmer)
    }

    /// The pool slot a session is pinned to — the tenant needs it to seal
    /// mask deliveries under the right slot's channel key.
    pub fn session_slot(&self, session_id: u64) -> Result<usize> {
        Ok(self.table.get(session_id)?.slot)
    }

    /// Number of pool slots serving `tenant`.
    pub fn slot_count(&self, tenant: &str) -> Result<usize> {
        Ok(self.tenant(tenant)?.pool.slots.len())
    }

    /// Starts the attested tenant channel on one pool slot: returns the
    /// enclave's offer for the *tenant* (not a device) to verify and answer.
    /// Once completed, the tenant can seal mask deliveries to that slot.
    pub fn tenant_channel_offer(&mut self, tenant: &str, slot: usize) -> Result<ChannelOffer> {
        let state = self.tenant_mut(tenant)?;
        let slot_state =
            state
                .pool
                .slots
                .get_mut(slot)
                .ok_or_else(|| GatewayError::UnknownSlot {
                    tenant: tenant.to_string(),
                    slot,
                })?;
        slot_state
            .client_mut()
            .start_channel()
            .map_err(GatewayError::Glimmer)
    }

    /// Completes the attested tenant channel on one pool slot.
    pub fn complete_tenant_channel(
        &mut self,
        tenant: &str,
        slot: usize,
        accept: &ChannelAccept,
    ) -> Result<()> {
        let state = self.tenant_mut(tenant)?;
        let slot_state =
            state
                .pool
                .slots
                .get_mut(slot)
                .ok_or_else(|| GatewayError::UnknownSlot {
                    tenant: tenant.to_string(),
                    slot,
                })?;
        slot_state
            .client_mut()
            .complete_channel(accept)
            .map_err(GatewayError::Glimmer)
    }

    /// Admits one encrypted request into its session's slot queue.
    ///
    /// Rejections are typed: quota exhaustion ([`GatewayError::QuotaExceeded`])
    /// and queue-depth backpressure ([`GatewayError::Backpressure`]) both leave
    /// the request unqueued so the device can retry elsewhere or later.
    pub fn submit(&mut self, session_id: u64, ciphertext: Vec<u8>) -> Result<()> {
        let entry = self.table.get(session_id)?;
        if entry.state != SessionState::Established {
            return Err(GatewayError::SessionNotEstablished(session_id));
        }
        let (tenant, slot_id) = (entry.tenant.clone(), entry.slot);
        let max_queue_depth = self.config.max_queue_depth;
        let state = self.tenant_mut(&tenant)?;

        if state.pool.total_queued() >= state.pool.config.quota.max_queued {
            state.stats.throttled += 1;
            return Err(GatewayError::QuotaExceeded {
                tenant,
                resource: QuotaResource::QueuedRequests,
            });
        }
        // Endorsement budget: only endorsements consume it, but queued
        // requests reserve against it so the budget can never overshoot
        // mid-batch. A rejected contribution releases its reservation at
        // drain time (queue shrinks, `endorsed` does not grow).
        if let Some(budget) = state.pool.config.quota.endorsement_budget {
            let reserved = state.stats.endorsed + state.pool.total_queued() as u64;
            if reserved >= budget {
                state.stats.throttled += 1;
                return Err(GatewayError::QuotaExceeded {
                    tenant,
                    resource: QuotaResource::Endorsements,
                });
            }
        }
        let slot = &mut state.pool.slots[slot_id];
        if slot.queue_depth() >= max_queue_depth {
            state.stats.throttled += 1;
            return Err(GatewayError::Backpressure {
                tenant,
                slot: slot_id,
                depth: slot.queue_depth(),
            });
        }
        slot.enqueue(BatchItem {
            session_id,
            ciphertext,
        });
        state.stats.submitted += 1;
        Ok(())
    }

    /// Drains every slot's queue through its enclave — one `PROCESS_BATCH`
    /// ECALL per non-empty slot, up to `max_batch` items each — and returns
    /// the replies for the caller to route back to devices.
    ///
    /// A slot whose whole-batch ECALL fails keeps its items queued and does
    /// not abort the sweep: replies already produced by other slots carry
    /// endorsements that consumed budget and replay nonces, so they must
    /// reach their devices. The first slot error is reported only after the
    /// sweep, and only if no responses were produced at all.
    pub fn drain(&mut self) -> Result<Vec<GatewayResponse>> {
        let max_batch = self.config.max_batch;
        let mut responses = Vec::new();
        let mut first_error: Option<GatewayError> = None;
        for (name, state) in &mut self.tenants {
            for slot in &mut state.pool.slots {
                let reply = match slot.drain(max_batch) {
                    Ok(Some(reply)) => reply,
                    Ok(None) => continue,
                    Err(e) => {
                        first_error.get_or_insert(e);
                        continue;
                    }
                };
                for item in reply.items {
                    match &item.outcome {
                        BatchOutcome::Reply { endorsed: true, .. } => state.stats.endorsed += 1,
                        BatchOutcome::Reply {
                            endorsed: false, ..
                        } => state.stats.rejected += 1,
                        BatchOutcome::Failed(_) => state.stats.failed += 1,
                    }
                    responses.push(GatewayResponse {
                        session_id: item.session_id,
                        tenant: name.clone(),
                        outcome: item.outcome,
                    });
                }
            }
        }
        match first_error {
            Some(e) if responses.is_empty() => Err(e),
            _ => Ok(responses),
        }
    }

    /// Drains repeatedly until every queue is empty (bounded by queue sizes,
    /// since devices cannot enqueue while this runs).
    ///
    /// Like [`Gateway::drain`], replies already produced are never dropped:
    /// if a sweep fails after earlier sweeps yielded replies, the replies
    /// collected so far are returned and the error resurfaces on the next
    /// call (the failing slot keeps its items queued).
    pub fn drain_all(&mut self) -> Result<Vec<GatewayResponse>> {
        let mut all = Vec::new();
        loop {
            match self.drain() {
                Ok(batch) if batch.is_empty() => break,
                Ok(batch) => all.extend(batch),
                Err(e) if all.is_empty() => return Err(e),
                Err(_) => break,
            }
        }
        Ok(all)
    }

    /// Requests currently queued for `tenant` across its slots.
    pub fn queued(&self, tenant: &str) -> Result<usize> {
        Ok(self.tenant(tenant)?.pool.total_queued())
    }

    /// Live sessions (pending + established) across all tenants.
    #[must_use]
    pub fn live_sessions(&self) -> usize {
        self.table.len()
    }

    /// Closes every session still pending after `older_than` and returns the
    /// evicted ids. Without this, a client that requests handshake offers
    /// and never completes them would pin its tenant's session quota
    /// forever; operators call this on a timer.
    pub fn evict_stale_pending(&mut self, older_than: std::time::Duration) -> Vec<u64> {
        let stale = self.table.stale_pending(older_than);
        for &session_id in &stale {
            let _ = self.close_session(session_id);
        }
        stale
    }

    /// A labelled snapshot of every counter the gateway keeps.
    #[must_use]
    pub fn stats(&self) -> GatewayStats {
        let mut stats = GatewayStats::default();
        for (name, state) in &self.tenants {
            stats.tenants.push((name.clone(), state.stats.clone()));
            for slot in &state.pool.slots {
                stats.slots.push(SlotStatsRow {
                    tenant: name.clone(),
                    slot: slot.slot_id,
                    stats: slot.stats(),
                });
            }
        }
        stats
    }
}
