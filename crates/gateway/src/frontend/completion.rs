//! Waker-notified completion cells: the async replacement for the blocking
//! per-command reply channel.
//!
//! Every gateway command that used to answer over a one-shot
//! `std::sync::mpsc` channel (the caller parked in `recv`) can instead carry
//! a [`Completer`]: the shard worker delivers the result into the shared
//! cell and wakes whichever task is parked on the matching [`Completion`]
//! future. One front-end thread can therefore have thousands of commands in
//! flight — one per session task — where the blocking path pinned a whole
//! OS thread per outstanding reply.
//!
//! The pair is deliberately tiny: a mutex-guarded `Option<T>` plus an
//! `Option<Waker>`. A dropped-without-delivering [`Completer`] (the worker
//! died, or the command was abandoned in a shard queue at shutdown) closes
//! the cell, so the future resolves to
//! [`GatewayError::RuntimeUnavailable`](crate::GatewayError::RuntimeUnavailable)
//! instead of pending forever — the exact analogue of `recv` returning
//! `RecvError` when the sender side is gone.
//!
//! Lock acquisitions recover from poisoning (the cell holds a plain
//! value/waker pair with no invariant a mid-panic unwind can break): a task
//! that panics while a shard worker is mid-`complete` must fail alone, not
//! cascade a poison panic through every other session's completion cell.

use crate::error::{GatewayError, Result};
use crate::frontend::lock_unpoisoned;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Shared state of one completion cell.
struct State<T> {
    /// The delivered value, if any (taken by the awaiting future).
    value: Option<T>,
    /// The waker of the task currently parked on the future, if any.
    waker: Option<Waker>,
    /// True once the [`Completer`] was dropped without delivering.
    closed: bool,
}

/// Creates a linked completer/future pair for one command's reply.
pub(crate) fn completion_pair<T>() -> (Completer<T>, Completion<T>) {
    let state = Arc::new(Mutex::new(State {
        value: None,
        waker: None,
        closed: false,
    }));
    (
        Completer {
            state: Arc::clone(&state),
            delivered: false,
        },
        Completion { state },
    )
}

/// The delivering half, carried inside a shard command. Exactly one of
/// [`Completer::complete`] or the drop-without-delivering close will run.
pub(crate) struct Completer<T> {
    state: Arc<Mutex<State<T>>>,
    delivered: bool,
}

impl<T> Completer<T> {
    /// Delivers the reply and wakes the awaiting task, if one is parked.
    pub(crate) fn complete(mut self, value: T) {
        let waker = {
            let mut state = lock_unpoisoned(&self.state);
            state.value = Some(value);
            state.waker.take()
        };
        self.delivered = true;
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

impl<T> Drop for Completer<T> {
    fn drop(&mut self) {
        if self.delivered {
            return;
        }
        // The command died before producing a reply (worker gone, queue
        // abandoned). Close the cell and wake the waiter so it observes
        // `RuntimeUnavailable` instead of parking forever.
        let waker = {
            let mut state = lock_unpoisoned(&self.state);
            state.closed = true;
            state.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// The awaiting half: a future resolving to the delivered reply, or to
/// [`GatewayError::RuntimeUnavailable`] when the command was abandoned.
pub(crate) struct Completion<T> {
    state: Arc<Mutex<State<T>>>,
}

impl<T> Future for Completion<T> {
    type Output = Result<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = lock_unpoisoned(&self.state);
        if let Some(value) = state.value.take() {
            return Poll::Ready(Ok(value));
        }
        if state.closed {
            return Poll::Ready(Err(GatewayError::RuntimeUnavailable));
        }
        // Re-register every poll: the executor may poll through a fresh
        // waker after moving the task, and only the latest one may be woken.
        state.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::task::Wake;

    struct Flag(std::sync::atomic::AtomicBool);

    impl Wake for Flag {
        fn wake(self: Arc<Self>) {
            self.0.store(true, std::sync::atomic::Ordering::SeqCst);
        }
    }

    fn flag_waker() -> (Arc<Flag>, Waker) {
        let flag = Arc::new(Flag(std::sync::atomic::AtomicBool::new(false)));
        (Arc::clone(&flag), Waker::from(Arc::clone(&flag)))
    }

    fn poll_once<T>(completion: &mut Completion<T>, waker: &Waker) -> Poll<Result<T>> {
        Pin::new(completion).poll(&mut Context::from_waker(waker))
    }

    #[test]
    fn delivery_wakes_and_resolves() {
        let (completer, mut completion) = completion_pair::<u32>();
        let (flag, waker) = flag_waker();
        assert!(poll_once(&mut completion, &waker).is_pending());
        completer.complete(7);
        assert!(flag.0.load(std::sync::atomic::Ordering::SeqCst));
        assert_eq!(poll_once(&mut completion, &waker), Poll::Ready(Ok(7)));
    }

    #[test]
    fn delivery_before_first_poll_is_immediate() {
        let (completer, mut completion) = completion_pair::<u32>();
        completer.complete(9);
        let (_, waker) = flag_waker();
        assert_eq!(poll_once(&mut completion, &waker), Poll::Ready(Ok(9)));
    }

    #[test]
    fn dropped_completer_closes_with_runtime_unavailable() {
        let (completer, mut completion) = completion_pair::<u32>();
        let (flag, waker) = flag_waker();
        assert!(poll_once(&mut completion, &waker).is_pending());
        drop(completer);
        assert!(flag.0.load(std::sync::atomic::Ordering::SeqCst));
        assert_eq!(
            poll_once(&mut completion, &waker),
            Poll::Ready(Err(GatewayError::RuntimeUnavailable))
        );
    }
}
