//! A dependency-free, single-threaded future executor for session tasks.
//!
//! The front-end's whole job is to multiplex thousands of device sessions
//! onto one connection-handling thread, so the executor is built for exactly
//! that shape and nothing more:
//!
//! * **Slab of tasks** — spawned futures live in a slot vector with a free
//!   list; a [`TaskId`] is `(slot, generation)`, and the generation guards
//!   against a stale waker reviving whatever task reused the slot.
//! * **Own `RawWaker` vtable** — the waker is a hand-rolled
//!   [`std::task::RawWakerVTable`] over an `Arc`'d wake handle (no `async` runtime
//!   crates, no [`std::task::Wake`] indirection), so the crate stays
//!   dependency-free and the whole wake path is a screenful of code.
//! * **Readiness queue with parking** — wakes (typically delivered by shard
//!   worker threads completing a command through the crate-internal
//!   completion cells) push the task id onto a
//!   mutex+condvar queue; [`SessionExecutor::run`] pops and polls in wake
//!   order and parks the thread when nothing is runnable. No spinning.
//! * **Hierarchical timer wheel** — [`SessionExecutor::sleep_until`] (and
//!   [`TimerHandle`]) registers deadlines against the executor's injected
//!   [`Clock`]; the run loop fires due timers before each poll and bounds
//!   its park by the nearest deadline. Idle-connection timeouts, periodic
//!   stale-session eviction, and drain ticks all ride this wheel instead of
//!   spawning helper threads.
//! * **Pluggable park** — the `net` module's epoll reactor can replace the
//!   condvar park (the crate-internal `SessionExecutor::attach_parker`,
//!   used by `net::serve_on`): the executor then
//!   parks in `epoll_wait`, and cross-thread wakes ring an eventfd doorbell
//!   so shard-worker completions and socket readiness share one wait.
//!
//! # Panic containment
//!
//! A panicking task must not take its neighbours down. Two layers enforce
//! that: every internal mutex acquisition recovers from poisoning (the
//! protected state is a plain queue/cell with no invariants a mid-panic
//! unwind can break), and each poll runs under
//! [`std::panic::catch_unwind`] — a panic retires *that* task only (its
//! dropped completers resolve to
//! [`RuntimeUnavailable`](crate::GatewayError::RuntimeUnavailable) for
//! anyone awaiting it) and is counted in
//! [`SessionExecutor::panicked_tasks`]. Healthy sessions sharing the
//! executor keep running.
//!
//! Determinism: tasks are first polled in spawn order, wakes are queued in
//! delivery order, and the executor never reorders the queue. Micro-timing
//! still races benignly — a completion delivered *before* its first poll
//! resolves inline and consumes no wake, so poll/wakeup *counts* vary
//! run-to-run — but such a race only ever lets a task run *earlier*, never
//! reorders one task's own commands, and the gateway operations that
//! consume enclave randomness (session opens, batch processing) keep their
//! per-slot order under it. That is the property experiment E15 pins: at
//! [`GatewayConfig::shards`](crate::GatewayConfig) `= 1`, async serving
//! outputs are bit-identical to the blocking driver's, run after run.
//!
//! The executor spawns no threads: every poll runs on the thread that calls
//! [`SessionExecutor::run`]. That is the load-bearing claim of the async
//! front-end (E15 asserts the process thread count to pin it down).

use crate::clock::{Clock, SystemClock};
use crate::frontend::lock_unpoisoned;
use crate::telemetry::Telemetry;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

/// Identifier of a spawned task: its slab slot plus the generation that was
/// live when it was spawned (slot reuse bumps the generation, so ids never
/// alias across task lifetimes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskId {
    slot: usize,
    generation: u64,
}

/// A cross-thread doorbell rung on every ready-queue push once attached.
///
/// The `net` reactor implements this over an eventfd: when the executor is
/// parked in `epoll_wait` rather than on the queue condvar, a shard worker
/// delivering a completion must kick the epoll set, not just the condvar.
pub(crate) trait Doorbell: Send + Sync {
    /// Wakes the parked reactor; must be cheap and callable from any thread.
    fn ring(&self);
}

/// How the executor parks when nothing is runnable. The default is the
/// ready queue's condvar; the `net` reactor substitutes `epoll_wait` so
/// socket readiness wakes the same loop.
pub(crate) trait Parker {
    /// Parks until a wake arrives or `timeout` elapses (`None` = no bound),
    /// waking any tasks whose I/O became ready. Spurious returns are fine:
    /// the run loop re-checks the ready queue and timer wheel every pass.
    fn park(&self, timeout: Option<Duration>);
}

/// The cross-thread readiness queue: wakers push `(slot, generation,
/// wake-time)` triples, the executor pops them in order and parks when the
/// queue is empty. With a telemetry hub attached, each entry carries the
/// hub clock's reading at enqueue time so the executor can histogram the
/// wake-to-poll scheduling delay.
///
/// Every lock acquisition recovers from poisoning: the protected state is a
/// plain `VecDeque` that is valid at every point a panic could unwind
/// through, so taking the inner guard is sound — and it keeps one panicking
/// session task from cascading a poison panic into every other session
/// sharing the executor.
struct ReadyQueue {
    queue: Mutex<VecDeque<(usize, u64, u64)>>,
    available: Condvar,
    /// Wakes delivered (scheduling events), for the E15 metrics.
    wakeups: AtomicU64,
    /// Telemetry hub stamped onto wake entries once attached
    /// ([`SessionExecutor::attach_telemetry`]); absent, entries carry 0 and
    /// nothing is recorded.
    telemetry: OnceLock<Arc<Telemetry>>,
    /// Reactor doorbell ([`SessionExecutor::attach_parker`]); absent, the
    /// condvar notify alone delivers the wake.
    doorbell: OnceLock<Arc<dyn Doorbell>>,
}

impl ReadyQueue {
    fn push(&self, slot: usize, generation: u64) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        let wake_nanos = self.telemetry.get().map_or(0, |hub| hub.now_nanos());
        let mut queue = lock_unpoisoned(&self.queue);
        queue.push_back((slot, generation, wake_nanos));
        drop(queue);
        // One waiter at most: the executor is single-threaded by design.
        self.available.notify_one();
        if let Some(bell) = self.doorbell.get() {
            bell.ring();
        }
    }

    /// Pops the next ready task if one is queued.
    fn try_pop(&self) -> Option<(usize, u64, u64)> {
        lock_unpoisoned(&self.queue).pop_front()
    }

    /// Pops the next ready task, parking the thread until one arrives.
    /// The run loop itself uses the timeout-bounded [`ReadyQueue::wait_ready`]
    /// (timers must keep firing); this unbounded variant serves tests that
    /// need to observe a wake with no timer armed.
    #[cfg(test)]
    fn pop_wait(&self) -> (usize, u64, u64) {
        let mut queue = lock_unpoisoned(&self.queue);
        loop {
            if let Some(entry) = queue.pop_front() {
                return entry;
            }
            queue = self
                .available
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Parks until the queue is (or becomes) non-empty or `timeout` elapses.
    /// The emptiness re-check happens under the queue mutex — the same mutex
    /// `push` notifies under — so a wake between the check and the wait
    /// cannot be lost.
    fn wait_ready(&self, timeout: Option<Duration>) {
        let queue = lock_unpoisoned(&self.queue);
        if !queue.is_empty() {
            return;
        }
        match timeout {
            None => {
                let _unused = self
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            Some(timeout) => {
                let _unused = self
                    .available
                    .wait_timeout(queue, timeout)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

/// What one waker wakes: a task slot in a specific generation, plus the
/// queue to schedule it on. Shard worker threads hold clones of this (inside
/// [`Waker`]s registered by pending completions), so it must be `Send +
/// Sync` even though the executor itself never leaves its thread.
struct WakeHandle {
    slot: usize,
    generation: u64,
    ready: Arc<ReadyQueue>,
}

impl WakeHandle {
    fn wake(&self) {
        self.ready.push(self.slot, self.generation);
    }
}

/// The hand-rolled `RawWaker` vtable over `Arc<WakeHandle>`.
///
/// This is one of the two corners of the crate that need `unsafe` (the
/// other being the raw syscall shims): the vtable functions receive the
/// type-erased `*const ()` the `Arc` was turned into
/// and must reconstruct it. The invariants are the standard `Arc::into_raw`
/// contract, kept locally checkable:
///
/// * `waker` creates the pointer with `Arc::into_raw`, so it is always a
///   valid `Arc<WakeHandle>` allocation with at least one strong count.
/// * `clone` bumps the strong count without taking ownership.
/// * `wake` (by value) and `drop` each consume exactly one strong count via
///   `Arc::from_raw`.
/// * `wake_by_ref` only borrows, never consumes.
#[allow(unsafe_code)]
mod raw {
    use super::WakeHandle;
    use std::sync::Arc;
    use std::task::{RawWaker, RawWakerVTable, Waker};

    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, wake, wake_by_ref, drop_raw);

    unsafe fn clone(data: *const ()) -> RawWaker {
        // SAFETY: `data` came from `Arc::into_raw` (see module docs); bump
        // the count to mint an independent handle without dropping ours.
        unsafe { Arc::increment_strong_count(data.cast::<WakeHandle>()) };
        RawWaker::new(data, &VTABLE)
    }

    unsafe fn wake(data: *const ()) {
        // SAFETY: by-value wake consumes the waker's strong count.
        let handle = unsafe { Arc::from_raw(data.cast::<WakeHandle>()) };
        handle.wake();
    }

    unsafe fn wake_by_ref(data: *const ()) {
        // SAFETY: borrow only; the waker keeps its strong count.
        let handle = unsafe { &*data.cast::<WakeHandle>() };
        handle.wake();
    }

    unsafe fn drop_raw(data: *const ()) {
        // SAFETY: dropping the waker releases its strong count.
        drop(unsafe { Arc::from_raw(data.cast::<WakeHandle>()) });
    }

    pub(super) fn waker(handle: Arc<WakeHandle>) -> Waker {
        let raw = RawWaker::new(Arc::into_raw(handle).cast::<()>(), &VTABLE);
        // SAFETY: the vtable upholds the RawWaker contract per module docs.
        unsafe { Waker::from_raw(raw) }
    }
}

/// Wheel granularity: one tick is `1 << TICK_SHIFT` nanoseconds (~1.05 ms).
const TICK_SHIFT: u32 = 20;
/// Slots per wheel level; each level covers 64x the span of the one below.
const WHEEL_SLOTS: usize = 64;
/// Wheel levels; together they cover `64^4` ticks (~4.9 hours). Deadlines
/// beyond that wait in an overflow list and cascade in when the horizon
/// advances far enough.
const WHEEL_LEVELS: usize = 4;

/// One registered deadline. There is no cancellation: a timer whose task
/// completed first fires into a stale waker, which the generation check
/// discards — the cost of a spurious fire is one ignored queue entry.
struct TimerEntry {
    deadline_nanos: u64,
    waker: Waker,
}

/// The hierarchical timer wheel. Single-threaded (owned by the executor
/// behind an `Rc<RefCell<..>>`); ticks are derived from the executor's
/// injected [`Clock`], so a [`ManualClock`](crate::ManualClock) drives it
/// deterministically in tests.
///
/// Firing is tick-granular: an entry fires when the wheel advances past its
/// deadline's tick, so a fire may be up to one tick (~1 ms) early or — for
/// an entry registered at an already-elapsed deadline — one tick late.
/// Callers ([`Sleep`], idle-deadline futures) re-check the clock on wake
/// and re-register when the real deadline has not passed, so the wheel only
/// ever schedules wake-ups; it never decides elapsed time itself.
pub(crate) struct TimerWheel {
    /// Clock reading at construction; tick 0.
    origin_nanos: u64,
    current_tick: u64,
    levels: Vec<Vec<Vec<TimerEntry>>>,
    overflow: Vec<TimerEntry>,
    len: usize,
}

impl TimerWheel {
    fn new(origin_nanos: u64) -> Self {
        TimerWheel {
            origin_nanos,
            current_tick: 0,
            levels: (0..WHEEL_LEVELS)
                .map(|_| (0..WHEEL_SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            overflow: Vec::new(),
            len: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_for(&self, nanos: u64) -> u64 {
        nanos.saturating_sub(self.origin_nanos) >> TICK_SHIFT
    }

    fn insert(&mut self, deadline_nanos: u64, waker: Waker) {
        self.len += 1;
        let entry = TimerEntry {
            deadline_nanos,
            waker,
        };
        // An already-due deadline (the clock advanced between the caller's
        // check and this insert) lands on the next tick instead of a slot
        // the wheel has already passed and would never visit again.
        let tick = self.tick_for(deadline_nanos).max(self.current_tick + 1);
        let delta = tick - self.current_tick;
        let mut level = 0;
        let mut span = WHEEL_SLOTS as u64;
        while level < WHEEL_LEVELS && delta >= span {
            level += 1;
            span = span.saturating_mul(WHEEL_SLOTS as u64);
        }
        if level == WHEEL_LEVELS {
            self.overflow.push(entry);
            return;
        }
        let slot = ((tick >> (6 * level as u32)) % WHEEL_SLOTS as u64) as usize;
        self.levels[level][slot].push(entry);
    }

    /// Earliest registered deadline, if any. A linear scan: it runs once per
    /// executor park, and even a thousand armed idle timers cost only a
    /// thousand comparisons.
    fn next_deadline(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        let entries = self
            .levels
            .iter()
            .flatten()
            .flatten()
            .chain(self.overflow.iter());
        for entry in entries {
            min = Some(min.map_or(entry.deadline_nanos, |m: u64| m.min(entry.deadline_nanos)));
        }
        min
    }

    /// Advances the wheel to `now`, waking every entry whose tick has been
    /// reached (higher levels cascade down at their slot boundaries).
    /// Returns the number of timers fired.
    ///
    /// Dead stretches are skipped in strides rather than tick-by-tick: the
    /// wheel only ever needs to *visit* a tick that is the earliest
    /// registered deadline (something fires there) or a level boundary
    /// (higher-level entries redistribute there). A multi-hour manual-clock
    /// jump therefore costs thousands of stops, not millions.
    fn advance(&mut self, now_nanos: u64) -> u64 {
        let target = self.tick_for(now_nanos);
        let mut fired = 0u64;
        while self.current_tick < target {
            let Some(min_deadline) = self.next_deadline() else {
                self.current_tick = target;
                break;
            };
            // An insert clamped past its (already-elapsed) deadline sits a
            // tick or two after `tick_for(min_deadline)`; bounding the
            // stride by `current + 1` walks those few ticks one at a time.
            let due_tick = self.tick_for(min_deadline).max(self.current_tick + 1);
            let next_boundary = (self.current_tick / WHEEL_SLOTS as u64 + 1) * WHEEL_SLOTS as u64;
            let tick = due_tick.min(next_boundary).min(target);
            self.current_tick = tick;
            // Cascade top-down at each crossed boundary, so redistributed
            // entries land in their final slot before the level-0 drain
            // below reaches it.
            if tick.is_multiple_of((WHEEL_SLOTS as u64).pow(WHEEL_LEVELS as u32)) {
                let pending = std::mem::take(&mut self.overflow);
                self.reinsert(pending);
            }
            for level in (1..WHEEL_LEVELS).rev() {
                if tick.is_multiple_of((WHEEL_SLOTS as u64).pow(level as u32)) {
                    let slot = ((tick >> (6 * level as u32)) % WHEEL_SLOTS as u64) as usize;
                    let pending = std::mem::take(&mut self.levels[level][slot]);
                    self.reinsert(pending);
                }
            }
            let slot = (tick % WHEEL_SLOTS as u64) as usize;
            for entry in self.levels[0][slot].drain(..) {
                entry.waker.wake();
                fired += 1;
                self.len -= 1;
            }
        }
        fired
    }

    fn reinsert(&mut self, entries: Vec<TimerEntry>) {
        for entry in entries {
            self.len -= 1; // insert re-counts it
            self.insert(entry.deadline_nanos, entry.waker);
        }
    }
}

/// A clone-able handle for registering deadlines on the executor's timer
/// wheel from inside tasks (not `Send`: it stays on the executor thread,
/// like the tasks themselves).
///
/// Obtained from [`SessionExecutor::timer`]. Deadlines are absolute
/// nanosecond readings of the executor's injected [`Clock`], so the same
/// code is driven by wall time in production and by a
/// [`ManualClock`](crate::ManualClock) in tests.
#[derive(Clone)]
pub struct TimerHandle {
    wheel: Rc<RefCell<TimerWheel>>,
    clock: Arc<dyn Clock>,
}

impl TimerHandle {
    /// The executor clock's current reading.
    #[must_use]
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Resolves once the executor clock reaches `deadline_nanos` (an
    /// already-elapsed deadline resolves on first poll).
    #[must_use]
    pub fn sleep_until(&self, deadline_nanos: u64) -> Sleep {
        Sleep {
            wheel: Rc::clone(&self.wheel),
            clock: Arc::clone(&self.clock),
            deadline_nanos,
        }
    }

    /// Resolves once `duration` has elapsed on the executor clock.
    #[must_use]
    pub fn sleep(&self, duration: Duration) -> Sleep {
        self.sleep_until(
            self.clock
                .now_nanos()
                .saturating_add(duration.as_nanos() as u64),
        )
    }
}

impl core::fmt::Debug for TimerHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TimerHandle")
            .field("armed", &self.wheel.borrow().len)
            .finish_non_exhaustive()
    }
}

/// Future returned by [`TimerHandle::sleep_until`] /
/// [`SessionExecutor::sleep_until`]: pending until the executor clock
/// reaches the deadline.
///
/// Every pending poll re-registers the current waker on the wheel, so the
/// future stays correct when the executor re-polls it through a fresh waker
/// and under spurious wake-ups (it simply re-checks the clock).
pub struct Sleep {
    wheel: Rc<RefCell<TimerWheel>>,
    clock: Arc<dyn Clock>,
    deadline_nanos: u64,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if self.clock.now_nanos() >= self.deadline_nanos {
            return Poll::Ready(());
        }
        self.wheel
            .borrow_mut()
            .insert(self.deadline_nanos, cx.waker().clone());
        Poll::Pending
    }
}

impl core::fmt::Debug for Sleep {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Sleep")
            .field("deadline_nanos", &self.deadline_nanos)
            .finish_non_exhaustive()
    }
}

/// One slab slot: the task's future (while alive) and the slot's current
/// generation. The waker is created once per spawn and cloned per poll.
struct Slot {
    future: Option<Pin<Box<dyn Future<Output = ()>>>>,
    generation: u64,
    waker: Option<Waker>,
}

/// Upper bound on a timer-driven park. The wheel's deadlines are readings
/// of an *injected* clock that real time may not track (a `ManualClock`
/// advanced by a test thread, a lagging replay clock), so the executor
/// never trusts a deadline to convert into a wall-clock wait: it parks at
/// most this long and re-reads the clock. An idle executor with armed
/// timers therefore wakes at most ~100 times a second — measured noise
/// against a single epoll_wait syscall — and a manual clock advance is
/// observed within one bound regardless of who advances it.
const MAX_TIMER_PARK: Duration = Duration::from_millis(10);

/// The single-threaded session executor.
///
/// Spawn one future per device session (plus driver tasks — submitters,
/// drainers), then call [`SessionExecutor::run`] to drive everything to
/// completion on the calling thread. Futures need not be `Send`: they never
/// leave this thread. Wakes may arrive from any thread (the shard workers
/// deliver them), which is what lets one front-end thread park instead of
/// spin while enclaves work.
///
/// # Examples
///
/// ```
/// use glimmer_gateway::frontend::SessionExecutor;
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut executor = SessionExecutor::new();
/// let counter = Rc::new(Cell::new(0));
/// for _ in 0..3 {
///     let counter = Rc::clone(&counter);
///     executor.spawn(async move { counter.set(counter.get() + 1) });
/// }
/// executor.run();
/// assert_eq!(counter.get(), 3);
/// assert_eq!(executor.live_tasks(), 0);
/// ```
pub struct SessionExecutor {
    slots: Vec<Slot>,
    free: Vec<usize>,
    live: usize,
    ready: Arc<ReadyQueue>,
    polls: u64,
    clock: Arc<dyn Clock>,
    timers: Rc<RefCell<TimerWheel>>,
    parker: Option<Rc<dyn Parker>>,
    panicked: u64,
    injected: InjectedTasks,
}

/// Futures handed to the executor by a [`Spawner`], adopted before the
/// next poll.
type InjectedTasks = Rc<RefCell<Vec<Pin<Box<dyn Future<Output = ()>>>>>>;

/// A task-side spawn handle: lets a running task (the front door's accept
/// loop) hand new tasks to its own executor.
///
/// [`SessionExecutor::spawn`] needs `&mut self`, which a task polled *by*
/// the executor can never hold; a `Spawner` instead queues the future and
/// the run loop adopts it before its next poll. Not `Send` — it only works
/// from tasks on the owning executor's thread, which is the only place a
/// task can be running anyway.
#[derive(Clone)]
pub struct Spawner {
    injected: InjectedTasks,
}

impl Spawner {
    /// Queues `future` for adoption; it is spawned (and first polled)
    /// before the executor's next poll of any task.
    pub fn spawn(&self, future: impl Future<Output = ()> + 'static) {
        self.injected.borrow_mut().push(Box::pin(future));
    }
}

impl Default for SessionExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionExecutor {
    /// Creates an executor with no tasks, timing against a fresh
    /// [`SystemClock`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_clock(Arc::new(SystemClock::new()))
    }

    /// Creates an executor whose timer wheel reads `clock` — inject the
    /// gateway's [`ManualClock`](crate::ManualClock) to drive timeouts and
    /// eviction deterministically in tests.
    #[must_use]
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        let origin = clock.now_nanos();
        SessionExecutor {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            ready: Arc::new(ReadyQueue {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                wakeups: AtomicU64::new(0),
                telemetry: OnceLock::new(),
                doorbell: OnceLock::new(),
            }),
            polls: 0,
            clock,
            timers: Rc::new(RefCell::new(TimerWheel::new(origin))),
            parker: None,
            panicked: 0,
            injected: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Spawns a task. It is scheduled immediately (first polls happen in
    /// spawn order) and runs to completion under [`SessionExecutor::run`].
    pub fn spawn(&mut self, future: impl Future<Output = ()> + 'static) -> TaskId {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(Slot {
                    future: None,
                    generation: 0,
                    waker: None,
                });
                self.slots.len() - 1
            }
        };
        let generation = self.slots[slot].generation;
        let id = TaskId { slot, generation };
        self.slots[slot].future = Some(Box::pin(future));
        self.slots[slot].waker = Some(raw::waker(Arc::new(WakeHandle {
            slot,
            generation,
            ready: Arc::clone(&self.ready),
        })));
        self.live += 1;
        self.ready.push(slot, generation);
        id
    }

    /// Tasks spawned and not yet run to completion.
    #[must_use]
    pub fn live_tasks(&self) -> usize {
        self.live
    }

    /// Total polls performed (each is one resumption of one task).
    #[must_use]
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Total scheduling events (spawns + wakes) delivered to the ready
    /// queue, including those from shard worker threads.
    #[must_use]
    pub fn wakeups(&self) -> u64 {
        self.ready.wakeups.load(Ordering::Relaxed)
    }

    /// Tasks retired because they panicked mid-poll (each was contained:
    /// the panic unwound only that task's future; see the module docs).
    #[must_use]
    pub fn panicked_tasks(&self) -> u64 {
        self.panicked
    }

    /// A handle for registering timer-wheel deadlines from inside tasks.
    #[must_use]
    pub fn timer(&self) -> TimerHandle {
        TimerHandle {
            wheel: Rc::clone(&self.timers),
            clock: Arc::clone(&self.clock),
        }
    }

    /// Resolves once the executor clock reaches `deadline_nanos` —
    /// shorthand for [`TimerHandle::sleep_until`] when spawning.
    #[must_use]
    pub fn sleep_until(&self, deadline_nanos: u64) -> Sleep {
        self.timer().sleep_until(deadline_nanos)
    }

    /// The executor's injected clock (shared with its timer wheel).
    #[must_use]
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// A handle tasks can use to spawn sibling tasks onto this executor
    /// (see [`Spawner`]).
    #[must_use]
    pub fn spawner(&self) -> Spawner {
        Spawner {
            injected: Rc::clone(&self.injected),
        }
    }

    /// Attaches a telemetry hub (normally
    /// [`crate::Gateway::telemetry_handle`]): every subsequent wake carries
    /// an enqueue timestamp, and [`SessionExecutor::run`] histograms the
    /// wake-to-poll scheduling delay (`executor_wake`) and each poll's
    /// duration (`executor_poll`) into the hub. One-shot: calls after the
    /// first are ignored. Attach *before* [`SessionExecutor::run`] so no
    /// in-flight wake predates the hub.
    pub fn attach_telemetry(&self, telemetry: Arc<Telemetry>) {
        let _ = self.ready.telemetry.set(telemetry);
    }

    /// Replaces the condvar park with a reactor park (the `net` epoll
    /// reactor): [`SessionExecutor::run`] then parks in the reactor, and
    /// every ready-queue push also rings `doorbell` so cross-thread wakes
    /// interrupt it. One-shot, attach before `run`.
    pub(crate) fn attach_parker(&mut self, parker: Rc<dyn Parker>, doorbell: Arc<dyn Doorbell>) {
        let _ = self.ready.doorbell.set(doorbell);
        self.parker = Some(parker);
    }

    /// Drives every spawned task to completion, parking the calling thread
    /// whenever no task is runnable and no timer is due. Returns when no
    /// live tasks remain.
    ///
    /// All polling happens on the calling thread; the executor never spawns
    /// one. A task that parks forever (awaits a completion nothing will
    /// deliver) blocks `run` forever too — the gateway side prevents this by
    /// closing abandoned completions (a dropped, undelivered completion
    /// resolves to a typed error and wakes its task).
    pub fn run(&mut self) {
        let hub = self
            .ready
            .telemetry
            .get()
            .filter(|hub| hub.enabled())
            .map(Arc::clone);
        while self.live > 0 || !self.injected.borrow().is_empty() {
            self.adopt_injected();
            self.fire_due_timers(hub.as_deref());
            let Some((slot, generation, wake_nanos)) = self.ready.try_pop() else {
                self.park();
                continue;
            };
            match &hub {
                Some(hub) => {
                    let poll_start = hub.now_nanos();
                    hub.record_executor_wake(poll_start.saturating_sub(wake_nanos));
                    self.poll_task(slot, generation);
                    hub.record_executor_poll(hub.now_nanos().saturating_sub(poll_start));
                }
                None => self.poll_task(slot, generation),
            }
        }
    }

    /// Adopts tasks queued through a [`Spawner`] since the last poll.
    fn adopt_injected(&mut self) {
        if self.injected.borrow().is_empty() {
            return;
        }
        let pending: Vec<_> = self.injected.borrow_mut().drain(..).collect();
        for future in pending {
            self.spawn(future);
        }
    }

    /// Wakes every timer whose deadline the clock has passed.
    fn fire_due_timers(&mut self, hub: Option<&Telemetry>) {
        if self.timers.borrow().is_empty() {
            return;
        }
        let fired = self.timers.borrow_mut().advance(self.clock.now_nanos());
        if fired > 0 {
            if let Some(hub) = hub {
                hub.record_timer_fires(fired);
            }
        }
    }

    /// Parks until a wake arrives, bounding the wait by the nearest timer
    /// deadline (and by [`MAX_TIMER_PARK`], since wheel deadlines are in
    /// injected-clock time that real time need not track).
    fn park(&self) {
        let timeout = self.timers.borrow().next_deadline().map(|deadline| {
            let remaining = deadline.saturating_sub(self.clock.now_nanos()).max(1);
            Duration::from_nanos(remaining).min(MAX_TIMER_PARK)
        });
        match &self.parker {
            Some(parker) => parker.park(timeout),
            None => self.ready.wait_ready(timeout),
        }
    }

    /// Polls one task if the `(slot, generation)` pair still names a live
    /// task; stale or duplicate wakes are ignored.
    ///
    /// The poll runs under [`std::panic::catch_unwind`]: a panicking future
    /// is retired exactly like a completed one (generation bumped, slot
    /// recycled), so its dropped completers surface
    /// [`RuntimeUnavailable`](crate::GatewayError::RuntimeUnavailable) to
    /// whoever awaited it while every other task keeps running.
    fn poll_task(&mut self, slot: usize, generation: u64) {
        let Some(entry) = self.slots.get_mut(slot) else {
            return;
        };
        if entry.generation != generation {
            return;
        }
        let Some(mut future) = entry.future.take() else {
            // Duplicate wake for a task that completed this generation.
            return;
        };
        let waker = match entry.waker.clone() {
            Some(waker) => waker,
            None => {
                // Self-heal a missing cached waker (an executor bug, not a
                // task bug) rather than panicking the whole front end.
                let waker = raw::waker(Arc::new(WakeHandle {
                    slot,
                    generation,
                    ready: Arc::clone(&self.ready),
                }));
                entry.waker = Some(waker.clone());
                waker
            }
        };
        self.polls += 1;
        let poll = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            future.as_mut().poll(&mut Context::from_waker(&waker))
        }));
        match poll {
            Ok(Poll::Ready(())) => self.retire(slot),
            Ok(Poll::Pending) => {
                self.slots[slot].future = Some(future);
            }
            Err(_panic) => {
                // Contain the panic to this task: drop its future (closing
                // any completers it held — each resolves its awaiter to
                // RuntimeUnavailable), guard against a panicking Drop, and
                // retire the slot like a normal completion.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    drop(future);
                }));
                self.panicked += 1;
                self.retire(slot);
            }
        }
    }

    /// Releases a finished slot: bump the generation so any waker still
    /// held by a shard worker goes stale, then recycle.
    fn retire(&mut self, slot: usize) {
        let entry = &mut self.slots[slot];
        entry.generation += 1;
        entry.waker = None;
        self.free.push(slot);
        self.live -= 1;
    }
}

impl core::fmt::Debug for SessionExecutor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SessionExecutor")
            .field("live_tasks", &self.live)
            .field("polls", &self.polls)
            .field("panicked", &self.panicked)
            .finish_non_exhaustive()
    }
}

/// A single-threaded completion latch for coordinating executor tasks: `n`
/// parties each call [`WaitGroup::done`] once, and any number of tasks can
/// `await` [`WaitGroup::wait`] to resume after the `n`-th.
///
/// The E15 driver uses one to hold the submitter task back until every
/// session task has finished its handshake, so the submission schedule is
/// identical to the blocking baseline's.
///
/// Not `Send` (it is `Rc`-based, like the tasks themselves): clones are
/// handles to the same latch and must stay on the executor thread.
#[derive(Clone)]
pub struct WaitGroup {
    inner: std::rc::Rc<std::cell::RefCell<WaitGroupState>>,
}

struct WaitGroupState {
    remaining: usize,
    waiters: Vec<Waker>,
}

impl WaitGroup {
    /// Creates a latch that opens after `parties` calls to
    /// [`WaitGroup::done`] (`0` is already open).
    #[must_use]
    pub fn new(parties: usize) -> Self {
        WaitGroup {
            inner: std::rc::Rc::new(std::cell::RefCell::new(WaitGroupState {
                remaining: parties,
                waiters: Vec::new(),
            })),
        }
    }

    /// Records one party's completion; the call that reaches zero wakes
    /// every waiter. Calls beyond `parties` are ignored.
    pub fn done(&self) {
        let waiters = {
            let mut state = self.inner.borrow_mut();
            state.remaining = state.remaining.saturating_sub(1);
            if state.remaining > 0 {
                return;
            }
            std::mem::take(&mut state.waiters)
        };
        for waker in waiters {
            waker.wake();
        }
    }

    /// Parties still outstanding.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.inner.borrow().remaining
    }

    /// Resolves once every party has called [`WaitGroup::done`].
    pub fn wait(&self) -> WaitGroupFuture {
        WaitGroupFuture {
            inner: self.clone(),
        }
    }
}

impl core::fmt::Debug for WaitGroup {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("WaitGroup")
            .field("remaining", &self.remaining())
            .finish()
    }
}

/// Future returned by [`WaitGroup::wait`].
pub struct WaitGroupFuture {
    inner: WaitGroup,
}

impl Future for WaitGroupFuture {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.inner.inner.borrow_mut();
        if state.remaining == 0 {
            return Poll::Ready(());
        }
        state.waiters.push(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    #[test]
    fn runs_tasks_in_spawn_order_and_reuses_slots() {
        let mut executor = SessionExecutor::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4 {
            let order = Rc::clone(&order);
            executor.spawn(async move { order.borrow_mut().push(i) });
        }
        assert_eq!(executor.live_tasks(), 4);
        executor.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
        assert_eq!(executor.live_tasks(), 0);
        assert_eq!(executor.polls(), 4);

        // Slots are recycled under a fresh generation.
        let hit = Rc::new(Cell::new(false));
        let hit2 = Rc::clone(&hit);
        let id = executor.spawn(async move { hit2.set(true) });
        assert!(id.slot < 4, "slot should be recycled, not grown");
        executor.run();
        assert!(hit.get());
    }

    #[test]
    fn cross_thread_wake_resumes_a_parked_executor() {
        // A future that parks until another OS thread delivers its value —
        // the exact shape of a shard worker completing a command.
        let (completer, completion) = crate::frontend::completion::completion_pair::<u32>();
        let seen = Rc::new(Cell::new(0));
        let seen2 = Rc::clone(&seen);
        let mut executor = SessionExecutor::new();
        executor.spawn(async move {
            seen2.set(completion.await.expect("delivered"));
        });
        let deliverer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            completer.complete(42);
        });
        executor.run();
        deliverer.join().unwrap();
        assert_eq!(seen.get(), 42);
        // At least the spawn scheduling event; the post-delivery wake only
        // counts when the future had already registered (the usual case,
        // but a slow first poll can lose that race benignly).
        assert!(executor.wakeups() >= 1);
    }

    #[test]
    fn stale_wakes_from_a_finished_generation_are_ignored() {
        let mut executor = SessionExecutor::new();
        let id = executor.spawn(async {});
        executor.run();
        // Re-deliver the finished task's id by hand: must be a no-op even
        // though the slot is back on the free list.
        executor.ready.push(id.slot, id.generation);
        let polls = executor.polls();
        let entry = executor.ready.pop_wait();
        executor.poll_task(entry.0, entry.1);
        assert_eq!(executor.polls(), polls);
    }

    #[test]
    fn a_panicking_task_is_contained_and_neighbours_complete() {
        let mut executor = SessionExecutor::new();
        let done = Rc::new(Cell::new(0));
        for _ in 0..4 {
            let done = Rc::clone(&done);
            executor.spawn(async move { done.set(done.get() + 1) });
        }
        executor.spawn(async move { panic!("deliberate task panic (test)") });
        for _ in 0..4 {
            let done = Rc::clone(&done);
            executor.spawn(async move { done.set(done.get() + 1) });
        }
        executor.run();
        assert_eq!(done.get(), 8, "healthy tasks must all complete");
        assert_eq!(executor.panicked_tasks(), 1);
        assert_eq!(executor.live_tasks(), 0);

        // The executor stays usable: the panicked slot is recycled.
        let hit = Rc::new(Cell::new(false));
        let hit2 = Rc::clone(&hit);
        executor.spawn(async move { hit2.set(true) });
        executor.run();
        assert!(hit.get());
    }

    #[test]
    fn sleep_fires_under_a_manual_clock_only_when_advanced() {
        let clock = Arc::new(ManualClock::new());
        let mut executor = SessionExecutor::with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let timer = executor.timer();
        let woke = Rc::new(Cell::new(false));
        let woke2 = Rc::clone(&woke);
        let deadline = Duration::from_millis(50).as_nanos() as u64;
        executor.spawn(async move {
            timer.sleep_until(deadline).await;
            woke2.set(true);
        });
        // Drive the clock from a helper thread: the executor's bounded
        // timer park re-reads it within MAX_TIMER_PARK.
        let driver = std::thread::spawn(move || {
            for _ in 0..200 {
                std::thread::sleep(Duration::from_millis(1));
                clock.advance(Duration::from_millis(2));
            }
        });
        executor.run();
        driver.join().unwrap();
        assert!(woke.get());
    }

    #[test]
    fn sleep_orders_by_deadline_not_spawn_order() {
        let clock = Arc::new(ManualClock::new());
        let mut executor = SessionExecutor::with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let order = Rc::new(RefCell::new(Vec::new()));
        let ms = |n: u64| Duration::from_millis(n).as_nanos() as u64;
        for (label, deadline) in [("late", ms(40)), ("early", ms(10)), ("mid", ms(20))] {
            let order = Rc::clone(&order);
            let timer = executor.timer();
            executor.spawn(async move {
                timer.sleep_until(deadline).await;
                order.borrow_mut().push(label);
            });
        }
        let driver = std::thread::spawn(move || {
            for _ in 0..300 {
                std::thread::sleep(Duration::from_millis(1));
                clock.advance(Duration::from_millis(1));
            }
        });
        executor.run();
        driver.join().unwrap();
        assert_eq!(*order.borrow(), vec!["early", "mid", "late"]);
    }

    #[test]
    fn timer_wheel_cascades_across_levels() {
        // Drive the wheel directly (no executor) across a level-1 boundary
        // and into the overflow horizon.
        let clock = ManualClock::new();
        let mut wheel = TimerWheel::new(clock.now_nanos());
        let fired = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let waker = {
            struct Count(Arc<std::sync::atomic::AtomicUsize>);
            impl std::task::Wake for Count {
                fn wake(self: Arc<Self>) {
                    self.0.fetch_add(1, Ordering::SeqCst);
                }
            }
            Waker::from(Arc::new(Count(Arc::clone(&fired))))
        };
        let tick = 1u64 << TICK_SHIFT;
        // One near deadline (level 0), one past the level-0 span (level 1),
        // one past the whole wheel horizon (overflow).
        wheel.insert(2 * tick, waker.clone());
        wheel.insert(100 * tick, waker.clone());
        let horizon = (WHEEL_SLOTS as u64).pow(WHEEL_LEVELS as u32);
        wheel.insert((horizon + 10) * tick, waker.clone());
        assert_eq!(wheel.len, 3);
        assert_eq!(wheel.next_deadline(), Some(2 * tick));

        assert_eq!(wheel.advance(3 * tick), 1);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(wheel.advance(101 * tick), 1);
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        assert_eq!(wheel.advance((horizon + 11) * tick), 1);
        assert_eq!(fired.load(Ordering::SeqCst), 3);
        assert!(wheel.is_empty());
    }

    #[test]
    fn wait_group_holds_tasks_until_all_parties_report() {
        let mut executor = SessionExecutor::new();
        let group = WaitGroup::new(3);
        let order = Rc::new(RefCell::new(Vec::new()));
        {
            let group = group.clone();
            let order = Rc::clone(&order);
            executor.spawn(async move {
                group.wait().await;
                order.borrow_mut().push("late");
            });
        }
        for _ in 0..3 {
            let group = group.clone();
            let order = Rc::clone(&order);
            executor.spawn(async move {
                order.borrow_mut().push("party");
                group.done();
            });
        }
        executor.run();
        assert_eq!(*order.borrow(), vec!["party", "party", "party", "late"]);
        assert_eq!(group.remaining(), 0);
        // An already-open group resolves immediately.
        let open = WaitGroup::new(0);
        let hit = Rc::new(Cell::new(false));
        let hit2 = Rc::clone(&hit);
        executor.spawn(async move {
            open.wait().await;
            hit2.set(true);
        });
        executor.run();
        assert!(hit.get());
    }
}
