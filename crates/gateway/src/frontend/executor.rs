//! A dependency-free, single-threaded future executor for session tasks.
//!
//! The front-end's whole job is to multiplex thousands of device sessions
//! onto one connection-handling thread, so the executor is built for exactly
//! that shape and nothing more:
//!
//! * **Slab of tasks** — spawned futures live in a slot vector with a free
//!   list; a [`TaskId`] is `(slot, generation)`, and the generation guards
//!   against a stale waker reviving whatever task reused the slot.
//! * **Own `RawWaker` vtable** — the waker is a hand-rolled
//!   [`std::task::RawWakerVTable`] over an `Arc`'d wake handle (no `async` runtime
//!   crates, no [`std::task::Wake`] indirection), so the crate stays
//!   dependency-free and the whole wake path is a screenful of code.
//! * **Readiness queue with parking** — wakes (typically delivered by shard
//!   worker threads completing a command through the crate-internal
//!   completion cells) push the task id onto a
//!   mutex+condvar queue; [`SessionExecutor::run`] pops and polls in wake
//!   order and parks the thread when nothing is runnable. No spinning, no
//!   timers.
//!
//! Determinism: tasks are first polled in spawn order, wakes are queued in
//! delivery order, and the executor never reorders the queue. Micro-timing
//! still races benignly — a completion delivered *before* its first poll
//! resolves inline and consumes no wake, so poll/wakeup *counts* vary
//! run-to-run — but such a race only ever lets a task run *earlier*, never
//! reorders one task's own commands, and the gateway operations that
//! consume enclave randomness (session opens, batch processing) keep their
//! per-slot order under it. That is the property experiment E15 pins: at
//! [`GatewayConfig::shards`](crate::GatewayConfig) `= 1`, async serving
//! outputs are bit-identical to the blocking driver's, run after run.
//!
//! The executor spawns no threads: every poll runs on the thread that calls
//! [`SessionExecutor::run`]. That is the load-bearing claim of the async
//! front-end (E15 asserts the process thread count to pin it down).

use crate::telemetry::Telemetry;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::task::{Context, Poll, Waker};

/// Identifier of a spawned task: its slab slot plus the generation that was
/// live when it was spawned (slot reuse bumps the generation, so ids never
/// alias across task lifetimes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskId {
    slot: usize,
    generation: u64,
}

/// The cross-thread readiness queue: wakers push `(slot, generation,
/// wake-time)` triples, the executor pops them in order and parks when the
/// queue is empty. With a telemetry hub attached, each entry carries the
/// hub clock's reading at enqueue time so the executor can histogram the
/// wake-to-poll scheduling delay.
struct ReadyQueue {
    queue: Mutex<VecDeque<(usize, u64, u64)>>,
    available: Condvar,
    /// Wakes delivered (scheduling events), for the E15 metrics.
    wakeups: AtomicU64,
    /// Telemetry hub stamped onto wake entries once attached
    /// ([`SessionExecutor::attach_telemetry`]); absent, entries carry 0 and
    /// nothing is recorded.
    telemetry: OnceLock<Arc<Telemetry>>,
}

impl ReadyQueue {
    fn push(&self, slot: usize, generation: u64) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        let wake_nanos = self.telemetry.get().map_or(0, |hub| hub.now_nanos());
        let mut queue = self.queue.lock().expect("ready queue poisoned");
        queue.push_back((slot, generation, wake_nanos));
        drop(queue);
        // One waiter at most: the executor is single-threaded by design.
        self.available.notify_one();
    }

    /// Pops the next ready task, parking the thread until one arrives.
    fn pop_wait(&self) -> (usize, u64, u64) {
        let mut queue = self.queue.lock().expect("ready queue poisoned");
        loop {
            if let Some(entry) = queue.pop_front() {
                return entry;
            }
            queue = self
                .available
                .wait(queue)
                .expect("ready queue poisoned while parked");
        }
    }
}

/// What one waker wakes: a task slot in a specific generation, plus the
/// queue to schedule it on. Shard worker threads hold clones of this (inside
/// [`Waker`]s registered by pending completions), so it must be `Send +
/// Sync` even though the executor itself never leaves its thread.
struct WakeHandle {
    slot: usize,
    generation: u64,
    ready: Arc<ReadyQueue>,
}

impl WakeHandle {
    fn wake(&self) {
        self.ready.push(self.slot, self.generation);
    }
}

/// The hand-rolled `RawWaker` vtable over `Arc<WakeHandle>`.
///
/// This is the one corner of the crate that needs `unsafe`: the vtable
/// functions receive the type-erased `*const ()` the `Arc` was turned into
/// and must reconstruct it. The invariants are the standard `Arc::into_raw`
/// contract, kept locally checkable:
///
/// * `waker` creates the pointer with `Arc::into_raw`, so it is always a
///   valid `Arc<WakeHandle>` allocation with at least one strong count.
/// * `clone` bumps the strong count without taking ownership.
/// * `wake` (by value) and `drop` each consume exactly one strong count via
///   `Arc::from_raw`.
/// * `wake_by_ref` only borrows, never consumes.
#[allow(unsafe_code)]
mod raw {
    use super::WakeHandle;
    use std::sync::Arc;
    use std::task::{RawWaker, RawWakerVTable, Waker};

    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, wake, wake_by_ref, drop_raw);

    unsafe fn clone(data: *const ()) -> RawWaker {
        // SAFETY: `data` came from `Arc::into_raw` (see module docs); bump
        // the count to mint an independent handle without dropping ours.
        unsafe { Arc::increment_strong_count(data.cast::<WakeHandle>()) };
        RawWaker::new(data, &VTABLE)
    }

    unsafe fn wake(data: *const ()) {
        // SAFETY: by-value wake consumes the waker's strong count.
        let handle = unsafe { Arc::from_raw(data.cast::<WakeHandle>()) };
        handle.wake();
    }

    unsafe fn wake_by_ref(data: *const ()) {
        // SAFETY: borrow only; the waker keeps its strong count.
        let handle = unsafe { &*data.cast::<WakeHandle>() };
        handle.wake();
    }

    unsafe fn drop_raw(data: *const ()) {
        // SAFETY: dropping the waker releases its strong count.
        drop(unsafe { Arc::from_raw(data.cast::<WakeHandle>()) });
    }

    pub(super) fn waker(handle: Arc<WakeHandle>) -> Waker {
        let raw = RawWaker::new(Arc::into_raw(handle).cast::<()>(), &VTABLE);
        // SAFETY: the vtable upholds the RawWaker contract per module docs.
        unsafe { Waker::from_raw(raw) }
    }
}

/// One slab slot: the task's future (while alive) and the slot's current
/// generation. The waker is created once per spawn and cloned per poll.
struct Slot {
    future: Option<Pin<Box<dyn Future<Output = ()>>>>,
    generation: u64,
    waker: Option<Waker>,
}

/// The single-threaded session executor.
///
/// Spawn one future per device session (plus driver tasks — submitters,
/// drainers), then call [`SessionExecutor::run`] to drive everything to
/// completion on the calling thread. Futures need not be `Send`: they never
/// leave this thread. Wakes may arrive from any thread (the shard workers
/// deliver them), which is what lets one front-end thread park instead of
/// spin while enclaves work.
///
/// # Examples
///
/// ```
/// use glimmer_gateway::frontend::SessionExecutor;
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut executor = SessionExecutor::new();
/// let counter = Rc::new(Cell::new(0));
/// for _ in 0..3 {
///     let counter = Rc::clone(&counter);
///     executor.spawn(async move { counter.set(counter.get() + 1) });
/// }
/// executor.run();
/// assert_eq!(counter.get(), 3);
/// assert_eq!(executor.live_tasks(), 0);
/// ```
pub struct SessionExecutor {
    slots: Vec<Slot>,
    free: Vec<usize>,
    live: usize,
    ready: Arc<ReadyQueue>,
    polls: u64,
}

impl Default for SessionExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionExecutor {
    /// Creates an executor with no tasks.
    #[must_use]
    pub fn new() -> Self {
        SessionExecutor {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            ready: Arc::new(ReadyQueue {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                wakeups: AtomicU64::new(0),
                telemetry: OnceLock::new(),
            }),
            polls: 0,
        }
    }

    /// Spawns a task. It is scheduled immediately (first polls happen in
    /// spawn order) and runs to completion under [`SessionExecutor::run`].
    pub fn spawn(&mut self, future: impl Future<Output = ()> + 'static) -> TaskId {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(Slot {
                    future: None,
                    generation: 0,
                    waker: None,
                });
                self.slots.len() - 1
            }
        };
        let generation = self.slots[slot].generation;
        let id = TaskId { slot, generation };
        self.slots[slot].future = Some(Box::pin(future));
        self.slots[slot].waker = Some(raw::waker(Arc::new(WakeHandle {
            slot,
            generation,
            ready: Arc::clone(&self.ready),
        })));
        self.live += 1;
        self.ready.push(slot, generation);
        id
    }

    /// Tasks spawned and not yet run to completion.
    #[must_use]
    pub fn live_tasks(&self) -> usize {
        self.live
    }

    /// Total polls performed (each is one resumption of one task).
    #[must_use]
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Total scheduling events (spawns + wakes) delivered to the ready
    /// queue, including those from shard worker threads.
    #[must_use]
    pub fn wakeups(&self) -> u64 {
        self.ready.wakeups.load(Ordering::Relaxed)
    }

    /// Attaches a telemetry hub (normally
    /// [`crate::Gateway::telemetry_handle`]): every subsequent wake carries
    /// an enqueue timestamp, and [`SessionExecutor::run`] histograms the
    /// wake-to-poll scheduling delay (`executor_wake`) and each poll's
    /// duration (`executor_poll`) into the hub. One-shot: calls after the
    /// first are ignored. Attach *before* [`SessionExecutor::run`] so no
    /// in-flight wake predates the hub.
    pub fn attach_telemetry(&self, telemetry: Arc<Telemetry>) {
        let _ = self.ready.telemetry.set(telemetry);
    }

    /// Drives every spawned task to completion, parking the calling thread
    /// whenever no task is runnable. Returns when no live tasks remain.
    ///
    /// All polling happens on the calling thread; the executor never spawns
    /// one. A task that parks forever (awaits a completion nothing will
    /// deliver) blocks `run` forever too — the gateway side prevents this by
    /// closing abandoned completions (a dropped, undelivered completion
    /// resolves to a typed error and wakes its task).
    pub fn run(&mut self) {
        let hub = self
            .ready
            .telemetry
            .get()
            .filter(|hub| hub.enabled())
            .map(Arc::clone);
        while self.live > 0 {
            let (slot, generation, wake_nanos) = self.ready.pop_wait();
            match &hub {
                Some(hub) => {
                    let poll_start = hub.now_nanos();
                    hub.record_executor_wake(poll_start.saturating_sub(wake_nanos));
                    self.poll_task(slot, generation);
                    hub.record_executor_poll(hub.now_nanos().saturating_sub(poll_start));
                }
                None => self.poll_task(slot, generation),
            }
        }
    }

    /// Polls one task if the `(slot, generation)` pair still names a live
    /// task; stale or duplicate wakes are ignored.
    fn poll_task(&mut self, slot: usize, generation: u64) {
        let Some(entry) = self.slots.get_mut(slot) else {
            return;
        };
        if entry.generation != generation {
            return;
        }
        let Some(mut future) = entry.future.take() else {
            // Duplicate wake for a task that completed this generation.
            return;
        };
        let waker = entry
            .waker
            .clone()
            .expect("live task always has a cached waker");
        self.polls += 1;
        match future.as_mut().poll(&mut Context::from_waker(&waker)) {
            Poll::Ready(()) => {
                // Release the slot: bump the generation so any waker still
                // held by a shard worker goes stale, then recycle.
                let entry = &mut self.slots[slot];
                entry.generation += 1;
                entry.waker = None;
                self.free.push(slot);
                self.live -= 1;
            }
            Poll::Pending => {
                self.slots[slot].future = Some(future);
            }
        }
    }
}

impl core::fmt::Debug for SessionExecutor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SessionExecutor")
            .field("live_tasks", &self.live)
            .field("polls", &self.polls)
            .finish_non_exhaustive()
    }
}

/// A single-threaded completion latch for coordinating executor tasks: `n`
/// parties each call [`WaitGroup::done`] once, and any number of tasks can
/// `await` [`WaitGroup::wait`] to resume after the `n`-th.
///
/// The E15 driver uses one to hold the submitter task back until every
/// session task has finished its handshake, so the submission schedule is
/// identical to the blocking baseline's.
///
/// Not `Send` (it is `Rc`-based, like the tasks themselves): clones are
/// handles to the same latch and must stay on the executor thread.
#[derive(Clone)]
pub struct WaitGroup {
    inner: std::rc::Rc<std::cell::RefCell<WaitGroupState>>,
}

struct WaitGroupState {
    remaining: usize,
    waiters: Vec<Waker>,
}

impl WaitGroup {
    /// Creates a latch that opens after `parties` calls to
    /// [`WaitGroup::done`] (`0` is already open).
    #[must_use]
    pub fn new(parties: usize) -> Self {
        WaitGroup {
            inner: std::rc::Rc::new(std::cell::RefCell::new(WaitGroupState {
                remaining: parties,
                waiters: Vec::new(),
            })),
        }
    }

    /// Records one party's completion; the call that reaches zero wakes
    /// every waiter. Calls beyond `parties` are ignored.
    pub fn done(&self) {
        let waiters = {
            let mut state = self.inner.borrow_mut();
            state.remaining = state.remaining.saturating_sub(1);
            if state.remaining > 0 {
                return;
            }
            std::mem::take(&mut state.waiters)
        };
        for waker in waiters {
            waker.wake();
        }
    }

    /// Parties still outstanding.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.inner.borrow().remaining
    }

    /// Resolves once every party has called [`WaitGroup::done`].
    pub fn wait(&self) -> WaitGroupFuture {
        WaitGroupFuture {
            inner: self.clone(),
        }
    }
}

impl core::fmt::Debug for WaitGroup {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("WaitGroup")
            .field("remaining", &self.remaining())
            .finish()
    }
}

/// Future returned by [`WaitGroup::wait`].
pub struct WaitGroupFuture {
    inner: WaitGroup,
}

impl Future for WaitGroupFuture {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.inner.inner.borrow_mut();
        if state.remaining == 0 {
            return Poll::Ready(());
        }
        state.waiters.push(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    #[test]
    fn runs_tasks_in_spawn_order_and_reuses_slots() {
        let mut executor = SessionExecutor::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4 {
            let order = Rc::clone(&order);
            executor.spawn(async move { order.borrow_mut().push(i) });
        }
        assert_eq!(executor.live_tasks(), 4);
        executor.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
        assert_eq!(executor.live_tasks(), 0);
        assert_eq!(executor.polls(), 4);

        // Slots are recycled under a fresh generation.
        let hit = Rc::new(Cell::new(false));
        let hit2 = Rc::clone(&hit);
        let id = executor.spawn(async move { hit2.set(true) });
        assert!(id.slot < 4, "slot should be recycled, not grown");
        executor.run();
        assert!(hit.get());
    }

    #[test]
    fn cross_thread_wake_resumes_a_parked_executor() {
        // A future that parks until another OS thread delivers its value —
        // the exact shape of a shard worker completing a command.
        let (completer, completion) = crate::frontend::completion::completion_pair::<u32>();
        let seen = Rc::new(Cell::new(0));
        let seen2 = Rc::clone(&seen);
        let mut executor = SessionExecutor::new();
        executor.spawn(async move {
            seen2.set(completion.await.expect("delivered"));
        });
        let deliverer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            completer.complete(42);
        });
        executor.run();
        deliverer.join().unwrap();
        assert_eq!(seen.get(), 42);
        // At least the spawn scheduling event; the post-delivery wake only
        // counts when the future had already registered (the usual case,
        // but a slow first poll can lose that race benignly).
        assert!(executor.wakeups() >= 1);
    }

    #[test]
    fn stale_wakes_from_a_finished_generation_are_ignored() {
        let mut executor = SessionExecutor::new();
        let id = executor.spawn(async {});
        executor.run();
        // Re-deliver the finished task's id by hand: must be a no-op even
        // though the slot is back on the free list.
        executor.ready.push(id.slot, id.generation);
        let polls = executor.polls();
        let entry = executor.ready.pop_wait();
        executor.poll_task(entry.0, entry.1);
        assert_eq!(executor.polls(), polls);
    }

    #[test]
    fn wait_group_holds_tasks_until_all_parties_report() {
        let mut executor = SessionExecutor::new();
        let group = WaitGroup::new(3);
        let order = Rc::new(RefCell::new(Vec::new()));
        {
            let group = group.clone();
            let order = Rc::clone(&order);
            executor.spawn(async move {
                group.wait().await;
                order.borrow_mut().push("late");
            });
        }
        for _ in 0..3 {
            let group = group.clone();
            let order = Rc::clone(&order);
            executor.spawn(async move {
                order.borrow_mut().push("party");
                group.done();
            });
        }
        executor.run();
        assert_eq!(*order.borrow(), vec!["party", "party", "party", "late"]);
        assert_eq!(group.remaining(), 0);
        // An already-open group resolves immediately.
        let open = WaitGroup::new(0);
        let hit = Rc::new(Cell::new(false));
        let hit2 = Rc::clone(&hit);
        executor.spawn(async move {
            open.wait().await;
            hit2.set(true);
        });
        executor.run();
        assert!(hit.get());
    }
}
