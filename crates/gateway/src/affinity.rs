//! Portable thread-to-core affinity shim for the shard workers.
//!
//! The shard-per-core runtime's premise is that each worker owns a core,
//! but without pinning the OS scheduler is free to migrate workers across
//! cores mid-drain, which shows up as run-to-run variance in the E12
//! critical-path numbers. [`pin_to_core`] asks the kernel to keep the
//! calling thread on one CPU, behind `GatewayConfig::pin_cores`.
//!
//! The workspace takes no external dependencies, so on Linux this is the
//! raw `sched_setaffinity(2)` syscall (no libc): pid `0` means "the calling
//! thread" for this syscall, and the mask is a plain bit-per-CPU array. On
//! every other target the shim compiles to a no-op that reports failure, so
//! `pin_cores` degrades gracefully rather than gating compilation.

/// True when this build can actually pin threads (Linux only).
#[must_use]
pub fn pinning_supported() -> bool {
    cfg!(target_os = "linux")
}

/// Pins the calling thread to `core` (a zero-based CPU index). Returns
/// `true` when the kernel accepted the mask; `false` when pinning is
/// unsupported on this target, the core index is out of range for the
/// mask, or the kernel rejected it (e.g. the core is outside the
/// process's cpuset).
#[must_use]
pub fn pin_to_core(core: usize) -> bool {
    imp::pin_to_core(core)
}

#[cfg(target_os = "linux")]
/// The one `unsafe` corner of pinning: a raw `sched_setaffinity` syscall.
///
/// Invariants keeping this sound:
/// * The syscall only *reads* the mask buffer; the kernel never writes
///   through the pointer, so passing a pointer + length to a live local
///   array is the entire contract.
/// * pid `0` addresses the calling thread — no foreign thread or process
///   is touched.
/// * The inline asm clobbers are exactly the Linux syscall ABI's
///   (`rcx`/`r11` on x86_64; `x8` plus the argument registers on
///   aarch64), and no Rust state is live across the instruction beyond
///   the declared operands.
#[allow(unsafe_code)]
mod imp {
    /// Bit-per-CPU affinity mask: 16 × 64 = 1024 CPUs, the kernel's
    /// conventional `CPU_SETSIZE`.
    const MASK_WORDS: usize = 16;

    pub(super) fn pin_to_core(core: usize) -> bool {
        if core >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[core / 64] = 1u64 << (core % 64);
        sched_setaffinity_self(&mask) == 0
    }

    #[cfg(target_arch = "x86_64")]
    fn sched_setaffinity_self(mask: &[u64; MASK_WORDS]) -> i64 {
        const SYS_SCHED_SETAFFINITY: i64 = 203;
        let ret: i64;
        // SAFETY: see module docs — read-only buffer, calling thread only,
        // standard x86_64 syscall clobbers.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_SCHED_SETAFFINITY => ret,
                in("rdi") 0usize,
                in("rsi") core::mem::size_of_val(mask),
                in("rdx") mask.as_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    fn sched_setaffinity_self(mask: &[u64; MASK_WORDS]) -> i64 {
        const SYS_SCHED_SETAFFINITY: i64 = 122;
        let ret: i64;
        // SAFETY: see module docs — read-only buffer, calling thread only,
        // standard aarch64 syscall convention (number in x8, `svc 0`).
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") SYS_SCHED_SETAFFINITY,
                inlateout("x0") 0i64 => ret,
                in("x1") core::mem::size_of_val(mask),
                in("x2") mask.as_ptr(),
                options(nostack),
            );
        }
        ret
    }

    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn sched_setaffinity_self(_mask: &[u64; MASK_WORDS]) -> i64 {
        // Linux on an architecture we have no syscall stub for: report
        // failure rather than guessing at the ABI.
        -1
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub(super) fn pin_to_core(_core: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_reports_honestly() {
        if pinning_supported() {
            // Core 0 always exists; the only legitimate failure is a
            // cpuset that excludes it, in which case `false` is the
            // honest answer — so just exercise the call.
            let _ = pin_to_core(0);
        } else {
            assert!(!pin_to_core(0));
        }
        // An out-of-range core index is always rejected.
        assert!(!pin_to_core(1024 * 1024));
    }

    #[test]
    fn pinning_to_core_zero_succeeds_on_linux() {
        if cfg!(target_os = "linux") {
            // Run on a scratch thread so the test runner's thread keeps its
            // full affinity mask.
            let pinned = std::thread::spawn(|| pin_to_core(0))
                .join()
                .expect("pin thread");
            assert!(pinned, "sched_setaffinity to core 0 failed");
        }
    }
}
