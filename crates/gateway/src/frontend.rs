//! The async session front-end: thousands of device sessions multiplexed
//! onto one connection-handling thread.
//!
//! The shard-per-core runtime (the crate's `runtime` module) made the *backend*
//! concurrent, but every front-door caller still parked an OS thread in a
//! per-command `recv`: serving a million device sessions the blocking way
//! would need a million threads doing nothing but waiting for enclave
//! replies. This module is the paper's "gateway of enclaves" front door at
//! scale, with no external dependencies:
//!
//! * `completion` (crate-internal) — waker-notified completion cells that
//!   replace the blocking reply channel for every command type (the shard
//!   worker calls one `Reply::deliver`, identical code path either way).
//! * [`executor`] — a hand-rolled single-threaded future executor: slab of
//!   session tasks, its own `RawWaker` vtable, and a parking readiness queue
//!   wired to shard reply delivery.
//! * [`AsyncGateway`] — the `async fn` surface over [`Gateway`]:
//!   `open_session`, `complete_session`, `install_mask`, `submit`,
//!   `submit_many`, `drain_replies`, `close_session`. Each awaits a
//!   completion instead of parking, so one [`SessionExecutor`] thread keeps
//!   thousands of handshakes and drains in flight at once.
//!
//! # Task lifecycle
//!
//! A device session is one spawned task: it awaits `open_session` (the
//! enclave's attestation offer arrives as a wakeup from the shard worker),
//! completes the handshake, installs its masks, then submits its encrypted
//! requests — admission control is synchronous, so `submit`/`submit_many`
//! never park. A driver task periodically awaits
//! [`AsyncGateway::drain_replies`] and routes outcomes back to sessions;
//! [`WaitGroup`] coordinates the phase changes. When the task
//! returns, its executor slot is recycled (see [`executor`] for the
//! generation discipline that keeps stale wakeups harmless).
//!
//! # Cancellation
//!
//! These futures are **not cancel-safe**: dropping one mid-await abandons
//! its protocol step rather than rolling it back. Concretely, an
//! [`AsyncGateway::open_session`] future dropped after admission leaves
//! the session `Pending` — holding its quota unit and slot gauge, with its
//! enclave-side handshake possibly already open — until
//! [`Gateway::evict_stale_pending`] reclaims all of it (table entry,
//! gauges, enclave keys). That is deliberate: a device that stalls mid-
//! handshake produces the *same* abandoned-`Pending` state, so production
//! gateways already run eviction on a timer, and rolling back the table
//! entry eagerly at drop time would orphan the enclave-side session with
//! no reclaim path at all. The [`SessionExecutor`] never cancels tasks, so
//! none of this arises under the shipped driver; callers embedding these
//! futures in a `select!`/timeout on an external executor must pair them
//! with periodic eviction (or drive them to completion).
//!
//! # Determinism
//!
//! With `shards: 1` the async front-end reproduces the blocking path's
//! endorsement outputs bit-for-bit (experiment E15 asserts it, ciphertext
//! bytes included). The guarantee is about *outputs*, not micro-timing:
//! executor scheduling can race benignly (a reply delivered before its
//! first poll resolves inline), but per-session command order and the
//! per-slot order of randomness-consuming enclave operations — session
//! opens, batch processing — are invariant under those races, and those
//! are the only orders the enclaves' DRBG streams observe.
//!
//! # Examples
//!
//! ```
//! use glimmer_core::host::GlimmerDescriptor;
//! use glimmer_core::signing::ServiceKeyMaterial;
//! use glimmer_crypto::drbg::Drbg;
//! use glimmer_gateway::frontend::{AsyncGateway, SessionExecutor};
//! use glimmer_gateway::{Gateway, GatewayConfig, TenantConfig};
//! use sgx_sim::AttestationService;
//! use std::cell::Cell;
//! use std::rc::Rc;
//!
//! let mut rng = Drbg::from_seed([7u8; 32]);
//! let mut avs = AttestationService::new([8u8; 32]);
//! let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
//! let gateway = Gateway::new(
//!     GatewayConfig::default(),
//!     vec![TenantConfig::new(
//!         "iot-telemetry.example",
//!         GlimmerDescriptor::iot_default(Vec::new()),
//!         material.secret_bytes(),
//!     )],
//!     &mut avs,
//!     &mut rng,
//! )
//! .unwrap();
//!
//! // One front-end thread, many session tasks: each `await` parks the
//! // task (not the thread) until the shard worker delivers the reply.
//! let frontend = AsyncGateway::new(gateway);
//! let mut executor = SessionExecutor::new();
//! let opened = Rc::new(Cell::new(0));
//! for _ in 0..8 {
//!     let frontend = frontend.clone();
//!     let opened = Rc::clone(&opened);
//!     executor.spawn(async move {
//!         let (_session, _offer) = frontend
//!             .open_session("iot-telemetry.example")
//!             .await
//!             .expect("quota admits 8 sessions");
//!         opened.set(opened.get() + 1);
//!     });
//! }
//! executor.run();
//! assert_eq!(opened.get(), 8);
//! assert_eq!(frontend.gateway().live_sessions(), 8);
//! ```

pub(crate) mod completion;
pub mod executor;

pub use executor::{
    SessionExecutor, Sleep, Spawner, TaskId, TimerHandle, WaitGroup, WaitGroupFuture,
};

use crate::error::Result;
use crate::gateway::{Gateway, GatewayResponse};
use glimmer_core::blinding::MaskShare;
use glimmer_core::channel::{ChannelAccept, ChannelOffer};
use glimmer_core::enclave_app::MaskDelivery;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering from poisoning by taking the inner guard.
///
/// Front-end mutexes (ready queue, completion cells) guard plain
/// queue/cell state that is valid at every point a panic can unwind
/// through, so the poison flag carries no information here — and honoring
/// it would let one panicking session task cascade its failure into every
/// other session sharing the executor (the exact outage the panic
/// containment in [`executor`] exists to prevent).
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The non-blocking `async fn` surface over a [`Gateway`].
///
/// Cheap to clone (an `Arc` around the gateway): spawn one clone into every
/// session task. All admission control, quota accounting, and typed errors
/// are exactly the blocking API's — the only difference is that replies
/// arrive as waker-notified completions instead of parking the calling
/// thread, so the futures are driven by a [`SessionExecutor`] (or any other
/// executor; they are ordinary `std` futures — but read the module's
/// [Cancellation](self#cancellation) notes before embedding them in a
/// `select!` or timeout).
///
/// Blocking and async callers may share one gateway: the shard workers see
/// the same commands either way, and the mixed-front-end stress test
/// (`crates/gateway/tests/frontend.rs`) holds the no-loss/no-duplication
/// guarantees across both at once.
#[derive(Clone)]
pub struct AsyncGateway {
    inner: Arc<Gateway>,
}

impl core::fmt::Debug for AsyncGateway {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AsyncGateway")
            .field("gateway", &*self.inner)
            .finish()
    }
}

impl AsyncGateway {
    /// Wraps a gateway for async serving, taking (shared) ownership.
    #[must_use]
    pub fn new(gateway: Gateway) -> Self {
        Self::from_arc(Arc::new(gateway))
    }

    /// Wraps an already-shared gateway (e.g. one some blocking submitter
    /// threads also hold).
    #[must_use]
    pub fn from_arc(inner: Arc<Gateway>) -> Self {
        AsyncGateway { inner }
    }

    /// The underlying gateway, for the blocking API (stats, checkpoint,
    /// tenant channels) and for mixing blocking callers onto the same pool.
    #[must_use]
    pub fn gateway(&self) -> &Gateway {
        &self.inner
    }

    /// Recovers the owned [`Gateway`] (e.g. to call
    /// [`Gateway::shutdown`], which needs ownership) once this is the last
    /// front-end handle.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` unchanged while other clones (or
    /// [`AsyncGateway::from_arc`] co-owners) are still alive.
    pub fn try_into_gateway(self) -> core::result::Result<Gateway, Self> {
        Arc::try_unwrap(self.inner).map_err(|inner| AsyncGateway { inner })
    }

    /// [`Gateway::open_session`], awaiting the attestation offer instead of
    /// parking the thread.
    ///
    /// # Errors
    ///
    /// Exactly [`Gateway::open_session`]'s, including the rolled-back
    /// admission reservation on every *returned* error. Dropping the future
    /// mid-await is not an error return and does not roll back — see the
    /// module's [Cancellation](self#cancellation) section.
    pub async fn open_session(&self, tenant: &str) -> Result<(u64, ChannelOffer)> {
        let (session_id, tenant_idx, slot_id, completion) =
            self.inner.open_session_begin(tenant)?;
        let outcome = completion.await.and_then(|result| result);
        self.inner
            .open_session_settle(session_id, tenant_idx, slot_id, outcome)
    }

    /// [`Gateway::complete_session`], awaiting the enclave's handshake
    /// acceptance.
    ///
    /// # Errors
    ///
    /// Exactly [`Gateway::complete_session`]'s; a failed completion tears
    /// the pending session down so the device can retry with a fresh open.
    pub async fn complete_session(&self, session_id: u64, accept: &ChannelAccept) -> Result<()> {
        let (entry, completion) = self.inner.complete_session_begin(session_id, accept)?;
        let outcome = completion.await.and_then(|result| result);
        self.inner
            .complete_session_settle(session_id, &entry, outcome)
    }

    /// [`Gateway::install_mask`], awaiting the enclave's confirmation.
    ///
    /// # Errors
    ///
    /// Exactly [`Gateway::install_mask`]'s.
    pub async fn install_mask(&self, session_id: u64, mask: &MaskShare) -> Result<()> {
        self.install_mask_delivery(session_id, MaskDelivery::plain(mask))
            .await
    }

    /// [`Gateway::install_mask_encrypted`], awaiting the enclave's
    /// confirmation.
    ///
    /// # Errors
    ///
    /// Exactly [`Gateway::install_mask_encrypted`]'s, including the typed
    /// [`SealedBlobRejected`](crate::GatewayError::SealedBlobRejected) on an
    /// AEAD refusal.
    pub async fn install_mask_encrypted(
        &self,
        session_id: u64,
        nonce: [u8; 12],
        ciphertext: Vec<u8>,
    ) -> Result<()> {
        self.install_mask_delivery(session_id, MaskDelivery::Encrypted { nonce, ciphertext })
            .await
    }

    async fn install_mask_delivery(&self, session_id: u64, delivery: MaskDelivery) -> Result<()> {
        let (tenant, completion) = self.inner.install_mask_begin(session_id, delivery)?;
        let outcome = completion.await.and_then(|result| result);
        Gateway::install_mask_settle(&tenant, outcome)
    }

    /// [`Gateway::submit`]. Admission control is synchronous (atomic gauges,
    /// typed rejections) and enqueueing is fire-and-forget, so this never
    /// parks — it is `async` only so session tasks compose it with the
    /// awaiting calls.
    ///
    /// # Errors
    ///
    /// Exactly [`Gateway::submit`]'s.
    pub async fn submit(&self, session_id: u64, ciphertext: Vec<u8>) -> Result<()> {
        self.inner.submit(session_id, ciphertext)
    }

    /// [`Gateway::submit_many`]: one session's request stream admitted as
    /// one atomic group. Never parks, like [`AsyncGateway::submit`].
    ///
    /// # Errors
    ///
    /// Exactly [`Gateway::submit_many`]'s — all-or-nothing per group.
    pub async fn submit_many(&self, session_id: u64, ciphertexts: Vec<Vec<u8>>) -> Result<()> {
        self.inner.submit_many(session_id, ciphertexts)
    }

    /// [`Gateway::drain`], awaiting every shard's sweep instead of parking:
    /// the drain command fans out to all shards at once, the completions
    /// are awaited in shard order, and aggregation (including the
    /// errors-only-when-nothing-drained policy) matches the blocking path
    /// exactly — at `shards: 1` the reply sequence is bit-identical.
    ///
    /// # Errors
    ///
    /// Exactly [`Gateway::drain`]'s: an error surfaces only when no shard
    /// produced any response.
    pub async fn drain_replies(&self) -> Result<Vec<GatewayResponse>> {
        let (pending, mut first_error) = self.inner.drain_begin();
        let mut responses = Vec::new();
        for completion in pending {
            match completion.await {
                Ok(report) => Gateway::fold_drain_report(report, &mut responses, &mut first_error),
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        Gateway::drain_finish(responses, first_error)
    }

    /// [`Gateway::telemetry`]: a point-in-time snapshot of every telemetry
    /// series. Reads lock-free per-shard registries — no shard round-trip,
    /// no parking — so a front-end task can serve a metrics scrape without
    /// perturbing the pipeline it is measuring. `async` only for signature
    /// symmetry with the rest of the front-end; it never awaits.
    pub async fn drain_telemetry(&self) -> crate::telemetry::TelemetrySnapshot {
        self.inner.telemetry()
    }

    /// [`Gateway::close_session`], awaiting the enclave-side key erase.
    ///
    /// # Errors
    ///
    /// Exactly [`Gateway::close_session`]'s.
    pub async fn close_session(&self, session_id: u64) -> Result<()> {
        let (tenant_idx, completion) = self.inner.close_session_begin(session_id)?;
        let outcome = completion.await.and_then(|result| result);
        self.inner.close_session_settle(tenant_idx, outcome)
    }
}
