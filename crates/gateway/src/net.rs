//! The socket front door: a real TCP edge for the gateway.
//!
//! Everything below this module serves requests that already live in
//! process memory. This module is the missing first hop — the thing a
//! TEE-less device on the wrong side of a network actually talks to:
//!
//! * **Framing** ([`frame`]) — length-prefixed [`glimmer_wire`] frames over
//!   a byte stream, parsed incrementally (partial reads and writes are the
//!   normal case, not an error path) with typed failures and a hard
//!   pre-allocation size bound.
//! * **Protocol** ([`proto`]) — one request frame per [`AsyncGateway`]
//!   operation plus an explicit `Drain`, and server-pushed reply frames
//!   carrying the global drain sequence so a socket client can reconstruct
//!   the exact drain order an in-process driver would have seen.
//! * **Reactor** ([`serve`]) — a raw-syscall `epoll` readiness loop (see
//!   [`crate::affinity`] for the no-dependency syscall discipline) that
//!   doubles as the [`SessionExecutor`]'s parker: when no task is
//!   runnable the executor parks *in* `epoll_wait`, and cross-thread wakes
//!   from shard workers ring an `eventfd` doorbell registered in the same
//!   epoll set. One thread, all connections, no polling loops.
//! * **Client** ([`GatewayClient`]) — a blocking driver for tests,
//!   experiments, and example services.
//!
//! # Trust boundary
//!
//! The front door changes nothing about the paper's threat model: it
//! relays sealed bytes it cannot open. Handshakes are attested end-to-end
//! (the `ChannelOffer`/`ChannelAccept` frames are the enclave's own),
//! contributions arrive as ciphertext and leave as ciphertext, and the one
//! plaintext bit per reply is the public endorsed/failed verdict the
//! gateway already learns for quota accounting. What the front door *does*
//! enforce is connection-level ownership: a session id opened on one
//! connection is dead weight on every other — operations on it are
//! rejected and its replies are never routed elsewhere.
//!
//! # Platform support
//!
//! Real sockets need a real readiness syscall. On Linux (x86_64/aarch64)
//! everything here works; elsewhere [`supported`] returns `false` and
//! [`serve`] fails honestly with [`NetError::Unsupported`] instead of
//! shipping a pretend reactor. The in-process [`AsyncGateway`] front-end
//! is unaffected either way.
//!
//! [`AsyncGateway`]: crate::frontend::AsyncGateway
//! [`SessionExecutor`]: crate::frontend::SessionExecutor

use std::fmt;
use std::io;

pub mod client;
pub mod frame;
pub mod proto;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod reactor;
mod server;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys;

pub use client::{ClientError, GatewayClient};
pub use frame::{FrameDecoder, FrameError};
pub use proto::{ReplyEnvelope, Request, Response};
pub use server::{serve, serve_on, ServerHandle, ShutdownSignal};

/// Whether this build can run the socket front door (Linux epoll on
/// x86_64/aarch64). When `false`, [`serve`] returns
/// [`NetError::Unsupported`]; gate socket tests and examples on this.
#[must_use]
pub fn supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

/// Failure to bring up or run the socket front door.
#[derive(Debug)]
pub enum NetError {
    /// This target has no epoll reactor (non-Linux, or an architecture the
    /// raw syscall shim does not cover). The in-process front-end still
    /// works; only real sockets are unavailable.
    Unsupported,
    /// An OS-level failure: binding the listener, creating the epoll set
    /// or eventfd, or spawning the front-door thread.
    Io(io::Error),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unsupported => write!(
                f,
                "socket front door unsupported on this target (needs Linux epoll on x86_64/aarch64)"
            ),
            NetError::Io(e) => write!(f, "socket front door I/O failure: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Unsupported => None,
            NetError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}
