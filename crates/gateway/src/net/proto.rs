//! The front door's request/reply protocol.
//!
//! One request message per [`AsyncGateway`](crate::frontend::AsyncGateway)
//! operation, each answered in order on the same connection, plus two
//! things only a real network edge needs:
//!
//! * An explicit [`Request::Drain`]: when the server's periodic drain is
//!   disabled ([`NetConfig::drain_interval`](crate::NetConfig) = `None`),
//!   clients control exactly when replies are swept out of the enclaves —
//!   which makes the global drain order, and therefore every
//!   [`ReplyEnvelope::drain_seq`], reproducible against an in-process
//!   driver issuing the same operations in the same order.
//! * Server-pushed [`Response::Reply`] frames: endorsement outcomes do not
//!   answer any particular request (draining is batched), so they arrive
//!   tagged with the session id and the global drain sequence instead.
//!
//! Payloads reuse the enclave protocol's own [`WireCodec`] encodings
//! (`ChannelOffer`, `ChannelAccept`, `BatchReplyItem`) — the front door
//! adds framing around sealed bytes, never a second encoding of them.

use glimmer_core::blinding::MaskShare;
use glimmer_core::channel::{ChannelAccept, ChannelOffer};
use glimmer_core::protocol::BatchReplyItem;
use glimmer_wire::{Decoder, Encoder, Frame, WireCodec, WireError};

/// `OpenSession { tenant }` → [`MSG_SESSION_OPENED`].
pub const MSG_OPEN_SESSION: u16 = 0x0001;
/// `CompleteSession { session_id, accept }` → [`MSG_OK`].
pub const MSG_COMPLETE_SESSION: u16 = 0x0002;
/// `InstallMask { session_id, mask }` → [`MSG_OK`].
pub const MSG_INSTALL_MASK: u16 = 0x0003;
/// `InstallMaskSealed { session_id, nonce, ciphertext }` → [`MSG_OK`].
pub const MSG_INSTALL_MASK_SEALED: u16 = 0x0004;
/// `Submit { session_id, ciphertext }` → [`MSG_OK`].
pub const MSG_SUBMIT: u16 = 0x0005;
/// `SubmitMany { session_id, ciphertexts }` → [`MSG_OK`].
pub const MSG_SUBMIT_MANY: u16 = 0x0006;
/// `CloseSession { session_id }` → [`MSG_OK`].
pub const MSG_CLOSE_SESSION: u16 = 0x0007;
/// `Drain` → [`MSG_DRAINED`].
pub const MSG_DRAIN: u16 = 0x0008;

/// Successful `OpenSession` answer: session id + attestation offer.
pub const MSG_SESSION_OPENED: u16 = 0x0081;
/// Generic success answer; payload echoes the acknowledged request type.
pub const MSG_OK: u16 = 0x0082;
/// `Drain` answer: how many replies were routed this sweep (to *all*
/// connections — the count is global, like the drain itself).
pub const MSG_DRAINED: u16 = 0x0088;
/// Server-pushed endorsement outcome (see [`ReplyEnvelope`]).
pub const MSG_REPLY: u16 = 0x0090;
/// Failed request: numeric code + human-readable message.
pub const MSG_ERROR: u16 = 0x00FF;

/// Error code: the gateway rejected the operation (tenant/session/quota/
/// backpressure/enclave failure); the message carries the typed
/// [`GatewayError`](crate::GatewayError) rendering.
pub const CODE_GATEWAY: u16 = 1;
/// Error code: the session id exists but belongs to a different
/// connection — the front door's tenant-isolation guard.
pub const CODE_NOT_OWNER: u16 = 2;
/// Error code: the request frame itself was undecodable or of unknown
/// type; the server drops the connection after sending this.
pub const CODE_PROTOCOL: u16 = 3;

/// A client → server operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a device session under `tenant`; answered with the pool
    /// slot's attestation offer.
    OpenSession {
        /// Tenant name (the service's application id).
        tenant: String,
    },
    /// Finish the attested handshake for a pending session.
    CompleteSession {
        /// The pending session.
        session_id: u64,
        /// The device's handshake acceptance.
        accept: ChannelAccept,
    },
    /// Install a plaintext blinding mask (tenant-operated gateways only).
    InstallMask {
        /// The established session.
        session_id: u64,
        /// The additive mask share.
        mask: MaskShare,
    },
    /// Install a mask sealed under the tenant's own attested channel —
    /// the front door relays bytes it cannot open.
    InstallMaskSealed {
        /// The established session.
        session_id: u64,
        /// AEAD nonce.
        nonce: [u8; 12],
        /// Sealed mask bytes.
        ciphertext: Vec<u8>,
    },
    /// Queue one encrypted contribution.
    Submit {
        /// The established session.
        session_id: u64,
        /// Nonce-prefixed encrypted `ProcessRequest`.
        ciphertext: Vec<u8>,
    },
    /// Queue a session's contribution stream as one atomic group.
    SubmitMany {
        /// The established session.
        session_id: u64,
        /// Nonce-prefixed encrypted `ProcessRequest`s, in order.
        ciphertexts: Vec<Vec<u8>>,
    },
    /// Close a session (enclave-side key erase included).
    CloseSession {
        /// The session to close.
        session_id: u64,
    },
    /// Sweep every enclave's reply queue now; replies fan out to their
    /// owning connections as [`Response::Reply`] pushes.
    Drain,
}

/// A server-pushed endorsement outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyEnvelope {
    /// Position in the *global* drain order (one counter across all
    /// connections, incremented per drained reply). Sorting any client
    /// population's envelopes by this reconstructs the exact order an
    /// in-process driver's `drain_replies` would have returned.
    pub drain_seq: u64,
    /// The owning session.
    pub session_id: u64,
    /// The enclave's outcome (sealed reply ciphertext + public endorsed
    /// bit, or a typed failure string).
    pub outcome: glimmer_core::protocol::BatchOutcome,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `OpenSession` succeeded.
    SessionOpened {
        /// The new session id (also the reply-routing key).
        session_id: u64,
        /// The pool slot's attestation offer for the device handshake.
        offer: ChannelOffer,
    },
    /// The request of the echoed type succeeded.
    Ok {
        /// `msg_type` of the acknowledged request.
        acked: u16,
    },
    /// `Drain` finished.
    Drained {
        /// Replies routed by this sweep, across all connections.
        routed: u64,
    },
    /// A pushed endorsement outcome.
    Reply(ReplyEnvelope),
    /// The request failed; the connection survives unless the code is
    /// [`CODE_PROTOCOL`].
    Error {
        /// One of the `CODE_*` constants.
        code: u16,
        /// Human-readable cause.
        message: String,
    },
}

impl Request {
    /// Encodes into a wire frame.
    #[must_use]
    pub fn to_frame(&self) -> Frame {
        let mut enc = Encoder::new();
        let msg_type = match self {
            Request::OpenSession { tenant } => {
                enc.put_str(tenant);
                MSG_OPEN_SESSION
            }
            Request::CompleteSession { session_id, accept } => {
                enc.put_u64(*session_id);
                accept.encode(&mut enc);
                MSG_COMPLETE_SESSION
            }
            Request::InstallMask { session_id, mask } => {
                enc.put_u64(*session_id);
                enc.put_u64(mask.round);
                enc.put_u64(mask.client_id);
                enc.put_u64_vec(&mask.mask);
                MSG_INSTALL_MASK
            }
            Request::InstallMaskSealed {
                session_id,
                nonce,
                ciphertext,
            } => {
                enc.put_u64(*session_id);
                enc.put_raw(nonce);
                enc.put_bytes(ciphertext);
                MSG_INSTALL_MASK_SEALED
            }
            Request::Submit {
                session_id,
                ciphertext,
            } => {
                enc.put_u64(*session_id);
                enc.put_bytes(ciphertext);
                MSG_SUBMIT
            }
            Request::SubmitMany {
                session_id,
                ciphertexts,
            } => {
                enc.put_u64(*session_id);
                enc.put_varint(ciphertexts.len() as u64);
                for ciphertext in ciphertexts {
                    enc.put_bytes(ciphertext);
                }
                MSG_SUBMIT_MANY
            }
            Request::CloseSession { session_id } => {
                enc.put_u64(*session_id);
                MSG_CLOSE_SESSION
            }
            Request::Drain => MSG_DRAIN,
        };
        Frame::new(msg_type, enc.into_bytes())
    }

    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// [`WireError`] on unknown message type, truncation, or trailing
    /// bytes — all fatal protocol violations for the connection.
    pub fn from_frame(frame: &Frame) -> Result<Self, WireError> {
        let mut dec = Decoder::new(&frame.payload);
        let request = match frame.msg_type {
            MSG_OPEN_SESSION => Request::OpenSession {
                tenant: dec.get_str()?,
            },
            MSG_COMPLETE_SESSION => Request::CompleteSession {
                session_id: dec.get_u64()?,
                accept: ChannelAccept::decode(&mut dec)?,
            },
            MSG_INSTALL_MASK => Request::InstallMask {
                session_id: dec.get_u64()?,
                mask: MaskShare {
                    round: dec.get_u64()?,
                    client_id: dec.get_u64()?,
                    mask: dec.get_u64_vec()?,
                },
            },
            MSG_INSTALL_MASK_SEALED => Request::InstallMaskSealed {
                session_id: dec.get_u64()?,
                nonce: dec
                    .get_raw(12)?
                    .try_into()
                    .expect("get_raw(12) yields 12 bytes"),
                ciphertext: dec.get_bytes()?,
            },
            MSG_SUBMIT => Request::Submit {
                session_id: dec.get_u64()?,
                ciphertext: dec.get_bytes()?,
            },
            MSG_SUBMIT_MANY => {
                let session_id = dec.get_u64()?;
                let raw_count = dec.get_varint()?;
                // Each entry costs at least one payload byte (its length
                // varint), so anything beyond that is a hostile count.
                if raw_count > frame.payload.len() as u64 {
                    return Err(WireError::LengthOverflow(raw_count));
                }
                let count = raw_count as usize;
                let mut ciphertexts = Vec::with_capacity(count);
                for _ in 0..count {
                    ciphertexts.push(dec.get_bytes()?);
                }
                Request::SubmitMany {
                    session_id,
                    ciphertexts,
                }
            }
            MSG_CLOSE_SESSION => Request::CloseSession {
                session_id: dec.get_u64()?,
            },
            MSG_DRAIN => Request::Drain,
            _ => {
                return Err(WireError::UnexpectedEnd {
                    needed: 1,
                    remaining: 0,
                })
            }
        };
        dec.finish()?;
        Ok(request)
    }

    /// The request's frame type tag (what [`Response::Ok`] echoes).
    #[must_use]
    pub fn msg_type(&self) -> u16 {
        match self {
            Request::OpenSession { .. } => MSG_OPEN_SESSION,
            Request::CompleteSession { .. } => MSG_COMPLETE_SESSION,
            Request::InstallMask { .. } => MSG_INSTALL_MASK,
            Request::InstallMaskSealed { .. } => MSG_INSTALL_MASK_SEALED,
            Request::Submit { .. } => MSG_SUBMIT,
            Request::SubmitMany { .. } => MSG_SUBMIT_MANY,
            Request::CloseSession { .. } => MSG_CLOSE_SESSION,
            Request::Drain => MSG_DRAIN,
        }
    }
}

impl Response {
    /// Encodes into a wire frame.
    #[must_use]
    pub fn to_frame(&self) -> Frame {
        let mut enc = Encoder::new();
        let msg_type = match self {
            Response::SessionOpened { session_id, offer } => {
                enc.put_u64(*session_id);
                offer.encode(&mut enc);
                MSG_SESSION_OPENED
            }
            Response::Ok { acked } => {
                enc.put_u16(*acked);
                MSG_OK
            }
            Response::Drained { routed } => {
                enc.put_varint(*routed);
                MSG_DRAINED
            }
            Response::Reply(envelope) => {
                enc.put_varint(envelope.drain_seq);
                BatchReplyItem {
                    session_id: envelope.session_id,
                    outcome: envelope.outcome.clone(),
                }
                .encode(&mut enc);
                MSG_REPLY
            }
            Response::Error { code, message } => {
                enc.put_u16(*code);
                enc.put_str(message);
                MSG_ERROR
            }
        };
        Frame::new(msg_type, enc.into_bytes())
    }

    /// Decodes a response frame.
    ///
    /// # Errors
    ///
    /// [`WireError`] on unknown message type, truncation, or trailing
    /// bytes.
    pub fn from_frame(frame: &Frame) -> Result<Self, WireError> {
        let mut dec = Decoder::new(&frame.payload);
        let response = match frame.msg_type {
            MSG_SESSION_OPENED => Response::SessionOpened {
                session_id: dec.get_u64()?,
                offer: ChannelOffer::decode(&mut dec)?,
            },
            MSG_OK => Response::Ok {
                acked: dec.get_u16()?,
            },
            MSG_DRAINED => Response::Drained {
                routed: dec.get_varint()?,
            },
            MSG_REPLY => {
                let drain_seq = dec.get_varint()?;
                let item = BatchReplyItem::decode(&mut dec)?;
                Response::Reply(ReplyEnvelope {
                    drain_seq,
                    session_id: item.session_id,
                    outcome: item.outcome,
                })
            }
            MSG_ERROR => Response::Error {
                code: dec.get_u16()?,
                message: dec.get_str()?,
            },
            _ => {
                return Err(WireError::UnexpectedEnd {
                    needed: 1,
                    remaining: 0,
                })
            }
        };
        dec.finish()?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::OpenSession {
                tenant: "iot-telemetry.example".into(),
            },
            Request::InstallMask {
                session_id: 7,
                mask: MaskShare {
                    round: 3,
                    client_id: 9,
                    mask: vec![1, u64::MAX, 0],
                },
            },
            Request::InstallMaskSealed {
                session_id: 8,
                nonce: [9; 12],
                ciphertext: vec![1, 2, 3],
            },
            Request::Submit {
                session_id: 1,
                ciphertext: vec![0xAB; 40],
            },
            Request::SubmitMany {
                session_id: 2,
                ciphertexts: vec![vec![1], vec![], vec![2, 3]],
            },
            Request::CloseSession { session_id: 5 },
            Request::Drain,
        ];
        for request in requests {
            let frame = request.to_frame();
            assert_eq!(frame.msg_type, request.msg_type());
            let back = Request::from_frame(&frame).expect("round-trip");
            assert_eq!(back, request);
        }
    }

    #[test]
    fn responses_round_trip() {
        use glimmer_core::protocol::BatchOutcome;
        let responses = vec![
            Response::Ok { acked: MSG_SUBMIT },
            Response::Drained { routed: 4242 },
            Response::Reply(ReplyEnvelope {
                drain_seq: 17,
                session_id: 3,
                outcome: BatchOutcome::Reply {
                    ciphertext: vec![5; 24],
                    endorsed: true,
                },
            }),
            Response::Error {
                code: CODE_NOT_OWNER,
                message: "session 3 belongs to another connection".into(),
            },
        ];
        for response in responses {
            let back = Response::from_frame(&response.to_frame()).expect("round-trip");
            assert_eq!(back, response);
        }
    }

    #[test]
    fn unknown_message_types_are_rejected() {
        let frame = Frame::new(0x7777, Vec::new());
        assert!(Request::from_frame(&frame).is_err());
        assert!(Response::from_frame(&frame).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = Request::CloseSession { session_id: 1 }.to_frame();
        frame.payload.push(0);
        assert!(Request::from_frame(&frame).is_err());
    }
}
