//! Raw `epoll(7)`/`eventfd(2)` syscall shim for the readiness reactor.
//!
//! Same discipline as [`crate::affinity`]: the workspace takes no external
//! dependencies, so on Linux the reactor issues raw syscalls (no libc).
//! This module only exists on Linux x86_64/aarch64 — [`super::supported`]
//! reports `false` everywhere else and the reactor refuses to construct,
//! so nothing here gates compilation on other targets.
//!
//! Every wrapper translates the kernel's `-errno` convention into
//! [`std::io::Error`], and every file descriptor minted here is owned by
//! exactly one reactor which closes it on drop.

#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

use std::io;

/// `EPOLL_CTL_ADD`: register a new fd with the epoll set.
pub(crate) const EPOLL_CTL_ADD: i32 = 1;
/// `EPOLL_CTL_DEL`: remove an fd from the epoll set.
pub(crate) const EPOLL_CTL_DEL: i32 = 2;
/// `EPOLL_CTL_MOD`: change a registered fd's interest mask.
pub(crate) const EPOLL_CTL_MOD: i32 = 3;

/// Readable (`EPOLLIN`).
pub(crate) const EPOLLIN: u32 = 0x001;
/// Writable (`EPOLLOUT`).
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`; always reported, listed for arming clarity).
pub(crate) const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`; always reported).
pub(crate) const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`).
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
/// One-shot arming (`EPOLLONESHOT`): the fd is disarmed after one event,
/// and the owning task re-arms explicitly — this is what prevents a
/// level-triggered busy spin while a connection task awaits the gateway
/// with readable bytes still queued on its socket.
pub(crate) const EPOLLONESHOT: u32 = 1 << 30;

/// `EPOLL_CLOEXEC` / `EFD_CLOEXEC` (== `O_CLOEXEC`).
const CLOEXEC: i64 = 0x80000;
/// `EFD_NONBLOCK` (== `O_NONBLOCK`).
const EFD_NONBLOCK: i64 = 0x800;

/// One `epoll_wait` readiness record. x86_64 is the one Linux ABI where
/// this struct is packed; aarch64 uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    /// Readiness bits (`EPOLLIN` etc.).
    pub events: u32,
    /// Caller cookie; the reactor stores the fd here.
    pub data: u64,
}

impl EpollEvent {
    pub(crate) const fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }
}

/// Converts a raw syscall return into `Ok(value)` or the `-errno` it holds.
fn check(ret: i64) -> io::Result<i64> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error((-ret) as i32))
    } else {
        Ok(ret)
    }
}

/// Creates an epoll instance (`epoll_create1(EPOLL_CLOEXEC)`).
pub(crate) fn epoll_create1() -> io::Result<i32> {
    check(imp::syscall(
        imp::SYS_EPOLL_CREATE1,
        [CLOEXEC, 0, 0, 0, 0, 0],
    ))
    .map(|fd| fd as i32)
}

/// Adds/modifies/removes `fd` in the epoll set. `events`/`data` are ignored
/// by the kernel for `EPOLL_CTL_DEL`.
pub(crate) fn epoll_ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
    let mut event = EpollEvent { events, data };
    let event_ptr = if op == EPOLL_CTL_DEL {
        core::ptr::null_mut()
    } else {
        &mut event as *mut EpollEvent
    };
    check(imp::syscall(
        imp::SYS_EPOLL_CTL,
        [
            i64::from(epfd),
            i64::from(op),
            i64::from(fd),
            event_ptr as i64,
            0,
            0,
        ],
    ))
    .map(|_| ())
}

/// Waits for readiness events, at most `timeout_ms` (`-1` = no bound).
/// Returns the number of records written into `events`. `EINTR` is
/// reported as zero events — the run loop re-parks anyway.
pub(crate) fn epoll_wait(
    epfd: i32,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    let ret = imp::epoll_wait_raw(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms);
    match check(ret) {
        Ok(n) => Ok(n as usize),
        Err(e) if e.raw_os_error() == Some(4 /* EINTR */) => Ok(0),
        Err(e) => Err(e),
    }
}

/// Creates the reactor's doorbell eventfd
/// (`eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)`).
pub(crate) fn eventfd() -> io::Result<i32> {
    check(imp::syscall(
        imp::SYS_EVENTFD2,
        [0, CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0],
    ))
    .map(|fd| fd as i32)
}

/// Rings an eventfd: adds 1 to its counter. A full counter (`EAGAIN`,
/// effectively impossible at u64 range) and a racing close (`EBADF` after
/// the reactor shut down) are both ignored — the ring is best-effort by
/// contract.
pub(crate) fn eventfd_ring(fd: i32) {
    let one: u64 = 1;
    let _ = imp::syscall(
        imp::SYS_WRITE,
        [
            i64::from(fd),
            core::ptr::addr_of!(one) as i64,
            core::mem::size_of::<u64>() as i64,
            0,
            0,
            0,
        ],
    );
}

/// Drains an eventfd's counter so the level-triggered registration goes
/// quiet until the next ring.
pub(crate) fn eventfd_drain(fd: i32) {
    let mut buf: u64 = 0;
    let _ = imp::syscall(
        imp::SYS_READ,
        [
            i64::from(fd),
            core::ptr::addr_of_mut!(buf) as i64,
            core::mem::size_of::<u64>() as i64,
            0,
            0,
            0,
        ],
    );
}

/// Closes a reactor-owned fd.
pub(crate) fn close(fd: i32) {
    let _ = imp::syscall(imp::SYS_CLOSE, [i64::from(fd), 0, 0, 0, 0, 0]);
}

/// The one `unsafe` corner of the reactor: the raw syscall instruction.
///
/// Invariants keeping this sound:
/// * Every pointer argument passed by the wrappers above points to a live
///   local or caller-owned buffer whose length is passed alongside it, per
///   each syscall's documented contract; the kernel writes only within
///   those bounds (`epoll_wait` event arrays, the eventfd read buffer).
/// * The inline asm clobbers are exactly the Linux syscall ABI's
///   (`rcx`/`r11` on x86_64; `x8` plus argument registers on aarch64), and
///   no Rust state is live across the instruction beyond the declared
///   operands.
/// * No syscall here touches foreign processes or threads; all operate on
///   fds this process owns.
#[allow(unsafe_code)]
mod imp {
    use super::EpollEvent;

    #[cfg(target_arch = "x86_64")]
    pub(super) const SYS_READ: i64 = 0;
    #[cfg(target_arch = "x86_64")]
    pub(super) const SYS_WRITE: i64 = 1;
    #[cfg(target_arch = "x86_64")]
    pub(super) const SYS_CLOSE: i64 = 3;
    #[cfg(target_arch = "x86_64")]
    const SYS_EPOLL_WAIT: i64 = 232;
    #[cfg(target_arch = "x86_64")]
    pub(super) const SYS_EPOLL_CTL: i64 = 233;
    #[cfg(target_arch = "x86_64")]
    pub(super) const SYS_EVENTFD2: i64 = 290;
    #[cfg(target_arch = "x86_64")]
    pub(super) const SYS_EPOLL_CREATE1: i64 = 291;

    #[cfg(target_arch = "aarch64")]
    pub(super) const SYS_EVENTFD2: i64 = 19;
    #[cfg(target_arch = "aarch64")]
    pub(super) const SYS_EPOLL_CREATE1: i64 = 20;
    #[cfg(target_arch = "aarch64")]
    pub(super) const SYS_EPOLL_CTL: i64 = 21;
    #[cfg(target_arch = "aarch64")]
    const SYS_EPOLL_PWAIT: i64 = 22;
    #[cfg(target_arch = "aarch64")]
    pub(super) const SYS_CLOSE: i64 = 57;
    #[cfg(target_arch = "aarch64")]
    pub(super) const SYS_READ: i64 = 63;
    #[cfg(target_arch = "aarch64")]
    pub(super) const SYS_WRITE: i64 = 64;

    #[cfg(target_arch = "x86_64")]
    pub(super) fn syscall(nr: i64, args: [i64; 6]) -> i64 {
        let ret: i64;
        // SAFETY: see module docs — pointer arguments are live caller
        // buffers with their lengths passed alongside; standard x86_64
        // syscall clobbers.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") nr => ret,
                in("rdi") args[0],
                in("rsi") args[1],
                in("rdx") args[2],
                in("r10") args[3],
                in("r8") args[4],
                in("r9") args[5],
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    pub(super) fn syscall(nr: i64, args: [i64; 6]) -> i64 {
        let ret: i64;
        // SAFETY: see module docs — pointer arguments are live caller
        // buffers with their lengths passed alongside; standard aarch64
        // syscall convention (number in x8, `svc 0`).
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") nr,
                inlateout("x0") args[0] => ret,
                in("x1") args[1],
                in("x2") args[2],
                in("x3") args[3],
                in("x4") args[4],
                in("x5") args[5],
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "x86_64")]
    pub(super) fn epoll_wait_raw(
        epfd: i32,
        events: *mut EpollEvent,
        max: i32,
        timeout_ms: i32,
    ) -> i64 {
        syscall(
            SYS_EPOLL_WAIT,
            [
                i64::from(epfd),
                events as i64,
                i64::from(max),
                i64::from(timeout_ms),
                0,
                0,
            ],
        )
    }

    #[cfg(target_arch = "aarch64")]
    pub(super) fn epoll_wait_raw(
        epfd: i32,
        events: *mut EpollEvent,
        max: i32,
        timeout_ms: i32,
    ) -> i64 {
        // aarch64 has no epoll_wait; epoll_pwait with a NULL sigmask (and
        // sigsetsize 0) is the kernel's own compatibility spelling.
        syscall(
            SYS_EPOLL_PWAIT,
            [
                i64::from(epfd),
                events as i64,
                i64::from(max),
                i64::from(timeout_ms),
                0,
                0,
            ],
        )
    }
}
