//! The epoll readiness reactor, and its integration with the executor.
//!
//! One [`Reactor`] owns one epoll set plus one eventfd "doorbell". Every
//! connection (and the listener) registers its fd once, then *arms* an
//! interest (`EPOLLONESHOT`) each time its task is about to suspend on I/O.
//! One-shot arming is load-bearing: while a connection task awaits a
//! gateway completion with unread bytes still queued on its socket, a
//! level-triggered registration would make every park return immediately.
//!
//! The executor integration is two trait objects:
//!
//! * [`Notifier`] (the doorbell) is `Send + Sync` and hangs off the ready
//!   queue: every wake pushed from a shard worker thread writes the
//!   eventfd, which is readable state — a ring *before* the reactor parks
//!   is still observed, so no wake can be lost between `try_pop` and
//!   `epoll_wait`.
//! * [`Reactor`] itself is the [`Parker`]: when the executor has nothing
//!   runnable it parks in `epoll_wait`, bounded by the nearest timer-wheel
//!   deadline, and readiness events wake the owning tasks directly.

use super::sys;
use crate::frontend::executor::{Doorbell, Parker};
use std::cell::RefCell;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::Waker;
use std::time::Duration;

/// Interests a task can arm for its fd.
#[derive(Clone, Copy)]
pub(crate) struct Interest {
    /// Wake when readable (or peer hung up).
    pub read: bool,
    /// Wake when writable.
    pub write: bool,
}

/// The `Send + Sync` half of the reactor: rings the eventfd doorbell.
///
/// Held by the executor's ready queue (so shard-worker wakes interrupt an
/// `epoll_wait` park) and by [`ShutdownSignal`](super::ShutdownSignal)
/// (so `stop()` does too). `active` is cleared before the reactor closes
/// its fds, so a straggling ring after shutdown cannot write into a
/// recycled descriptor.
pub(crate) struct Notifier {
    wakefd: i32,
    active: AtomicBool,
}

impl Doorbell for Notifier {
    fn ring(&self) {
        if self.active.load(Ordering::Acquire) {
            sys::eventfd_ring(self.wakefd);
        }
    }
}

/// One registered fd: the waker of the task that last armed it.
struct Source {
    waker: Option<Waker>,
}

/// The epoll readiness reactor. Not `Send`: it lives and dies on the
/// front-door thread, like the executor it parks.
pub(crate) struct Reactor {
    epfd: i32,
    notifier: Arc<Notifier>,
    sources: RefCell<HashMap<u64, Source>>,
}

impl Reactor {
    /// Creates the epoll set and doorbell eventfd, registering the
    /// doorbell level-triggered (it is drained on every wake, so it only
    /// stays readable while rings are pending).
    pub(crate) fn new() -> io::Result<Reactor> {
        let epfd = sys::epoll_create1()?;
        let wakefd = match sys::eventfd() {
            Ok(fd) => fd,
            Err(e) => {
                sys::close(epfd);
                return Err(e);
            }
        };
        if let Err(e) = sys::epoll_ctl(
            epfd,
            sys::EPOLL_CTL_ADD,
            wakefd,
            sys::EPOLLIN,
            wakefd as u64,
        ) {
            sys::close(wakefd);
            sys::close(epfd);
            return Err(e);
        }
        Ok(Reactor {
            epfd,
            notifier: Arc::new(Notifier {
                wakefd,
                active: AtomicBool::new(true),
            }),
            sources: RefCell::new(HashMap::new()),
        })
    }

    /// The doorbell half, for [`SessionExecutor::attach_parker`] and the
    /// shutdown signal.
    ///
    /// [`SessionExecutor::attach_parker`]: crate::frontend::SessionExecutor
    pub(crate) fn notifier(&self) -> Arc<Notifier> {
        Arc::clone(&self.notifier)
    }

    /// Registers `fd` disarmed (no interests). Arm before each suspend.
    pub(crate) fn register(&self, fd: i32) -> io::Result<()> {
        sys::epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            sys::EPOLLONESHOT,
            fd as u64,
        )?;
        self.sources
            .borrow_mut()
            .insert(fd as u64, Source { waker: None });
        Ok(())
    }

    /// Arms `fd` one-shot for `interest`, storing `waker` to deliver the
    /// event. Replaces any previous arming (same task re-arming with a
    /// fresh waker is the steady state).
    pub(crate) fn arm(&self, fd: i32, interest: Interest, waker: &Waker) {
        let mut events = sys::EPOLLONESHOT | sys::EPOLLERR | sys::EPOLLHUP;
        if interest.read {
            events |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if interest.write {
            events |= sys::EPOLLOUT;
        }
        // MOD on a registered fd cannot fail for reasons the task can fix;
        // if it somehow does, wake immediately so the task retries its I/O
        // (worst case it re-arms, never hangs).
        if sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, events, fd as u64).is_err() {
            waker.wake_by_ref();
            return;
        }
        if let Some(source) = self.sources.borrow_mut().get_mut(&(fd as u64)) {
            source.waker = Some(waker.clone());
        }
    }

    /// Removes `fd` from the epoll set (the caller still owns and closes
    /// the socket itself).
    pub(crate) fn deregister(&self, fd: i32) {
        let _ = sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0);
        self.sources.borrow_mut().remove(&(fd as u64));
    }

    /// Waits for readiness up to `timeout`, draining the doorbell and
    /// waking every task whose armed fd fired.
    pub(crate) fn poll_io(&self, timeout: Option<Duration>) {
        let timeout_ms = match timeout {
            // Round up so a 100µs timer bound doesn't become a busy loop
            // of zero-timeout epoll_waits.
            Some(t) => i64::try_from(t.as_millis())
                .unwrap_or(i64::MAX)
                .clamp(1, 60_000) as i32,
            None => -1,
        };
        let mut events = [sys::EpollEvent::zeroed(); 64];
        let n = match sys::epoll_wait(self.epfd, &mut events, timeout_ms) {
            Ok(n) => n,
            Err(_) => return,
        };
        let mut pending = Vec::new();
        {
            let mut sources = self.sources.borrow_mut();
            for event in &events[..n] {
                let cookie = event.data;
                if cookie == self.notifier.wakefd as u64 {
                    sys::eventfd_drain(self.notifier.wakefd);
                    continue;
                }
                if let Some(source) = sources.get_mut(&cookie) {
                    if let Some(waker) = source.waker.take() {
                        pending.push(waker);
                    }
                }
            }
        }
        for waker in pending {
            waker.wake();
        }
    }
}

impl Parker for Reactor {
    fn park(&self, timeout: Option<Duration>) {
        self.poll_io(timeout);
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        // Quiesce the doorbell before closing its fd: a shard worker
        // holding a stale waker must never write into a descriptor number
        // the OS has recycled.
        self.notifier.active.store(false, Ordering::Release);
        sys::close(self.notifier.wakefd);
        sys::close(self.epfd);
    }
}
