//! The serving side of the front door: accept loop, per-connection tasks,
//! the global reply drainer, and the stale-handshake sweeper — all spawned
//! onto **one** [`SessionExecutor`] parked in the epoll reactor.
//!
//! # Task layout
//!
//! * **accept** — non-blocking `accept()` until `WouldBlock`, then parks
//!   on listener readability. Each accepted socket becomes one connection
//!   task, spawned through the executor's [`Spawner`].
//! * **connection** (one per socket) — flush pending writes, read and
//!   decode frames, handle each request *in arrival order* (awaiting the
//!   gateway mid-stream pauses that connection only), then suspend on
//!   readability / writability / idle deadline / shutdown, whichever
//!   fires first.
//! * **drainer** (optional) — sweeps [`AsyncGateway::drain_replies`] every
//!   [`NetConfig::drain_interval`](crate::NetConfig) and routes each reply
//!   to the connection *owning* its session. Clients can also trigger the
//!   same sweep with an explicit `Drain` request — with the periodic
//!   drainer disabled that makes the global drain order client-controlled
//!   and reproducible.
//! * **sweeper** (optional) — calls
//!   [`Gateway::evict_stale_pending`](crate::Gateway::evict_stale_pending)
//!   every [`GatewayConfig::evict_stale_period`](crate::GatewayConfig) on
//!   the executor's timer wheel, so abandoned handshakes stop pinning
//!   session quota without any operator cron job.
//!
//! # Ownership and isolation
//!
//! A session id is bound to the connection that opened it. Requests
//! naming someone else's session are answered with
//! [`CODE_NOT_OWNER`](super::proto::CODE_NOT_OWNER) and never reach the
//! gateway; replies are routed only to the owning connection. When a
//! connection dies — cleanly, by idle timeout, or by protocol violation —
//! its sessions are closed behind it (enclave-side key erase included),
//! and anything that slips through falls to the sweeper.
//!
//! [`AsyncGateway::drain_replies`]: crate::frontend::AsyncGateway::drain_replies
//! [`SessionExecutor`]: crate::frontend::SessionExecutor
//! [`Spawner`]: crate::frontend::Spawner

use super::NetError;
use crate::frontend::lock_unpoisoned;
use crate::frontend::{AsyncGateway, SessionExecutor};
use crate::gateway::GatewayResponse;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::task::Waker;
use std::thread::JoinHandle;

/// Cooperative stop flag shared by every front-door task.
///
/// Long-lived tasks re-register their waker here each time they suspend;
/// [`ShutdownSignal::stop`] flips the flag and wakes them all, and each
/// task observes the flag at its next poll and exits. Waking goes through
/// the executor's ready queue, whose doorbell interrupts a reactor parked
/// in `epoll_wait` — so `stop()` works from any thread.
pub struct ShutdownSignal {
    stopped: AtomicBool,
    wakers: Mutex<HashMap<usize, Waker>>,
    next_slot: AtomicUsize,
}

impl ShutdownSignal {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ShutdownSignal {
            stopped: AtomicBool::new(false),
            wakers: Mutex::new(HashMap::new()),
            next_slot: AtomicUsize::new(0),
        })
    }

    /// Requests shutdown: every front-door task exits at its next poll,
    /// the accept loop stops taking connections, and the server's
    /// executor returns once in-flight gateway operations settle.
    pub fn stop(&self) {
        let pending: Vec<Waker> = {
            let mut wakers = lock_unpoisoned(&self.wakers);
            self.stopped.store(true, Ordering::Release);
            wakers.drain().map(|(_, waker)| waker).collect()
        };
        for waker in pending {
            waker.wake();
        }
    }

    /// Whether [`ShutdownSignal::stop`] has been called.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::Acquire)
    }

    /// A waker slot for one long-lived task (stable across re-arms).
    pub(crate) fn alloc_slot(&self) -> usize {
        self.next_slot.fetch_add(1, Ordering::Relaxed)
    }

    /// (Re-)registers `waker` to fire on stop. If stop already happened,
    /// wakes immediately — registration cannot race into a missed wake
    /// because both sides hold the waker-map lock around the flag.
    pub(crate) fn set_waker(&self, slot: usize, waker: &Waker) {
        let mut wakers = lock_unpoisoned(&self.wakers);
        if self.stopped.load(Ordering::Acquire) {
            drop(wakers);
            waker.wake_by_ref();
            return;
        }
        wakers.insert(slot, waker.clone());
    }

    /// Drops a task's slot on exit.
    pub(crate) fn free_slot(&self, slot: usize) {
        lock_unpoisoned(&self.wakers).remove(&slot);
    }
}

/// A running front door ([`serve`]): the bound address, a stop handle,
/// and the serving thread's join handle. Dropping it stops the server.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<ShutdownSignal>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` bindings).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared stop flag, for wiring shutdown into external signals.
    #[must_use]
    pub fn shutdown_signal(&self) -> Arc<ShutdownSignal> {
        Arc::clone(&self.shutdown)
    }

    /// Stops the server and joins its thread. In-flight gateway
    /// operations settle first; unread client bytes are dropped.
    pub fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shutdown.stop();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds [`NetConfig::bind_addr`](crate::NetConfig) and serves the
/// gateway behind it on one dedicated front-door thread.
///
/// Replies whose session was *not* opened over a socket (in-process
/// drivers sharing the pool) are delivered to `unrouted`, or dropped if
/// `None`.
///
/// # Errors
///
/// [`NetError::Unsupported`] on targets without the epoll reactor;
/// [`NetError::Io`] if binding, reactor setup, or thread spawn fails.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub fn serve(
    frontend: AsyncGateway,
    unrouted: Option<mpsc::Sender<GatewayResponse>>,
) -> Result<ServerHandle, NetError> {
    let listener = TcpListener::bind(&frontend.gateway().config().net.bind_addr)?;
    let addr = listener.local_addr()?;
    let (startup_tx, startup_rx) = mpsc::channel();
    let thread = std::thread::Builder::new()
        .name("glimmer-frontdoor".to_string())
        .spawn(move || {
            let mut executor = SessionExecutor::with_clock(frontend.gateway().clock_handle());
            executor.attach_telemetry(frontend.gateway().telemetry_handle());
            match serve_on(&mut executor, frontend, listener, unrouted) {
                Ok(shutdown) => {
                    let _ = startup_tx.send(Ok(shutdown));
                    executor.run();
                }
                Err(e) => {
                    let _ = startup_tx.send(Err(e));
                }
            }
        })
        .map_err(NetError::Io)?;
    let shutdown = startup_rx
        .recv()
        .map_err(|_| NetError::Io(std::io::Error::other("front-door thread died at startup")))??;
    Ok(ServerHandle {
        addr,
        shutdown,
        thread: Some(thread),
    })
}

/// [`serve`] on a target without the epoll reactor: always
/// [`NetError::Unsupported`], before any socket is touched.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn serve(
    frontend: AsyncGateway,
    unrouted: Option<mpsc::Sender<GatewayResponse>>,
) -> Result<ServerHandle, NetError> {
    let _ = (frontend, unrouted);
    Err(NetError::Unsupported)
}

/// Spawns the front-door tasks onto a caller-owned executor serving
/// `listener` — the composable core of [`serve`], for callers that want
/// the serving thread to be *this* thread (tests driving a
/// [`ManualClock`](crate::ManualClock), experiments counting threads).
/// Call [`SessionExecutor::run`] afterwards; it returns once
/// [`ShutdownSignal::stop`] is called and in-flight operations settle.
///
/// # Errors
///
/// [`NetError::Unsupported`] without the epoll reactor; [`NetError::Io`]
/// if reactor setup or listener configuration fails.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub fn serve_on(
    executor: &mut SessionExecutor,
    frontend: AsyncGateway,
    listener: TcpListener,
    unrouted: Option<mpsc::Sender<GatewayResponse>>,
) -> Result<Arc<ShutdownSignal>, NetError> {
    imp::serve_on(executor, frontend, listener, unrouted)
}

/// [`serve_on`] on a target without the epoll reactor: always
/// [`NetError::Unsupported`].
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn serve_on(
    executor: &mut SessionExecutor,
    frontend: AsyncGateway,
    listener: TcpListener,
    unrouted: Option<mpsc::Sender<GatewayResponse>>,
) -> Result<Arc<ShutdownSignal>, NetError> {
    let _ = (executor, frontend, listener, unrouted);
    Err(NetError::Unsupported)
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::super::frame::{encode_frame, FrameDecoder};
    use super::super::proto::{
        ReplyEnvelope, Request, Response, CODE_GATEWAY, CODE_NOT_OWNER, CODE_PROTOCOL,
    };
    use super::super::reactor::{Interest, Reactor};
    use super::{NetError, ShutdownSignal};
    use crate::config::NetConfig;
    use crate::frontend::{AsyncGateway, SessionExecutor, Sleep, Spawner, TimerHandle};
    use crate::gateway::GatewayResponse;
    use crate::telemetry::Telemetry;
    use std::cell::{Cell, RefCell};
    use std::collections::{HashMap, HashSet};
    use std::future::Future;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::pin::Pin;
    use std::rc::Rc;
    use std::sync::{mpsc, Arc};
    use std::task::{Context, Poll, Waker};
    use std::time::Duration;

    /// Per-connection state the drainer can reach: the pending write
    /// buffer and the connection task's waker.
    struct ConnShared {
        outbox: RefCell<OutBuf>,
        waker: RefCell<Option<Waker>>,
    }

    struct OutBuf {
        buf: Vec<u8>,
        cursor: usize,
    }

    impl ConnShared {
        fn new() -> Rc<Self> {
            Rc::new(ConnShared {
                outbox: RefCell::new(OutBuf {
                    buf: Vec::new(),
                    cursor: 0,
                }),
                waker: RefCell::new(None),
            })
        }

        fn outbox_pending(&self) -> bool {
            let outbox = self.outbox.borrow();
            outbox.cursor < outbox.buf.len()
        }
    }

    /// Everything the front-door tasks share.
    struct ServerCtx {
        frontend: AsyncGateway,
        reactor: Rc<Reactor>,
        spawner: Spawner,
        timer: TimerHandle,
        registry: RefCell<HashMap<u64, Rc<ConnShared>>>,
        drain_seq: Cell<u64>,
        shutdown: Arc<ShutdownSignal>,
        net: NetConfig,
        stale: Option<(Duration, Duration)>,
        unrouted: Option<mpsc::Sender<GatewayResponse>>,
        telemetry: Arc<Telemetry>,
    }

    pub(super) fn serve_on(
        executor: &mut SessionExecutor,
        frontend: AsyncGateway,
        listener: TcpListener,
        unrouted: Option<mpsc::Sender<GatewayResponse>>,
    ) -> Result<Arc<ShutdownSignal>, NetError> {
        listener.set_nonblocking(true)?;
        let reactor = Rc::new(Reactor::new()?);
        executor.attach_parker(
            Rc::clone(&reactor) as Rc<dyn crate::frontend::executor::Parker>,
            {
                let notifier = reactor.notifier();
                notifier as Arc<dyn crate::frontend::executor::Doorbell>
            },
        );
        let config = frontend.gateway().config().clone();
        let shutdown = ShutdownSignal::new();
        let ctx = Rc::new(ServerCtx {
            telemetry: frontend.gateway().telemetry_handle(),
            timer: executor.timer(),
            spawner: executor.spawner(),
            frontend,
            reactor,
            registry: RefCell::new(HashMap::new()),
            drain_seq: Cell::new(0),
            shutdown: Arc::clone(&shutdown),
            net: config.net.clone(),
            stale: config
                .evict_stale_period
                .map(|period| (period, config.stale_pending_after)),
            unrouted,
        });
        executor.spawn(accept_loop(Rc::clone(&ctx), listener));
        if let Some(interval) = ctx.net.drain_interval {
            executor.spawn(drain_loop(Rc::clone(&ctx), interval));
        }
        if let Some((period, age)) = ctx.stale {
            executor.spawn(evict_loop(Rc::clone(&ctx), period, age));
        }
        Ok(shutdown)
    }

    /// Suspends a task until its fd is ready, its outbox gains bytes, its
    /// idle deadline passes, or shutdown fires — whichever happens first.
    /// One-shot: any wake resolves it, and the resumed loop re-derives
    /// what actually happened (spurious wakes are absorbed by the next
    /// `WouldBlock`).
    struct Suspend<'a> {
        ctx: &'a ServerCtx,
        fd: i32,
        want_read: bool,
        want_write: bool,
        outbox_of: Option<&'a ConnShared>,
        shutdown_slot: usize,
        sleep: Option<Sleep>,
        armed: bool,
    }

    impl Future for Suspend<'_> {
        type Output = ();

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            let this = self.get_mut();
            if this.armed || this.ctx.shutdown.is_stopped() {
                return Poll::Ready(());
            }
            if let Some(sleep) = &mut this.sleep {
                if Pin::new(sleep).poll(cx).is_ready() {
                    return Poll::Ready(());
                }
            }
            this.ctx.reactor.arm(
                this.fd,
                Interest {
                    read: this.want_read,
                    write: this.want_write,
                },
                cx.waker(),
            );
            if let Some(shared) = this.outbox_of {
                *shared.waker.borrow_mut() = Some(cx.waker().clone());
            }
            this.ctx.shutdown.set_waker(this.shutdown_slot, cx.waker());
            this.armed = true;
            Poll::Pending
        }
    }

    /// `sleep`, interruptible by shutdown.
    struct SleepOrStop<'a> {
        shutdown: &'a ShutdownSignal,
        shutdown_slot: usize,
        sleep: Sleep,
    }

    impl Future for SleepOrStop<'_> {
        type Output = ();

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            let this = self.get_mut();
            if this.shutdown.is_stopped() {
                return Poll::Ready(());
            }
            if Pin::new(&mut this.sleep).poll(cx).is_ready() {
                return Poll::Ready(());
            }
            this.shutdown.set_waker(this.shutdown_slot, cx.waker());
            Poll::Pending
        }
    }

    fn send_response(ctx: &ServerCtx, shared: &ConnShared, response: &Response) {
        {
            let mut outbox = shared.outbox.borrow_mut();
            encode_frame(&response.to_frame(), &mut outbox.buf);
        }
        ctx.telemetry.record_net_frames_out(1);
        let waker = shared.waker.borrow_mut().take();
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    async fn accept_loop(ctx: Rc<ServerCtx>, listener: TcpListener) {
        let fd = listener.as_raw_fd();
        if ctx.reactor.register(fd).is_err() {
            return;
        }
        let shutdown_slot = ctx.shutdown.alloc_slot();
        while !ctx.shutdown.is_stopped() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let conn_ctx = Rc::clone(&ctx);
                    ctx.spawner.spawn(connection(conn_ctx, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    Suspend {
                        ctx: &ctx,
                        fd,
                        want_read: true,
                        want_write: false,
                        outbox_of: None,
                        shutdown_slot,
                        sleep: None,
                        armed: false,
                    }
                    .await;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient accept failure (EMFILE under fd pressure):
                    // back off briefly instead of spinning the reactor.
                    ctx.timer.sleep(Duration::from_millis(10)).await;
                }
            }
        }
        ctx.reactor.deregister(fd);
        ctx.shutdown.free_slot(shutdown_slot);
    }

    async fn connection(ctx: Rc<ServerCtx>, stream: TcpStream) {
        let fd = stream.as_raw_fd();
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() || ctx.reactor.register(fd).is_err() {
            return;
        }
        ctx.telemetry.record_net_accepted(1);
        let shared = ConnShared::new();
        let shutdown_slot = ctx.shutdown.alloc_slot();
        let mut decoder = FrameDecoder::new(ctx.net.max_frame_len);
        let mut owned: HashSet<u64> = HashSet::new();
        let mut frames = Vec::new();
        let mut read_buf = vec![0u8; 16 * 1024];
        let mut last_activity = ctx.timer.now_nanos();
        let mut idle_closed = false;
        // After a protocol violation the connection is mute: no more
        // reads, just a best-effort flush of the error frame, then close.
        let mut farewell = false;

        'conn: loop {
            let mut progress = false;
            // 1. Flush whatever the drainer or last round queued.
            loop {
                let (chunk_start, chunk_end) = {
                    let outbox = shared.outbox.borrow();
                    (outbox.cursor, outbox.buf.len())
                };
                if chunk_start >= chunk_end {
                    let mut outbox = shared.outbox.borrow_mut();
                    if outbox.cursor >= outbox.buf.len() {
                        outbox.buf.clear();
                        outbox.cursor = 0;
                    }
                    break;
                }
                let written = {
                    let outbox = shared.outbox.borrow();
                    (&stream).write(&outbox.buf[chunk_start..chunk_end])
                };
                match written {
                    Ok(0) => break 'conn,
                    Ok(n) => {
                        shared.outbox.borrow_mut().cursor += n;
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => break 'conn,
                }
            }
            if farewell && !shared.outbox_pending() {
                break 'conn;
            }
            // 2. Read and decode.
            if !farewell {
                loop {
                    match (&stream).read(&mut read_buf) {
                        Ok(0) => break 'conn,
                        Ok(n) => {
                            progress = true;
                            last_activity = ctx.timer.now_nanos();
                            if decoder.feed(&read_buf[..n], &mut frames).is_err() {
                                ctx.telemetry.record_net_frame_errors(1);
                                send_response(
                                    &ctx,
                                    &shared,
                                    &Response::Error {
                                        code: CODE_PROTOCOL,
                                        message: "malformed frame stream".to_string(),
                                    },
                                );
                                frames.clear();
                                farewell = true;
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => break 'conn,
                    }
                }
            }
            // 3. Handle decoded requests in arrival order. Awaiting the
            // gateway here pauses only this connection; everyone else
            // keeps being served by the same executor.
            if !frames.is_empty() {
                ctx.telemetry.record_net_frames_in(frames.len() as u64);
                for frame in frames.drain(..) {
                    progress = true;
                    if !handle_request(&ctx, &shared, &mut owned, &frame).await {
                        farewell = true;
                        break;
                    }
                }
            }
            if ctx.shutdown.is_stopped() {
                break 'conn;
            }
            // 4. Idle deadline (on the executor clock, so a ManualClock
            // drives it deterministically in tests).
            let idle_deadline = ctx.net.idle_timeout.map(|timeout| {
                last_activity.saturating_add(u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX))
            });
            if let Some(deadline) = idle_deadline {
                if ctx.timer.now_nanos() >= deadline {
                    idle_closed = true;
                    break 'conn;
                }
            }
            if progress {
                continue;
            }
            // 5. Nothing to do: suspend until something changes.
            Suspend {
                ctx: &ctx,
                fd,
                want_read: !farewell,
                want_write: shared.outbox_pending(),
                outbox_of: Some(&shared),
                shutdown_slot,
                sleep: idle_deadline.map(|deadline| ctx.timer.sleep_until(deadline)),
                armed: false,
            }
            .await;
        }

        // Teardown: stop routing replies here, close every session this
        // connection owned (enclave key erase included — an abandoned
        // device must not leave key material live), and count the close.
        ctx.reactor.deregister(fd);
        ctx.shutdown.free_slot(shutdown_slot);
        *shared.waker.borrow_mut() = None;
        for session_id in owned {
            ctx.registry.borrow_mut().remove(&session_id);
            let _ = ctx.frontend.close_session(session_id).await;
        }
        if idle_closed {
            ctx.telemetry.record_net_idle_timeouts(1);
        }
        ctx.telemetry.record_net_closed(1);
    }

    /// Handles one request; returns `false` if the connection must die
    /// (undecodable request — framing may be fine but trust is gone).
    async fn handle_request(
        ctx: &ServerCtx,
        shared: &Rc<ConnShared>,
        owned: &mut HashSet<u64>,
        frame: &glimmer_wire::Frame,
    ) -> bool {
        let request = match Request::from_frame(frame) {
            Ok(request) => request,
            Err(e) => {
                ctx.telemetry.record_net_frame_errors(1);
                send_response(
                    ctx,
                    shared,
                    &Response::Error {
                        code: CODE_PROTOCOL,
                        message: format!("undecodable request: {e}"),
                    },
                );
                return false;
            }
        };
        let acked = request.msg_type();
        // The ownership guard: a session opened on another connection is
        // invisible here, whatever tenant it belongs to.
        let guard_session = match &request {
            Request::CompleteSession { session_id, .. }
            | Request::InstallMask { session_id, .. }
            | Request::InstallMaskSealed { session_id, .. }
            | Request::Submit { session_id, .. }
            | Request::SubmitMany { session_id, .. }
            | Request::CloseSession { session_id } => Some(*session_id),
            Request::OpenSession { .. } | Request::Drain => None,
        };
        if let Some(session_id) = guard_session {
            if !owned.contains(&session_id) {
                send_response(
                    ctx,
                    shared,
                    &Response::Error {
                        code: CODE_NOT_OWNER,
                        message: format!("session {session_id} is not owned by this connection"),
                    },
                );
                return true;
            }
        }
        let outcome = match request {
            Request::OpenSession { tenant } => match ctx.frontend.open_session(&tenant).await {
                Ok((session_id, offer)) => {
                    owned.insert(session_id);
                    ctx.registry
                        .borrow_mut()
                        .insert(session_id, Rc::clone(shared));
                    send_response(ctx, shared, &Response::SessionOpened { session_id, offer });
                    return true;
                }
                Err(e) => Err(e),
            },
            Request::CompleteSession { session_id, accept } => {
                ctx.frontend.complete_session(session_id, &accept).await
            }
            Request::InstallMask { session_id, mask } => {
                ctx.frontend.install_mask(session_id, &mask).await
            }
            Request::InstallMaskSealed {
                session_id,
                nonce,
                ciphertext,
            } => {
                ctx.frontend
                    .install_mask_encrypted(session_id, nonce, ciphertext)
                    .await
            }
            Request::Submit {
                session_id,
                ciphertext,
            } => ctx.frontend.submit(session_id, ciphertext).await,
            Request::SubmitMany {
                session_id,
                ciphertexts,
            } => ctx.frontend.submit_many(session_id, ciphertexts).await,
            Request::CloseSession { session_id } => {
                let result = ctx.frontend.close_session(session_id).await;
                owned.remove(&session_id);
                ctx.registry.borrow_mut().remove(&session_id);
                result
            }
            Request::Drain => {
                let routed = route_drain(ctx).await;
                send_response(ctx, shared, &Response::Drained { routed });
                return true;
            }
        };
        match outcome {
            Ok(()) => send_response(ctx, shared, &Response::Ok { acked }),
            Err(e) => send_response(
                ctx,
                shared,
                &Response::Error {
                    code: CODE_GATEWAY,
                    message: e.to_string(),
                },
            ),
        }
        true
    }

    /// Sweeps the gateway's reply queues once and routes each reply to
    /// its owning connection, stamping the global drain sequence. Replies
    /// for sessions no connection owns (in-process drivers sharing the
    /// pool, or a connection that died mid-flight) go to the `unrouted`
    /// sink or are dropped — they still consume a sequence number, so
    /// socket-observed order stays a faithful subsequence of the global
    /// drain order.
    async fn route_drain(ctx: &ServerCtx) -> u64 {
        let replies = ctx.frontend.drain_replies().await.unwrap_or_default();
        let mut routed = 0u64;
        for reply in replies {
            let drain_seq = ctx.drain_seq.get();
            ctx.drain_seq.set(drain_seq + 1);
            let target = ctx.registry.borrow().get(&reply.session_id).cloned();
            match target {
                Some(conn) => {
                    send_response(
                        ctx,
                        &conn,
                        &Response::Reply(ReplyEnvelope {
                            drain_seq,
                            session_id: reply.session_id,
                            outcome: reply.outcome,
                        }),
                    );
                    routed += 1;
                }
                None => {
                    if let Some(sink) = &ctx.unrouted {
                        let _ = sink.send(reply);
                    }
                }
            }
        }
        routed
    }

    async fn drain_loop(ctx: Rc<ServerCtx>, interval: Duration) {
        let shutdown_slot = ctx.shutdown.alloc_slot();
        while !ctx.shutdown.is_stopped() {
            SleepOrStop {
                shutdown: &ctx.shutdown,
                shutdown_slot,
                sleep: ctx.timer.sleep(interval),
            }
            .await;
            if ctx.shutdown.is_stopped() {
                break;
            }
            let _ = route_drain(&ctx).await;
        }
        ctx.shutdown.free_slot(shutdown_slot);
    }

    async fn evict_loop(ctx: Rc<ServerCtx>, period: Duration, age: Duration) {
        let shutdown_slot = ctx.shutdown.alloc_slot();
        while !ctx.shutdown.is_stopped() {
            SleepOrStop {
                shutdown: &ctx.shutdown,
                shutdown_slot,
                sleep: ctx.timer.sleep(period),
            }
            .await;
            if ctx.shutdown.is_stopped() {
                break;
            }
            // The sweep itself blocks briefly per evicted session (shard
            // round-trips); abandoned handshakes are rare enough that this
            // stays invisible next to a single enclave batch.
            let _ = ctx.frontend.gateway().evict_stale_pending(age);
        }
        ctx.shutdown.free_slot(shutdown_slot);
    }
}
