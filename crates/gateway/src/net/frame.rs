//! Length-prefixed [`glimmer_wire`] frames over a byte stream.
//!
//! On the wire a frame is a 4-byte big-endian length followed by exactly
//! that many bytes of [`Frame`] encoding (magic, version, message type,
//! varint-length payload). The decoder is incremental: feed it whatever
//! the socket produced — half a length prefix, three frames and a tail,
//! anything — and it emits each frame exactly once when complete.
//!
//! Malformed input is a typed [`FrameError`], never a panic, and the
//! length prefix is validated against the configured bound *before* any
//! buffer grows to hold the announced body — a hostile 4GB announcement
//! costs nothing.

use glimmer_wire::{Frame, WireError};
use std::fmt;

/// Bytes of length prefix preceding every frame body.
pub const LENGTH_PREFIX: usize = 4;

/// A malformed byte stream (protocol violation; the connection is dead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix announced a frame beyond the configured bound.
    Oversize {
        /// Announced frame length in bytes.
        announced: usize,
        /// The configured [`NetConfig::max_frame_len`](crate::NetConfig).
        max: usize,
    },
    /// The frame body failed wire decoding (bad magic, truncation inside
    /// the body, trailing bytes...).
    Wire(WireError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversize { announced, max } => {
                write!(f, "frame of {announced} bytes exceeds the {max}-byte bound")
            }
            FrameError::Wire(e) => write!(f, "frame body malformed: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// Appends `frame` to `out` as one length-prefixed wire frame.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let body = frame.to_bytes();
    let len = u32::try_from(body.len()).expect("frame bodies are bounded far below 4GiB");
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(&body);
}

/// Incremental frame parser over an unframed byte stream.
///
/// # Examples
///
/// ```
/// use glimmer_gateway::net::FrameDecoder;
/// use glimmer_wire::Frame;
///
/// let frame = Frame::new(7, vec![1, 2, 3]);
/// let mut bytes = Vec::new();
/// glimmer_gateway::net::frame::encode_frame(&frame, &mut bytes);
///
/// let mut decoder = FrameDecoder::new(1024);
/// let mut out = Vec::new();
/// // Byte-at-a-time delivery still yields exactly one frame.
/// for byte in bytes {
///     decoder.feed(&[byte], &mut out).unwrap();
/// }
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].msg_type, 7);
/// assert_eq!(out[0].payload, vec![1, 2, 3]);
/// ```
pub struct FrameDecoder {
    max_frame_len: usize,
    buf: Vec<u8>,
    consumed: usize,
}

impl FrameDecoder {
    /// A decoder rejecting frames longer than `max_frame_len` bytes.
    #[must_use]
    pub fn new(max_frame_len: usize) -> Self {
        FrameDecoder {
            max_frame_len,
            buf: Vec::new(),
            consumed: 0,
        }
    }

    /// Feeds freshly read bytes, appending every completed frame to `out`.
    ///
    /// # Errors
    ///
    /// A typed [`FrameError`] on protocol violation. The decoder is dead
    /// after an error — framing has lost sync, so the connection must be
    /// dropped, which is exactly what the server does.
    pub fn feed(&mut self, chunk: &[u8], out: &mut Vec<Frame>) -> Result<(), FrameError> {
        self.buf.extend_from_slice(chunk);
        loop {
            let pending = &self.buf[self.consumed..];
            if pending.len() < LENGTH_PREFIX {
                break;
            }
            let announced =
                u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
            if announced > self.max_frame_len {
                return Err(FrameError::Oversize {
                    announced,
                    max: self.max_frame_len,
                });
            }
            let Some(body) = pending.get(LENGTH_PREFIX..LENGTH_PREFIX + announced) else {
                break;
            };
            out.push(Frame::from_bytes(body)?);
            self.consumed += LENGTH_PREFIX + announced;
        }
        // Compact once the parsed prefix dominates, so a long-lived
        // connection's buffer stays proportional to its unparsed tail.
        if self.consumed > 4096 && self.consumed * 2 >= self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        Ok(())
    }

    /// Bytes buffered but not yet parsed into a frame.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }
}
