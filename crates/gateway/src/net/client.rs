//! A blocking socket client for the front door.
//!
//! One [`GatewayClient`] drives one connection with the request/ack
//! protocol of [`super::proto`]. Server-pushed [`Response::Reply`] frames
//! can arrive interleaved with acks (the periodic drainer does not wait
//! for anyone); the client buffers them internally, so lockstep request
//! code stays simple and replies are read with
//! [`GatewayClient::next_reply`] / [`GatewayClient::take_buffered_reply`]
//! whenever convenient.
//!
//! This is a *driver* (tests, experiments, example services), not an SDK:
//! it is deliberately synchronous, one-request-in-flight, std-only.

use super::frame::{encode_frame, FrameDecoder, FrameError};
use super::proto::{ReplyEnvelope, Request, Response, MSG_DRAINED, MSG_OK, MSG_SESSION_OPENED};
use glimmer_core::blinding::MaskShare;
use glimmer_core::channel::{ChannelAccept, ChannelOffer};
use glimmer_wire::{Frame, WireError};
use std::collections::VecDeque;
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes read timeouts, if configured).
    Io(std::io::Error),
    /// The server's byte stream violated framing.
    Frame(FrameError),
    /// A server frame failed to decode.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server {
        /// One of the [`super::proto`] `CODE_*` constants.
        code: u16,
        /// Human-readable cause from the server.
        message: String,
    },
    /// The server answered with a frame the protocol does not allow here.
    Protocol(&'static str),
    /// The server closed the connection.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket failure: {e}"),
            ClientError::Frame(e) => write!(f, "server stream corrupt: {e}"),
            ClientError::Wire(e) => write!(f, "server frame undecodable: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server rejected the request (code {code}): {message}")
            }
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to a [`serve`](super::serve)d gateway.
pub struct GatewayClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    parsed: VecDeque<Frame>,
    replies: VecDeque<ReplyEnvelope>,
    read_buf: Vec<u8>,
}

impl GatewayClient {
    /// Connects (blocking) with the default 1 MiB frame bound.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(GatewayClient {
            stream,
            decoder: FrameDecoder::new(1 << 20),
            parsed: VecDeque::new(),
            replies: VecDeque::new(),
            read_buf: vec![0u8; 16 * 1024],
        })
    }

    /// Bounds every blocking read (`None` waits forever). A lapsed
    /// timeout surfaces as [`ClientError::Io`].
    ///
    /// # Errors
    ///
    /// Propagates socket option failures.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Opens a session: returns the id and the pool slot's attestation
    /// offer for the device handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] carries the gateway's typed rejection.
    pub fn open_session(&mut self, tenant: &str) -> Result<(u64, ChannelOffer), ClientError> {
        self.send(&Request::OpenSession {
            tenant: tenant.to_string(),
        })?;
        match self.expect(MSG_SESSION_OPENED)? {
            Response::SessionOpened { session_id, offer } => Ok((session_id, offer)),
            _ => Err(ClientError::Protocol("expected SessionOpened")),
        }
    }

    /// Completes the attested handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on gateway rejection.
    pub fn complete_session(
        &mut self,
        session_id: u64,
        accept: &ChannelAccept,
    ) -> Result<(), ClientError> {
        self.send(&Request::CompleteSession {
            session_id,
            accept: accept.clone(),
        })?;
        self.expect_ok()
    }

    /// Installs a plaintext blinding mask.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on gateway rejection.
    pub fn install_mask(&mut self, session_id: u64, mask: &MaskShare) -> Result<(), ClientError> {
        self.send(&Request::InstallMask {
            session_id,
            mask: mask.clone(),
        })?;
        self.expect_ok()
    }

    /// Installs a mask sealed under the tenant's attested channel.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on gateway rejection.
    pub fn install_mask_encrypted(
        &mut self,
        session_id: u64,
        nonce: [u8; 12],
        ciphertext: Vec<u8>,
    ) -> Result<(), ClientError> {
        self.send(&Request::InstallMaskSealed {
            session_id,
            nonce,
            ciphertext,
        })?;
        self.expect_ok()
    }

    /// Queues one encrypted contribution.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on gateway rejection (quota, backpressure).
    pub fn submit(&mut self, session_id: u64, ciphertext: Vec<u8>) -> Result<(), ClientError> {
        self.send(&Request::Submit {
            session_id,
            ciphertext,
        })?;
        self.expect_ok()
    }

    /// Queues a contribution stream as one atomic group.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on gateway rejection (quota, backpressure).
    pub fn submit_many(
        &mut self,
        session_id: u64,
        ciphertexts: Vec<Vec<u8>>,
    ) -> Result<(), ClientError> {
        self.send(&Request::SubmitMany {
            session_id,
            ciphertexts,
        })?;
        self.expect_ok()
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on gateway rejection.
    pub fn close_session(&mut self, session_id: u64) -> Result<(), ClientError> {
        self.send(&Request::CloseSession { session_id })?;
        self.expect_ok()
    }

    /// Triggers a server-side drain sweep; returns how many replies the
    /// sweep routed (to all connections). The replies owed to *this*
    /// connection arrive as pushes — read them with
    /// [`GatewayClient::next_reply`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on gateway rejection.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        self.send(&Request::Drain)?;
        match self.expect(MSG_DRAINED)? {
            Response::Drained { routed } => Ok(routed),
            _ => Err(ClientError::Protocol("expected Drained")),
        }
    }

    /// The next pushed reply, blocking until one arrives (already
    /// buffered ones are returned first, in arrival order).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on timeout (if one is set) or disconnect.
    pub fn next_reply(&mut self) -> Result<ReplyEnvelope, ClientError> {
        loop {
            if let Some(envelope) = self.replies.pop_front() {
                return Ok(envelope);
            }
            match self.recv_response()? {
                Response::Reply(envelope) => self.replies.push_back(envelope),
                _ => return Err(ClientError::Protocol("expected a pushed Reply")),
            }
        }
    }

    /// A buffered pushed reply, if any arrived while waiting for acks —
    /// never blocks.
    pub fn take_buffered_reply(&mut self) -> Option<ReplyEnvelope> {
        self.replies.pop_front()
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let mut bytes = Vec::new();
        encode_frame(&request.to_frame(), &mut bytes);
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    /// Reads until a non-push response arrives of the expected type,
    /// buffering pushed replies and surfacing error frames.
    fn expect(&mut self, want: u16) -> Result<Response, ClientError> {
        loop {
            let response = self.recv_response()?;
            match response {
                Response::Reply(envelope) => self.replies.push_back(envelope),
                Response::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                other => {
                    let got = match &other {
                        Response::SessionOpened { .. } => MSG_SESSION_OPENED,
                        Response::Ok { .. } => MSG_OK,
                        Response::Drained { .. } => MSG_DRAINED,
                        Response::Reply(_) | Response::Error { .. } => unreachable!(),
                    };
                    if got == want {
                        return Ok(other);
                    }
                    return Err(ClientError::Protocol("unexpected response type"));
                }
            }
        }
    }

    fn expect_ok(&mut self) -> Result<(), ClientError> {
        match self.expect(MSG_OK)? {
            Response::Ok { .. } => Ok(()),
            _ => Err(ClientError::Protocol("expected Ok")),
        }
    }

    /// Blocking read of the next server frame (any kind).
    fn recv_response(&mut self) -> Result<Response, ClientError> {
        loop {
            if let Some(frame) = self.parsed.pop_front() {
                return Ok(Response::from_frame(&frame)?);
            }
            let n = match self.stream.read(&mut self.read_buf) {
                Ok(0) => return Err(ClientError::Disconnected),
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            };
            let mut frames = Vec::new();
            self.decoder.feed(&self.read_buf[..n], &mut frames)?;
            self.parsed.extend(frames);
        }
    }
}
