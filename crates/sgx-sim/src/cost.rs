//! Cost model and accounting for simulated SGX operations.
//!
//! The paper argues that a Glimmer is cheap because it is small and crosses
//! the enclave boundary rarely ("all components in a single SGX enclave,
//! which is more efficient as there is only one transition in and out of the
//! enclave", Section 3). To let the overhead experiments (E5) explore that
//! claim, every simulated hardware operation charges cycles to a
//! [`CostMeter`]; the defaults below follow published SGX microbenchmark
//! numbers (enclave round trip on the order of 8–14k cycles, EPC paging two
//! orders of magnitude more).

use std::sync::{Arc, Mutex};

/// Cycle charges for each class of simulated operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cycles for one ECALL entry (EENTER) including TLB/stack switching.
    pub ecall_cycles: u64,
    /// Cycles for returning from an enclave (EEXIT).
    pub eexit_cycles: u64,
    /// Cycles for one OCALL round trip initiated from inside the enclave.
    pub ocall_cycles: u64,
    /// Cycles to add and measure one EPC page at build time (EADD + EEXTEND).
    pub page_add_cycles: u64,
    /// Cycles to evict/reload one EPC page when the EPC is oversubscribed.
    pub page_swap_cycles: u64,
    /// Cycles per byte copied across the enclave boundary.
    pub boundary_byte_cycles: u64,
    /// Cycles for deriving a sealing key (EGETKEY).
    pub getkey_cycles: u64,
    /// Cycles for producing a local-attestation report (EREPORT).
    pub ereport_cycles: u64,
    /// Fixed cycles for the quoting enclave to produce a quote.
    pub quote_cycles: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ecall_cycles: 8_000,
            eexit_cycles: 4_000,
            ocall_cycles: 8_000,
            page_add_cycles: 10_000,
            page_swap_cycles: 400_000,
            boundary_byte_cycles: 1,
            getkey_cycles: 3_000,
            ereport_cycles: 4_000,
            quote_cycles: 500_000,
        }
    }
}

impl CostModel {
    /// A model where every operation is free (useful in unit tests that do not
    /// care about accounting).
    #[must_use]
    pub fn free() -> Self {
        CostModel {
            ecall_cycles: 0,
            eexit_cycles: 0,
            ocall_cycles: 0,
            page_add_cycles: 0,
            page_swap_cycles: 0,
            boundary_byte_cycles: 0,
            getkey_cycles: 0,
            ereport_cycles: 0,
            quote_cycles: 0,
        }
    }
}

/// Aggregated operation counts and cycle totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Number of ECALLs performed.
    pub ecalls: u64,
    /// Number of OCALLs performed.
    pub ocalls: u64,
    /// Number of EPC pages added (enclave build).
    pub pages_added: u64,
    /// Number of EPC page swaps due to oversubscription.
    pub page_swaps: u64,
    /// Bytes copied across the enclave boundary (in + out).
    pub boundary_bytes: u64,
    /// Number of sealing-key derivations.
    pub key_derivations: u64,
    /// Number of reports generated.
    pub reports: u64,
    /// Number of quotes generated.
    pub quotes: u64,
    /// Total simulated cycles charged.
    pub total_cycles: u64,
}

/// Shared, thread-safe cycle accounting.
///
/// Cloning a meter yields a handle onto the same underlying counters, so a
/// platform, its enclaves, and a benchmark harness can all observe one total.
#[derive(Clone)]
pub struct CostMeter {
    model: CostModel,
    report: Arc<Mutex<CostReport>>,
}

impl CostMeter {
    /// Creates a meter with the given model.
    #[must_use]
    pub fn new(model: CostModel) -> Self {
        CostMeter {
            model,
            report: Arc::new(Mutex::new(CostReport::default())),
        }
    }

    /// The cost model in effect.
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Snapshot of the accumulated counters.
    #[must_use]
    pub fn report(&self) -> CostReport {
        self.report
            .lock()
            .expect("cost meter lock poisoned")
            .clone()
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        *self.report.lock().expect("cost meter lock poisoned") = CostReport::default();
    }

    /// Charges an enclave entry/exit pair plus boundary copies of `bytes`.
    pub fn charge_ecall(&self, bytes_in: usize, bytes_out: usize) {
        let mut r = self.report.lock().expect("cost meter lock poisoned");
        r.ecalls += 1;
        let copied = (bytes_in + bytes_out) as u64;
        r.boundary_bytes += copied;
        r.total_cycles += self.model.ecall_cycles
            + self.model.eexit_cycles
            + copied * self.model.boundary_byte_cycles;
    }

    /// Charges an OCALL round trip plus boundary copies.
    pub fn charge_ocall(&self, bytes_in: usize, bytes_out: usize) {
        let mut r = self.report.lock().expect("cost meter lock poisoned");
        r.ocalls += 1;
        let copied = (bytes_in + bytes_out) as u64;
        r.boundary_bytes += copied;
        r.total_cycles += self.model.ocall_cycles + copied * self.model.boundary_byte_cycles;
    }

    /// Charges the addition of `pages` EPC pages.
    pub fn charge_page_add(&self, pages: usize) {
        let mut r = self.report.lock().expect("cost meter lock poisoned");
        r.pages_added += pages as u64;
        r.total_cycles += pages as u64 * self.model.page_add_cycles;
    }

    /// Charges `swaps` EPC page swaps.
    pub fn charge_page_swap(&self, swaps: usize) {
        let mut r = self.report.lock().expect("cost meter lock poisoned");
        r.page_swaps += swaps as u64;
        r.total_cycles += swaps as u64 * self.model.page_swap_cycles;
    }

    /// Charges one sealing-key derivation.
    pub fn charge_getkey(&self) {
        let mut r = self.report.lock().expect("cost meter lock poisoned");
        r.key_derivations += 1;
        r.total_cycles += self.model.getkey_cycles;
    }

    /// Charges one report generation.
    pub fn charge_ereport(&self) {
        let mut r = self.report.lock().expect("cost meter lock poisoned");
        r.reports += 1;
        r.total_cycles += self.model.ereport_cycles;
    }

    /// Charges one quote generation.
    pub fn charge_quote(&self) {
        let mut r = self.report.lock().expect("cost meter lock poisoned");
        r.quotes += 1;
        r.total_cycles += self.model.quote_cycles;
    }
}

impl Default for CostMeter {
    fn default() -> Self {
        Self::new(CostModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_nontrivial() {
        let m = CostModel::default();
        assert!(m.ecall_cycles > 0);
        assert!(m.page_swap_cycles > m.page_add_cycles);
        assert_eq!(CostModel::free().ecall_cycles, 0);
    }

    #[test]
    fn charges_accumulate() {
        let meter = CostMeter::new(CostModel::default());
        meter.charge_ecall(100, 50);
        meter.charge_ocall(10, 10);
        meter.charge_page_add(3);
        meter.charge_page_swap(1);
        meter.charge_getkey();
        meter.charge_ereport();
        meter.charge_quote();
        let r = meter.report();
        assert_eq!(r.ecalls, 1);
        assert_eq!(r.ocalls, 1);
        assert_eq!(r.pages_added, 3);
        assert_eq!(r.page_swaps, 1);
        assert_eq!(r.boundary_bytes, 170);
        assert_eq!(r.key_derivations, 1);
        assert_eq!(r.reports, 1);
        assert_eq!(r.quotes, 1);
        let m = CostModel::default();
        let expected = m.ecall_cycles
            + m.eexit_cycles
            + 150
            + m.ocall_cycles
            + 20
            + 3 * m.page_add_cycles
            + m.page_swap_cycles
            + m.getkey_cycles
            + m.ereport_cycles
            + m.quote_cycles;
        assert_eq!(r.total_cycles, expected);
    }

    #[test]
    fn clones_share_counters_and_reset_clears() {
        let meter = CostMeter::default();
        let clone = meter.clone();
        clone.charge_ecall(0, 0);
        assert_eq!(meter.report().ecalls, 1);
        meter.reset();
        assert_eq!(clone.report(), CostReport::default());
    }
}
