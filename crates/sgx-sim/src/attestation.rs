//! Local and remote attestation.
//!
//! Attestation is the mechanism that lets a Glimmer "prove cryptographically
//! to a remote party that it is running correctly in a legitimate enclave"
//! (Section 3). The simulator reproduces the full chain:
//!
//! 1. An application enclave produces a **REPORT** targeted at another
//!    enclave on the same platform. The report is MAC'd with a key derived
//!    from the platform's report secret and the *target's* measurement, so
//!    only that target (and the platform itself) can verify it — this is
//!    local attestation.
//! 2. The **quoting enclave** (modelled as a platform service) verifies the
//!    report and signs a **QUOTE** with the platform's attestation key.
//! 3. A remote verifier submits the quote to the
//!    [`AttestationService`] — the stand-in for the Intel Attestation
//!    Service — which checks the platform's provisioning status, revocation,
//!    and TCB level, and returns an [`AttestationVerdict`].
//!
//! Real SGX uses EPID group signatures for quotes; the simulator uses an
//! HMAC shared between the platform (installed at provisioning time) and the
//! verification service, which preserves the trust topology: only the
//! attestation service can vouch for quotes, and platforms must be
//! provisioned before their quotes verify (see DESIGN.md, Substitutions).

use crate::error::SgxError;
use crate::image::EnclaveAttributes;
use crate::measurement::Measurement;
use crate::platform::PlatformId;
use glimmer_crypto::hkdf::hkdf;
use glimmer_crypto::hmac::{hmac_sha256, hmac_sha256_verify};
use std::collections::{HashMap, HashSet};

/// Size of the free-form data field an enclave binds into its report.
pub const REPORT_DATA_LEN: usize = 64;

/// Identifies the enclave a local-attestation report is targeted at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetInfo {
    /// Measurement of the target enclave.
    pub measurement: Measurement,
}

/// The body of a local-attestation report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportBody {
    /// Platform the report was produced on.
    pub platform_id: PlatformId,
    /// MRENCLAVE of the reporting enclave.
    pub measurement: Measurement,
    /// MRSIGNER of the reporting enclave.
    pub signer: Measurement,
    /// Attributes of the reporting enclave.
    pub attributes: EnclaveAttributes,
    /// 64 bytes of caller-chosen data (e.g., a hash of a DH public key),
    /// bound into the report by the hardware.
    pub report_data: [u8; REPORT_DATA_LEN],
}

impl ReportBody {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 32 + 32 + 5 + REPORT_DATA_LEN);
        out.extend_from_slice(&self.platform_id.0);
        out.extend_from_slice(self.measurement.as_bytes());
        out.extend_from_slice(self.signer.as_bytes());
        out.extend_from_slice(&self.attributes.to_bytes());
        out.extend_from_slice(&self.report_data);
        out
    }
}

/// A local-attestation report: a body plus a MAC only the target (and the
/// platform) can check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The reported identity and data.
    pub body: ReportBody,
    mac: [u8; 32],
}

fn report_key(platform_report_secret: &[u8; 32], target: &Measurement) -> [u8; 32] {
    let okm = hkdf(
        b"sgx-sim-report-key-v1",
        platform_report_secret,
        target.as_bytes(),
        32,
    );
    let mut key = [0u8; 32];
    key.copy_from_slice(&okm);
    key
}

impl Report {
    /// Creates a report (EREPORT). Only callable with the platform report
    /// secret, i.e., from inside the simulated hardware.
    #[must_use]
    pub fn create(
        platform_report_secret: &[u8; 32],
        body: ReportBody,
        target: &TargetInfo,
    ) -> Self {
        let key = report_key(platform_report_secret, &target.measurement);
        let mac = hmac_sha256(&key, &body.to_bytes());
        Report { body, mac }
    }

    /// Verifies the report as the target enclave with measurement
    /// `verifier_measurement` on the platform holding `platform_report_secret`.
    #[must_use]
    pub fn verify(
        &self,
        platform_report_secret: &[u8; 32],
        verifier_measurement: &Measurement,
    ) -> bool {
        let key = report_key(platform_report_secret, verifier_measurement);
        hmac_sha256_verify(&key, &self.body.to_bytes(), &self.mac)
    }

    /// Serializes the report.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.body.to_bytes();
        out.extend_from_slice(&self.mac);
        out
    }

    /// Parses a report serialized with [`Report::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let expected = 16 + 32 + 32 + 5 + REPORT_DATA_LEN + 32;
        if bytes.len() != expected {
            return Err(SgxError::Malformed("report has wrong length"));
        }
        let body = parse_body(&bytes[..expected - 32])?;
        let mut mac = [0u8; 32];
        mac.copy_from_slice(&bytes[expected - 32..]);
        Ok(Report { body, mac })
    }
}

fn parse_body(bytes: &[u8]) -> Result<ReportBody, SgxError> {
    if bytes.len() != 16 + 32 + 32 + 5 + REPORT_DATA_LEN {
        return Err(SgxError::Malformed("report body has wrong length"));
    }
    let mut platform_id = [0u8; 16];
    platform_id.copy_from_slice(&bytes[..16]);
    let mut measurement = [0u8; 32];
    measurement.copy_from_slice(&bytes[16..48]);
    let mut signer = [0u8; 32];
    signer.copy_from_slice(&bytes[48..80]);
    let attributes = EnclaveAttributes {
        debug: bytes[80] != 0,
        isv_prod_id: u16::from_le_bytes([bytes[81], bytes[82]]),
        isv_svn: u16::from_le_bytes([bytes[83], bytes[84]]),
    };
    let mut report_data = [0u8; REPORT_DATA_LEN];
    report_data.copy_from_slice(&bytes[85..85 + REPORT_DATA_LEN]);
    Ok(ReportBody {
        platform_id: PlatformId(platform_id),
        measurement: Measurement(measurement),
        signer: Measurement(signer),
        attributes,
        report_data,
    })
}

/// The body of a remote-attestation quote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuoteBody {
    /// The attested enclave identity and report data.
    pub report: ReportBody,
    /// TCB security version of the quoting platform at quote time.
    pub platform_tcb_svn: u16,
}

impl QuoteBody {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.report.to_bytes();
        out.extend_from_slice(&self.platform_tcb_svn.to_le_bytes());
        out
    }
}

/// A remote-attestation quote, signed by the platform's provisioned
/// attestation key and verifiable only by the [`AttestationService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// The quoted identity, report data, and TCB level.
    pub body: QuoteBody,
    signature: [u8; 32],
}

impl Quote {
    /// Produces a quote. Only callable with the platform's attestation key,
    /// i.e., by the quoting enclave.
    #[must_use]
    pub fn create(attestation_key: &[u8; 32], body: QuoteBody) -> Self {
        let signature = hmac_sha256(attestation_key, &body.to_bytes());
        Quote { body, signature }
    }

    /// Serializes the quote for transport to a remote verifier.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.body.to_bytes();
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses a quote serialized with [`Quote::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let body_len = 16 + 32 + 32 + 5 + REPORT_DATA_LEN + 2;
        if bytes.len() != body_len + 32 {
            return Err(SgxError::Malformed("quote has wrong length"));
        }
        let report = parse_body(&bytes[..body_len - 2])?;
        let platform_tcb_svn = u16::from_le_bytes([bytes[body_len - 2], bytes[body_len - 1]]);
        let mut signature = [0u8; 32];
        signature.copy_from_slice(&bytes[body_len..]);
        Ok(Quote {
            body: QuoteBody {
                report,
                platform_tcb_svn,
            },
            signature,
        })
    }
}

/// The verdict returned by the attestation verification service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestationVerdict {
    /// The quote is genuine and the platform is in good standing.
    Ok,
    /// The quote's signature did not verify (forged or corrupted).
    SignatureInvalid,
    /// The platform was never provisioned with this service.
    UnknownPlatform,
    /// The platform's attestation key has been revoked.
    Revoked,
    /// The platform's TCB is below the service's required level.
    GroupOutOfDate,
    /// The quoted enclave runs in debug mode, which the verifier rejects.
    DebugNotAllowed,
}

impl AttestationVerdict {
    /// True only for [`AttestationVerdict::Ok`].
    #[must_use]
    pub fn is_ok(self) -> bool {
        self == AttestationVerdict::Ok
    }
}

/// The attestation verification service (the IAS stand-in).
///
/// Platforms are provisioned with a per-platform attestation key; verifiers
/// submit quotes and receive a verdict. The service also tracks revocation
/// and the minimum acceptable platform TCB level.
pub struct AttestationService {
    keys: HashMap<PlatformId, [u8; 32]>,
    tcb: HashMap<PlatformId, u16>,
    revoked: HashSet<PlatformId>,
    min_tcb_svn: u16,
    allow_debug: bool,
    master_secret: [u8; 32],
    provisioned_count: u64,
}

impl AttestationService {
    /// Creates a service with its own key-provisioning secret.
    #[must_use]
    pub fn new(master_secret: [u8; 32]) -> Self {
        AttestationService {
            keys: HashMap::new(),
            tcb: HashMap::new(),
            revoked: HashSet::new(),
            min_tcb_svn: 1,
            allow_debug: false,
            master_secret,
            provisioned_count: 0,
        }
    }

    /// Sets the minimum TCB security version required for an `Ok` verdict.
    pub fn set_min_tcb_svn(&mut self, svn: u16) {
        self.min_tcb_svn = svn;
    }

    /// Allows or forbids debug enclaves (default: forbidden).
    pub fn set_allow_debug(&mut self, allow: bool) {
        self.allow_debug = allow;
    }

    /// Provisions a platform: derives and returns its attestation key, and
    /// records its TCB level. Modelled after EPID provisioning.
    pub fn provision(&mut self, platform: PlatformId, tcb_svn: u16) -> [u8; 32] {
        let okm = hkdf(
            b"sgx-sim-avs-provision-v1",
            &self.master_secret,
            &platform.0,
            32,
        );
        let mut key = [0u8; 32];
        key.copy_from_slice(&okm);
        self.keys.insert(platform, key);
        self.tcb.insert(platform, tcb_svn);
        self.provisioned_count += 1;
        key
    }

    /// Number of platforms provisioned so far.
    #[must_use]
    pub fn provisioned_count(&self) -> u64 {
        self.provisioned_count
    }

    /// Marks a platform's attestation key as revoked.
    pub fn revoke(&mut self, platform: PlatformId) {
        self.revoked.insert(platform);
    }

    /// Records a new TCB level for a platform (e.g., after a microcode update).
    pub fn update_tcb(&mut self, platform: PlatformId, tcb_svn: u16) {
        self.tcb.insert(platform, tcb_svn);
    }

    /// Verifies a quote and returns the verdict.
    #[must_use]
    pub fn verify(&self, quote: &Quote) -> AttestationVerdict {
        let platform = quote.body.report.platform_id;
        let Some(key) = self.keys.get(&platform) else {
            return AttestationVerdict::UnknownPlatform;
        };
        if !hmac_sha256_verify(key, &quote.body.to_bytes(), &quote.signature) {
            return AttestationVerdict::SignatureInvalid;
        }
        if self.revoked.contains(&platform) {
            return AttestationVerdict::Revoked;
        }
        if quote.body.platform_tcb_svn < self.min_tcb_svn {
            return AttestationVerdict::GroupOutOfDate;
        }
        if quote.body.report.attributes.debug && !self.allow_debug {
            return AttestationVerdict::DebugNotAllowed;
        }
        AttestationVerdict::Ok
    }

    /// Verifies a quote, additionally requiring a specific enclave
    /// measurement, and returns the report body on success.
    pub fn verify_expecting(
        &self,
        quote: &Quote,
        expected_measurement: &Measurement,
    ) -> Result<ReportBody, SgxError> {
        let verdict = self.verify(quote);
        if !verdict.is_ok() {
            return Err(SgxError::AttestationFailed(match verdict {
                AttestationVerdict::SignatureInvalid => "quote signature invalid",
                AttestationVerdict::UnknownPlatform => "platform unknown to attestation service",
                AttestationVerdict::Revoked => "platform revoked",
                AttestationVerdict::GroupOutOfDate => "platform TCB out of date",
                AttestationVerdict::DebugNotAllowed => "debug enclave not allowed",
                AttestationVerdict::Ok => unreachable!(),
            }));
        }
        if &quote.body.report.measurement != expected_measurement {
            return Err(SgxError::AttestationFailed(
                "quoted measurement does not match the approved Glimmer",
            ));
        }
        Ok(quote.body.report.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT_SECRET: [u8; 32] = [7u8; 32];

    fn platform_id(byte: u8) -> PlatformId {
        PlatformId([byte; 16])
    }

    fn body(platform: PlatformId, code: &[u8], debug: bool) -> ReportBody {
        ReportBody {
            platform_id: platform,
            measurement: Measurement::of_bytes(code),
            signer: Measurement::of_bytes(b"signer"),
            attributes: EnclaveAttributes {
                debug,
                isv_prod_id: 1,
                isv_svn: 2,
            },
            report_data: [0x5Au8; REPORT_DATA_LEN],
        }
    }

    #[test]
    fn local_report_verifies_only_for_target() {
        let target = TargetInfo {
            measurement: Measurement::of_bytes(b"quoting-enclave"),
        };
        let report = Report::create(
            &REPORT_SECRET,
            body(platform_id(1), b"glimmer", false),
            &target,
        );
        assert!(report.verify(&REPORT_SECRET, &target.measurement));
        // A different target enclave cannot verify it.
        assert!(!report.verify(&REPORT_SECRET, &Measurement::of_bytes(b"other")));
        // A different platform cannot verify it.
        assert!(!report.verify(&[9u8; 32], &target.measurement));
    }

    #[test]
    fn report_serialization_round_trip() {
        let target = TargetInfo {
            measurement: Measurement::of_bytes(b"qe"),
        };
        let report = Report::create(&REPORT_SECRET, body(platform_id(2), b"code", true), &target);
        let parsed = Report::from_bytes(&report.to_bytes()).unwrap();
        assert_eq!(parsed, report);
        assert!(parsed.verify(&REPORT_SECRET, &target.measurement));
        assert!(Report::from_bytes(&[0u8; 10]).is_err());
    }

    #[test]
    fn quote_lifecycle_and_verdicts() {
        let mut avs = AttestationService::new([42u8; 32]);
        let pid = platform_id(3);
        let key = avs.provision(pid, 5);
        assert_eq!(avs.provisioned_count(), 1);

        let quote = Quote::create(
            &key,
            QuoteBody {
                report: body(pid, b"glimmer", false),
                platform_tcb_svn: 5,
            },
        );
        assert_eq!(avs.verify(&quote), AttestationVerdict::Ok);
        assert!(avs.verify(&quote).is_ok());

        // Unknown platform.
        let other_quote = Quote::create(
            &key,
            QuoteBody {
                report: body(platform_id(4), b"glimmer", false),
                platform_tcb_svn: 5,
            },
        );
        assert_eq!(
            avs.verify(&other_quote),
            AttestationVerdict::UnknownPlatform
        );

        // Forged signature (wrong key).
        let forged = Quote::create(
            &[0u8; 32],
            QuoteBody {
                report: body(pid, b"glimmer", false),
                platform_tcb_svn: 5,
            },
        );
        assert_eq!(avs.verify(&forged), AttestationVerdict::SignatureInvalid);

        // TCB out of date.
        avs.set_min_tcb_svn(6);
        assert_eq!(avs.verify(&quote), AttestationVerdict::GroupOutOfDate);
        avs.set_min_tcb_svn(1);

        // Debug enclave rejected by default, allowed when configured.
        let debug_quote = Quote::create(
            &key,
            QuoteBody {
                report: body(pid, b"glimmer", true),
                platform_tcb_svn: 5,
            },
        );
        assert_eq!(
            avs.verify(&debug_quote),
            AttestationVerdict::DebugNotAllowed
        );
        avs.set_allow_debug(true);
        assert_eq!(avs.verify(&debug_quote), AttestationVerdict::Ok);

        // Revocation.
        avs.revoke(pid);
        assert_eq!(avs.verify(&quote), AttestationVerdict::Revoked);
    }

    #[test]
    fn verify_expecting_checks_measurement() {
        let mut avs = AttestationService::new([42u8; 32]);
        let pid = platform_id(5);
        let key = avs.provision(pid, 3);
        let quote = Quote::create(
            &key,
            QuoteBody {
                report: body(pid, b"approved glimmer", false),
                platform_tcb_svn: 3,
            },
        );
        let approved = Measurement::of_bytes(b"approved glimmer");
        let report = avs.verify_expecting(&quote, &approved).unwrap();
        assert_eq!(report.measurement, approved);
        assert!(avs
            .verify_expecting(&quote, &Measurement::of_bytes(b"rogue"))
            .is_err());
        avs.revoke(pid);
        assert!(avs.verify_expecting(&quote, &approved).is_err());
    }

    #[test]
    fn quote_serialization_round_trip() {
        let key = [13u8; 32];
        let quote = Quote::create(
            &key,
            QuoteBody {
                report: body(platform_id(6), b"x", false),
                platform_tcb_svn: 9,
            },
        );
        let parsed = Quote::from_bytes(&quote.to_bytes()).unwrap();
        assert_eq!(parsed, quote);
        assert!(Quote::from_bytes(&[1u8; 4]).is_err());
        // Corrupt one byte of the signature: parses but fails verification.
        let mut bytes = quote.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        let corrupt = Quote::from_bytes(&bytes).unwrap();
        let mut avs = AttestationService::new([1u8; 32]);
        let pid = platform_id(6);
        let real_key = avs.provision(pid, 9);
        // Re-sign with the real provisioned key so only corruption matters.
        let good = Quote::create(&real_key, quote.body.clone());
        assert_eq!(avs.verify(&good), AttestationVerdict::Ok);
        let _ = corrupt;
    }

    #[test]
    fn tcb_update_changes_verdict() {
        let mut avs = AttestationService::new([2u8; 32]);
        let pid = platform_id(7);
        let key = avs.provision(pid, 1);
        avs.set_min_tcb_svn(3);
        let quote = Quote::create(
            &key,
            QuoteBody {
                report: body(pid, b"g", false),
                platform_tcb_svn: 1,
            },
        );
        assert_eq!(avs.verify(&quote), AttestationVerdict::GroupOutOfDate);
        // Platform patches its TCB and produces a new quote.
        avs.update_tcb(pid, 3);
        let newer = Quote::create(
            &key,
            QuoteBody {
                report: body(pid, b"g", false),
                platform_tcb_svn: 3,
            },
        );
        assert_eq!(avs.verify(&newer), AttestationVerdict::Ok);
    }
}
