//! A software simulation of Intel SGX client-side enclaves.
//!
//! The Glimmer architecture (Lie & Maniatis, HotOS 2017, Section 3) places a
//! small trusted component — the Glimmer — inside an SGX enclave on the
//! *client* device. Real SGX hardware is unavailable in this environment (and
//! has been deprecated on client CPUs), so this crate reproduces the SGX
//! programming model in software:
//!
//! * **Enclave lifecycle** — building an enclave image from measured pages,
//!   creating it on a platform subject to EPC capacity, entering it via
//!   ECALLs, and calling back out via OCALLs ([`platform`], [`enclave`],
//!   [`epc`], [`image`]).
//! * **Measurement** — an MRENCLAVE-style SHA-256 chain over the enclave's
//!   pages and an MRSIGNER identity ([`measurement`]).
//! * **Sealed storage** — keys derived from a per-platform fuse secret and
//!   the sealing enclave's identity, so only the same enclave (or same-signer
//!   enclaves) on the same platform can unseal ([`sealing`]).
//! * **Local and remote attestation** — REPORT structures MAC'd with a
//!   platform report key, converted into QUOTEs by a quoting enclave, and
//!   verified by an Intel-Attestation-Service-like verification service with
//!   TCB and revocation handling ([`attestation`]).
//! * **A cost model** — cycle charges for enclave transitions and paging so
//!   that overhead experiments (EXPERIMENTS.md E5) have the right shape
//!   ([`cost`]).
//!
//! The simulator enforces the *API-visible* guarantees of SGX: host code can
//! only exchange bytes with an enclave through ECALL/OCALL, sealed blobs can
//! only be opened by an enclave with the right identity on the right
//! platform, and quotes are only accepted by the verification service if they
//! were produced by a provisioned platform at an acceptable TCB level. It
//! does not attempt to model micro-architectural side channels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod cost;
pub mod enclave;
pub mod epc;
pub mod error;
pub mod image;
pub mod measurement;
pub mod platform;
pub mod sealing;

pub use attestation::{
    AttestationService, AttestationVerdict, Quote, QuoteBody, Report, TargetInfo,
};
pub use cost::{CostMeter, CostModel, CostReport};
pub use enclave::{EnclaveEnv, EnclaveProgram, OcallHandler};
pub use epc::{Epc, PAGE_SIZE};
pub use error::SgxError;
pub use image::{EnclaveAttributes, EnclaveImage, Page, PageType};
pub use measurement::Measurement;
pub use platform::{EnclaveId, Platform, PlatformConfig, PlatformId};
pub use sealing::{SealPolicy, SealedBlob};

/// Result alias used throughout the simulator.
pub type Result<T> = core::result::Result<T, SgxError>;
