//! Enclave identity: MRENCLAVE-style measurements and MRSIGNER identities.
//!
//! Real SGX computes MRENCLAVE as a SHA-256 chain over every `EADD`ed page's
//! content, offset, and permissions, and MRSIGNER as the hash of the public
//! key that signed the enclave. The Glimmer design leans on both: the vetted
//! Glimmer's measurement is published so users can check what runs on their
//! device, and the service seals its signing key so that only the approved
//! measurement can use it (Section 3).

use glimmer_crypto::sha256::{Sha256, DIGEST_LEN};

/// A 256-bit enclave identity value (MRENCLAVE, MRSIGNER, or key digest).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Measurement(pub [u8; DIGEST_LEN]);

impl Measurement {
    /// The all-zero measurement (used as a placeholder target).
    #[must_use]
    pub fn zero() -> Self {
        Measurement([0u8; DIGEST_LEN])
    }

    /// Measurement of an arbitrary byte string (one hash invocation).
    #[must_use]
    pub fn of_bytes(data: &[u8]) -> Self {
        Measurement(glimmer_crypto::sha256(data))
    }

    /// Raw bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Hex rendering (lowercase, 64 chars).
    #[must_use]
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parses a 64-character hex string.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != DIGEST_LEN * 2 {
            return None;
        }
        let mut out = [0u8; DIGEST_LEN];
        for i in 0..DIGEST_LEN {
            out[i] = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).ok()?;
        }
        Some(Measurement(out))
    }
}

impl core::fmt::Debug for Measurement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Measurement({}..)", &self.to_hex()[..16])
    }
}

impl core::fmt::Display for Measurement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Incrementally builds an MRENCLAVE-style measurement from enclave pages.
///
/// The builder mirrors the `ECREATE` / `EADD` / `EEXTEND` / `EINIT` sequence:
/// each page extends the running hash with a domain-separation tag, the page
/// offset, the page type, and the page contents.
pub struct MeasurementBuilder {
    hasher: Sha256,
    pages: usize,
}

impl Default for MeasurementBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MeasurementBuilder {
    /// Starts a new measurement (ECREATE).
    #[must_use]
    pub fn new() -> Self {
        let mut hasher = Sha256::new();
        hasher.update(b"SGX-SIM-ECREATE-v1");
        MeasurementBuilder { hasher, pages: 0 }
    }

    /// Extends the measurement with one page (EADD + EEXTEND).
    pub fn add_page(&mut self, offset: usize, page_type: u8, content: &[u8]) {
        self.hasher.update(b"EADD");
        self.hasher.update(&(offset as u64).to_le_bytes());
        self.hasher.update(&[page_type]);
        self.hasher.update(&(content.len() as u64).to_le_bytes());
        self.hasher.update(content);
        self.pages += 1;
    }

    /// Number of pages measured so far.
    #[must_use]
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Finalizes the measurement (EINIT).
    #[must_use]
    pub fn finalize(mut self) -> Measurement {
        self.hasher.update(b"EINIT");
        self.hasher.update(&(self.pages as u64).to_le_bytes());
        Measurement(self.hasher.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let m = Measurement::of_bytes(b"glimmer enclave");
        let hex = m.to_hex();
        assert_eq!(hex.len(), 64);
        assert_eq!(Measurement::from_hex(&hex), Some(m));
        assert_eq!(Measurement::from_hex("abc"), None);
        assert_eq!(Measurement::from_hex(&"zz".repeat(32)), None);
    }

    #[test]
    fn builder_is_deterministic_and_order_sensitive() {
        let build = |pages: &[(usize, u8, &[u8])]| {
            let mut b = MeasurementBuilder::new();
            for (off, ty, data) in pages {
                b.add_page(*off, *ty, data);
            }
            b.finalize()
        };
        let a = build(&[(0, 1, b"code"), (4096, 2, b"data")]);
        let b = build(&[(0, 1, b"code"), (4096, 2, b"data")]);
        assert_eq!(a, b);
        // Order matters.
        let c = build(&[(4096, 2, b"data"), (0, 1, b"code")]);
        assert_ne!(a, c);
        // Offset matters.
        let d = build(&[(0, 1, b"code"), (8192, 2, b"data")]);
        assert_ne!(a, d);
        // Page type matters.
        let e = build(&[(0, 3, b"code"), (4096, 2, b"data")]);
        assert_ne!(a, e);
        // Content matters.
        let f = build(&[(0, 1, b"code!"), (4096, 2, b"data")]);
        assert_ne!(a, f);
    }

    #[test]
    fn page_count_is_part_of_identity() {
        let mut one = MeasurementBuilder::new();
        one.add_page(0, 1, b"xy");
        assert_eq!(one.pages(), 1);
        let one = one.finalize();

        // Concatenating the same bytes as two pages must measure differently.
        let mut two = MeasurementBuilder::new();
        two.add_page(0, 1, b"x");
        two.add_page(1, 1, b"y");
        assert_ne!(one, two.finalize());
    }

    #[test]
    fn display_and_debug() {
        let m = Measurement::of_bytes(b"x");
        assert_eq!(format!("{m}").len(), 64);
        assert!(format!("{m:?}").starts_with("Measurement("));
        assert_eq!(Measurement::zero().as_bytes(), &[0u8; 32]);
    }
}
