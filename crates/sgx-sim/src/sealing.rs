//! Sealed storage.
//!
//! SGX sealing lets an enclave encrypt data such that only an enclave with
//! the same identity, on the same platform, can decrypt it. The Glimmer uses
//! sealing to persist the service-provided signing key ("the signing key used
//! can be provided by the service, and sealed ... to the Glimmer code, so
//! that it is only available to instances of Glimmer enclaves", Section 3)
//! and to cache blinding secrets across restarts.
//!
//! Keys are derived as
//! `HKDF(platform_fuse_secret, policy || identity || isv_svn || key_id)`
//! where `identity` is MRENCLAVE (policy [`SealPolicy::MrEnclave`]) or
//! MRSIGNER (policy [`SealPolicy::MrSigner`]). Because the platform fuse
//! secret never leaves the platform, sealed blobs cannot migrate between
//! machines, and because the identity is folded into the key, a different
//! enclave on the same machine cannot unseal them either.

use crate::error::SgxError;
use crate::image::EnclaveAttributes;
use crate::measurement::Measurement;
use glimmer_crypto::aead::AeadKey;
use glimmer_crypto::hkdf::hkdf;

/// Which enclave identity the sealing key is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealPolicy {
    /// Bound to the exact enclave measurement: only byte-identical enclave
    /// code can unseal. This is what the Glimmer uses for the service signing
    /// key.
    MrEnclave,
    /// Bound to the signer: any enclave from the same vendor (e.g., a newer
    /// Glimmer version signed by the same vetting organization) can unseal.
    MrSigner,
}

impl SealPolicy {
    fn tag(self) -> u8 {
        match self {
            SealPolicy::MrEnclave => 0,
            SealPolicy::MrSigner => 1,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(SealPolicy::MrEnclave),
            1 => Some(SealPolicy::MrSigner),
            _ => None,
        }
    }
}

/// An encrypted, integrity-protected sealed blob.
///
/// The blob records the policy and a random key id, both of which are
/// authenticated but not secret. The identity of the sealer is *not* stored:
/// it is folded into the key derivation, so a mismatched unsealer simply
/// fails authentication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    policy: SealPolicy,
    key_id: [u8; 16],
    nonce: [u8; 12],
    aad: Vec<u8>,
    ciphertext: Vec<u8>,
}

impl SealedBlob {
    /// The sealing policy recorded in the blob.
    #[must_use]
    pub fn policy(&self) -> SealPolicy {
        self.policy
    }

    /// Associated (authenticated, non-secret) data stored with the blob.
    #[must_use]
    pub fn aad(&self) -> &[u8] {
        &self.aad
    }

    /// Whether the blob's associated data equals `expected` — the cheap
    /// pre-check unsealers use to fail closed on blobs bound to a different
    /// context (the AAD is authenticated, so a liar here still fails the
    /// AEAD tag check; the pre-check just produces the rejection before any
    /// key derivation happens).
    #[must_use]
    pub fn matches_aad(&self, expected: &[u8]) -> bool {
        self.aad == expected
    }

    /// Total serialized size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.to_bytes().len()
    }

    /// True when the blob carries no ciphertext (never produced by `seal`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ciphertext.is_empty()
    }

    /// Serializes the blob for storage or transport.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(1 + 16 + 12 + 8 + self.aad.len() + 8 + self.ciphertext.len());
        out.push(self.policy.tag());
        out.extend_from_slice(&self.key_id);
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&(self.aad.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.aad);
        out.extend_from_slice(&(self.ciphertext.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parses a blob serialized with [`SealedBlob::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        if bytes.len() < 1 + 16 + 12 + 8 {
            return Err(SgxError::Malformed("sealed blob too short"));
        }
        let policy =
            SealPolicy::from_tag(bytes[0]).ok_or(SgxError::Malformed("unknown seal policy"))?;
        let mut key_id = [0u8; 16];
        key_id.copy_from_slice(&bytes[1..17]);
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&bytes[17..29]);
        let mut offset = 29;
        let aad_len = read_len(bytes, &mut offset)?;
        let aad = read_slice(bytes, &mut offset, aad_len)?.to_vec();
        let ct_len = read_len(bytes, &mut offset)?;
        let ciphertext = read_slice(bytes, &mut offset, ct_len)?.to_vec();
        if offset != bytes.len() {
            return Err(SgxError::Malformed("trailing bytes in sealed blob"));
        }
        Ok(SealedBlob {
            policy,
            key_id,
            nonce,
            aad,
            ciphertext,
        })
    }
}

fn read_len(bytes: &[u8], offset: &mut usize) -> Result<usize, SgxError> {
    if bytes.len() < *offset + 8 {
        return Err(SgxError::Malformed("truncated length field"));
    }
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[*offset..*offset + 8]);
    *offset += 8;
    usize::try_from(u64::from_le_bytes(buf)).map_err(|_| SgxError::Malformed("length overflow"))
}

fn read_slice<'a>(bytes: &'a [u8], offset: &mut usize, len: usize) -> Result<&'a [u8], SgxError> {
    if bytes.len() < *offset + len {
        return Err(SgxError::Malformed("truncated payload"));
    }
    let out = &bytes[*offset..*offset + len];
    *offset += len;
    Ok(out)
}

/// The identity of the enclave performing a seal/unseal operation.
#[derive(Debug, Clone, Copy)]
pub struct SealerIdentity {
    /// MRENCLAVE of the enclave.
    pub measurement: Measurement,
    /// MRSIGNER of the enclave.
    pub signer: Measurement,
    /// Attributes (the security version participates in key derivation under
    /// the MrSigner policy, so newer enclaves can read older data but not vice
    /// versa; the simulator folds in the exact SVN for simplicity).
    pub attributes: EnclaveAttributes,
}

fn derive_seal_key(
    platform_secret: &[u8; 32],
    policy: SealPolicy,
    identity: &SealerIdentity,
    key_id: &[u8; 16],
) -> AeadKey {
    let bound_identity = match policy {
        SealPolicy::MrEnclave => identity.measurement,
        SealPolicy::MrSigner => identity.signer,
    };
    let mut info = Vec::with_capacity(1 + 32 + 2 + 16);
    info.push(policy.tag());
    info.extend_from_slice(bound_identity.as_bytes());
    info.extend_from_slice(&identity.attributes.isv_prod_id.to_le_bytes());
    info.extend_from_slice(key_id);
    let okm = hkdf(b"sgx-sim-seal-v1", platform_secret, &info, 32);
    let mut master = [0u8; 32];
    master.copy_from_slice(&okm);
    AeadKey::from_master(&master)
}

/// Seals `plaintext` under the given policy and identity.
///
/// `key_id` and `nonce` must be fresh random values supplied by the caller
/// (the enclave environment provides them from the platform RNG).
#[must_use]
pub fn seal(
    platform_secret: &[u8; 32],
    policy: SealPolicy,
    identity: &SealerIdentity,
    key_id: [u8; 16],
    nonce: [u8; 12],
    aad: &[u8],
    plaintext: &[u8],
) -> SealedBlob {
    let key = derive_seal_key(platform_secret, policy, identity, &key_id);
    let ciphertext = key.seal(&nonce, aad, plaintext);
    SealedBlob {
        policy,
        key_id,
        nonce,
        aad: aad.to_vec(),
        ciphertext,
    }
}

/// Unseals a blob with the calling enclave's identity.
///
/// Fails with [`SgxError::UnsealDenied`] if the blob was sealed by a
/// different identity (under the blob's policy) or on a different platform,
/// or if it was tampered with.
pub fn unseal(
    platform_secret: &[u8; 32],
    identity: &SealerIdentity,
    blob: &SealedBlob,
) -> Result<Vec<u8>, SgxError> {
    let key = derive_seal_key(platform_secret, blob.policy, identity, &blob.key_id);
    key.open(&blob.nonce, &blob.aad, &blob.ciphertext)
        .map_err(|_| SgxError::UnsealDenied("identity or platform mismatch, or blob tampered"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity(code: &[u8], signer: &[u8]) -> SealerIdentity {
        SealerIdentity {
            measurement: Measurement::of_bytes(code),
            signer: Measurement::of_bytes(signer),
            attributes: EnclaveAttributes::default(),
        }
    }

    const SECRET_A: [u8; 32] = [11u8; 32];
    const SECRET_B: [u8; 32] = [22u8; 32];

    #[test]
    fn seal_unseal_round_trip() {
        let id = identity(b"glimmer", b"eff");
        let blob = seal(
            &SECRET_A,
            SealPolicy::MrEnclave,
            &id,
            [1u8; 16],
            [2u8; 12],
            b"signing key v1",
            b"super secret scalar",
        );
        assert!(!blob.is_empty());
        assert_eq!(blob.aad(), b"signing key v1");
        assert_eq!(blob.policy(), SealPolicy::MrEnclave);
        let plain = unseal(&SECRET_A, &id, &blob).unwrap();
        assert_eq!(plain, b"super secret scalar");
    }

    #[test]
    fn wrong_measurement_cannot_unseal_mrenclave_blob() {
        let sealer = identity(b"glimmer-v1", b"eff");
        let other = identity(b"glimmer-v2", b"eff");
        let blob = seal(
            &SECRET_A,
            SealPolicy::MrEnclave,
            &sealer,
            [1u8; 16],
            [2u8; 12],
            b"",
            b"data",
        );
        assert!(matches!(
            unseal(&SECRET_A, &other, &blob),
            Err(SgxError::UnsealDenied(_))
        ));
    }

    #[test]
    fn same_signer_can_unseal_mrsigner_blob() {
        let v1 = identity(b"glimmer-v1", b"eff");
        let v2 = identity(b"glimmer-v2", b"eff");
        let stranger = identity(b"glimmer-v2", b"unknown-vendor");
        let blob = seal(
            &SECRET_A,
            SealPolicy::MrSigner,
            &v1,
            [3u8; 16],
            [4u8; 12],
            b"",
            b"migratable data",
        );
        assert_eq!(unseal(&SECRET_A, &v2, &blob).unwrap(), b"migratable data");
        assert!(unseal(&SECRET_A, &stranger, &blob).is_err());
    }

    #[test]
    fn different_platform_cannot_unseal() {
        let id = identity(b"glimmer", b"eff");
        let blob = seal(
            &SECRET_A,
            SealPolicy::MrEnclave,
            &id,
            [5u8; 16],
            [6u8; 12],
            b"",
            b"data",
        );
        assert!(unseal(&SECRET_B, &id, &blob).is_err());
    }

    #[test]
    fn tampering_is_detected() {
        let id = identity(b"glimmer", b"eff");
        let blob = seal(
            &SECRET_A,
            SealPolicy::MrEnclave,
            &id,
            [7u8; 16],
            [8u8; 12],
            b"label",
            b"data",
        );
        // Tamper with the AAD through serialization.
        let mut bytes = blob.to_bytes();
        let aad_pos = 1 + 16 + 12 + 8;
        bytes[aad_pos] ^= 0xFF;
        let tampered = SealedBlob::from_bytes(&bytes).unwrap();
        assert!(unseal(&SECRET_A, &id, &tampered).is_err());
    }

    #[test]
    fn serialization_round_trip_and_malformed_inputs() {
        let id = identity(b"glimmer", b"eff");
        let blob = seal(
            &SECRET_A,
            SealPolicy::MrSigner,
            &id,
            [9u8; 16],
            [10u8; 12],
            b"aad bytes",
            b"payload",
        );
        let bytes = blob.to_bytes();
        assert_eq!(bytes.len(), blob.len());
        let parsed = SealedBlob::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, blob);
        assert_eq!(unseal(&SECRET_A, &id, &parsed).unwrap(), b"payload");

        assert!(SealedBlob::from_bytes(&[]).is_err());
        assert!(SealedBlob::from_bytes(&bytes[..10]).is_err());
        // Unknown policy tag.
        let mut bad = bytes.clone();
        bad[0] = 99;
        assert!(SealedBlob::from_bytes(&bad).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(SealedBlob::from_bytes(&long).is_err());
        // Truncated ciphertext.
        let short = &bytes[..bytes.len() - 1];
        assert!(SealedBlob::from_bytes(short).is_err());
    }

    #[test]
    fn aad_binding_is_checkable_before_unsealing() {
        let id = identity(b"glimmer", b"eff");
        let blob = seal(
            &SECRET_A,
            SealPolicy::MrEnclave,
            &id,
            [1u8; 16],
            [2u8; 12],
            b"snapshot-header-epoch-1",
            b"state",
        );
        assert!(blob.matches_aad(b"snapshot-header-epoch-1"));
        assert!(!blob.matches_aad(b"snapshot-header-epoch-2"));
        assert!(!blob.matches_aad(b""));
    }

    #[test]
    fn key_id_separates_blobs() {
        let id = identity(b"glimmer", b"eff");
        let a = seal(
            &SECRET_A,
            SealPolicy::MrEnclave,
            &id,
            [1u8; 16],
            [0u8; 12],
            b"",
            b"x",
        );
        let b = seal(
            &SECRET_A,
            SealPolicy::MrEnclave,
            &id,
            [2u8; 16],
            [0u8; 12],
            b"",
            b"x",
        );
        assert_ne!(a.to_bytes(), b.to_bytes());
    }
}
