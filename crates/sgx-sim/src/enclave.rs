//! The enclave programming model: programs, the trusted environment they see,
//! and the OCALL interface back to the untrusted host.
//!
//! A simulated enclave is a Rust value implementing [`EnclaveProgram`]. The
//! host can only interact with it through [`crate::Platform::ecall`], which
//! passes opaque bytes in and out — mirroring the ECALL marshalling of a real
//! SGX SDK. Inside an ECALL, the program sees an [`EnclaveEnv`] that exposes
//! exactly the trusted services hardware would: its own identity, sealing,
//! report generation, randomness, and the ability to issue OCALLs to the
//! (untrusted) host.

use crate::attestation::{Report, TargetInfo, REPORT_DATA_LEN};
use crate::image::EnclaveAttributes;
use crate::measurement::Measurement;
use crate::platform::PlatformId;
use crate::sealing::{SealPolicy, SealedBlob};
use crate::Result;

/// The code that runs inside a simulated enclave.
///
/// Programs are written against [`EnclaveEnv`] only; they never see the
/// platform, the host process, or other enclaves directly. The Glimmer
/// enclave application in `glimmer-core` is the primary implementor.
pub trait EnclaveProgram: Send {
    /// A short, stable name used in debugging output.
    fn name(&self) -> &str {
        "enclave-program"
    }

    /// Handles one ECALL.
    ///
    /// `selector` identifies the entry point; `data` is the marshalled
    /// request. The return value is marshalled back to the host. Returning
    /// `Err` models an enclave abort: the error string is surfaced to the
    /// host as [`crate::SgxError::EnclaveAbort`] and the enclave remains
    /// usable (matching SGX, where an aborted ECALL does not destroy the
    /// enclave).
    fn handle_ecall(
        &mut self,
        env: &mut dyn EnclaveEnv,
        selector: u16,
        data: &[u8],
    ) -> std::result::Result<Vec<u8>, String>;
}

/// The trusted services visible to code running inside an enclave.
pub trait EnclaveEnv {
    /// MRENCLAVE of the running enclave.
    fn measurement(&self) -> Measurement;

    /// MRSIGNER of the running enclave.
    fn signer(&self) -> Measurement;

    /// Attributes (debug flag, product id, security version).
    fn attributes(&self) -> EnclaveAttributes;

    /// Identity of the platform the enclave runs on.
    fn platform_id(&self) -> PlatformId;

    /// Seals `plaintext` (with authenticated `aad`) under `policy`.
    fn seal(&mut self, policy: SealPolicy, aad: &[u8], plaintext: &[u8]) -> Result<SealedBlob>;

    /// Unseals a blob previously sealed by an enclave this one is entitled to
    /// impersonate under the blob's policy.
    fn unseal(&mut self, blob: &SealedBlob) -> Result<Vec<u8>>;

    /// Unseals a blob, additionally requiring its associated data to equal
    /// `expected_aad` — the fail-closed path for blobs that must be bound to
    /// one specific context (e.g. an enclave state export bound to the
    /// snapshot header it was captured under). A mismatched AAD is rejected
    /// *before* any key derivation, with the same
    /// [`crate::SgxError::UnsealDenied`] an AEAD failure would produce, so a
    /// spliced or relabelled blob is indistinguishable from a tampered one.
    fn unseal_expecting(&mut self, blob: &SealedBlob, expected_aad: &[u8]) -> Result<Vec<u8>> {
        if !blob.matches_aad(expected_aad) {
            return Err(crate::SgxError::UnsealDenied(
                "blob bound to different associated data",
            ));
        }
        self.unseal(blob)
    }

    /// Produces a local-attestation report targeted at `target`, binding
    /// `report_data`.
    fn create_report(&mut self, target: &TargetInfo, report_data: [u8; REPORT_DATA_LEN]) -> Report;

    /// Verifies a report that was targeted at *this* enclave.
    fn verify_report(&mut self, report: &Report) -> bool;

    /// Returns `n` bytes of hardware randomness (RDRAND equivalent).
    fn random_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Issues an OCALL to the untrusted host and returns its reply.
    ///
    /// The reply comes from untrusted code; enclave programs must treat it as
    /// adversarial input.
    fn ocall(&mut self, selector: u16, data: &[u8]) -> Result<Vec<u8>>;
}

/// The untrusted host's handler for OCALLs issued by an enclave during an
/// ECALL.
pub trait OcallHandler {
    /// Handles one OCALL; the error string is surfaced to the enclave as
    /// [`crate::SgxError::OcallFailed`].
    fn handle_ocall(&mut self, selector: u16, data: &[u8]) -> std::result::Result<Vec<u8>, String>;
}

/// An [`OcallHandler`] that rejects every OCALL.
///
/// Useful for enclaves (like the basic Glimmer validation path) that are
/// expected to run fully isolated; any attempted OCALL is an error.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoOcalls;

impl OcallHandler for NoOcalls {
    fn handle_ocall(
        &mut self,
        selector: u16,
        _data: &[u8],
    ) -> std::result::Result<Vec<u8>, String> {
        Err(format!("OCALL {selector} rejected: no OCALLs permitted"))
    }
}

/// An [`OcallHandler`] backed by a closure, convenient in tests and examples.
pub struct FnOcallHandler<F>(pub F)
where
    F: FnMut(u16, &[u8]) -> std::result::Result<Vec<u8>, String>;

impl<F> OcallHandler for FnOcallHandler<F>
where
    F: FnMut(u16, &[u8]) -> std::result::Result<Vec<u8>, String>,
{
    fn handle_ocall(&mut self, selector: u16, data: &[u8]) -> std::result::Result<Vec<u8>, String> {
        (self.0)(selector, data)
    }
}

/// Lifecycle state of an instantiated enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnclaveState {
    /// Initialized and accepting ECALLs.
    Ready,
    /// Currently executing an ECALL (re-entrancy is not supported).
    InEcall,
    /// Destroyed; all further operations fail.
    Destroyed,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ocalls_rejects() {
        let mut handler = NoOcalls;
        let err = handler.handle_ocall(3, b"x").unwrap_err();
        assert!(err.contains('3'));
    }

    #[test]
    fn fn_handler_delegates() {
        let mut handler = FnOcallHandler(|sel, data: &[u8]| {
            if sel == 1 {
                Ok(data.to_vec())
            } else {
                Err("nope".to_string())
            }
        });
        assert_eq!(handler.handle_ocall(1, b"echo").unwrap(), b"echo");
        assert!(handler.handle_ocall(2, b"echo").is_err());
    }
}
