//! The simulated SGX-capable client platform.
//!
//! A [`Platform`] owns the per-machine secrets (sealing fuse key, report key,
//! provisioned attestation key), the EPC, and the set of live enclaves. It is
//! the only way host code can create enclaves, enter them via ECALLs, and
//! obtain quotes — exactly the narrow waist the Glimmer design relies on.

use crate::attestation::{
    AttestationService, Quote, QuoteBody, Report, ReportBody, TargetInfo, REPORT_DATA_LEN,
};
use crate::cost::{CostMeter, CostModel, CostReport};
use crate::enclave::{EnclaveEnv, EnclaveProgram, EnclaveState, OcallHandler};
use crate::epc::Epc;
use crate::error::SgxError;
use crate::image::{EnclaveAttributes, EnclaveImage};
use crate::measurement::Measurement;
use crate::sealing::{self, SealPolicy, SealedBlob, SealerIdentity};
use crate::Result;
use glimmer_crypto::drbg::Drbg;
use std::collections::HashMap;

/// A 128-bit platform identity (stands in for the EPID group / PPID).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlatformId(pub [u8; 16]);

impl PlatformId {
    /// Hex rendering.
    #[must_use]
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl core::fmt::Debug for PlatformId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "PlatformId({}..)", &self.to_hex()[..8])
    }
}

/// Handle to an enclave instantiated on a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnclaveId(pub u64);

/// Platform construction parameters.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// EPC capacity in 4 KiB pages (default: 24 576 pages = 96 MiB usable).
    pub epc_pages: usize,
    /// Whether EPC oversubscription is allowed (paging instead of failure).
    pub allow_epc_oversubscription: bool,
    /// Cycle cost model.
    pub cost_model: CostModel,
    /// If set, only images whose signer appears in this list may launch
    /// (models launch control / an approved-Glimmer allowlist).
    pub approved_signers: Option<Vec<Measurement>>,
    /// Whether debug enclaves may launch.
    pub allow_debug_launch: bool,
    /// The platform's TCB security version, reflected in quotes.
    pub tcb_svn: u16,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            epc_pages: 24_576,
            allow_epc_oversubscription: false,
            cost_model: CostModel::default(),
            approved_signers: None,
            allow_debug_launch: false,
            tcb_svn: 2,
        }
    }
}

/// Identity of a live enclave, cached at creation time.
#[derive(Debug, Clone, Copy)]
struct EnclaveIdentity {
    measurement: Measurement,
    signer: Measurement,
    attributes: EnclaveAttributes,
}

struct EnclaveSlot {
    identity: EnclaveIdentity,
    program: Option<Box<dyn EnclaveProgram>>,
    state: EnclaveState,
}

/// Measurement of the built-in quoting enclave.
fn quoting_enclave_measurement() -> Measurement {
    Measurement::of_bytes(b"sgx-sim-quoting-enclave-v1")
}

/// A simulated SGX-capable machine.
pub struct Platform {
    id: PlatformId,
    seal_secret: [u8; 32],
    report_secret: [u8; 32],
    attestation_key: Option<[u8; 32]>,
    tcb_svn: u16,
    epc: Epc,
    meter: CostMeter,
    enclaves: HashMap<u64, EnclaveSlot>,
    next_enclave: u64,
    approved_signers: Option<Vec<Measurement>>,
    allow_debug_launch: bool,
    rng: Drbg,
}

// A platform (and everything inside it, including hosted enclave programs —
// `EnclaveProgram: Send` is part of that trait's contract) can migrate to a
// worker thread: the gateway's shard-per-core runtime moves each pool slot's
// platform into the shard that owns it. `Sync` is deliberately NOT promised:
// enclave transitions take `&mut self`, so a platform is single-threaded at
// any instant, and cross-thread serving goes through message passing.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Platform>();
};

impl Platform {
    /// Creates a platform, drawing its identity and secrets from `rng`.
    #[must_use]
    pub fn new(config: PlatformConfig, rng: &mut Drbg) -> Self {
        let mut id = [0u8; 16];
        rng.fill_bytes(&mut id);
        let mut seal_secret = [0u8; 32];
        rng.fill_bytes(&mut seal_secret);
        let mut report_secret = [0u8; 32];
        rng.fill_bytes(&mut report_secret);
        let platform_rng = rng.fork("platform-rng");
        Platform {
            id: PlatformId(id),
            seal_secret,
            report_secret,
            attestation_key: None,
            tcb_svn: config.tcb_svn,
            epc: Epc::new(config.epc_pages, config.allow_epc_oversubscription),
            meter: CostMeter::new(config.cost_model),
            enclaves: HashMap::new(),
            next_enclave: 1,
            approved_signers: config.approved_signers,
            allow_debug_launch: config.allow_debug_launch,
            rng: platform_rng,
        }
    }

    /// The platform identity.
    #[must_use]
    pub fn id(&self) -> PlatformId {
        self.id
    }

    /// The cost meter shared by this platform's operations.
    #[must_use]
    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }

    /// Convenience: a snapshot of accumulated costs.
    #[must_use]
    pub fn cost_report(&self) -> CostReport {
        self.meter.report()
    }

    /// The platform's TCB security version.
    #[must_use]
    pub fn tcb_svn(&self) -> u16 {
        self.tcb_svn
    }

    /// Simulates a TCB recovery (microcode update): bumps the SVN.
    pub fn patch_tcb(&mut self, new_svn: u16) {
        self.tcb_svn = new_svn;
    }

    /// The EPC (for inspection in tests and experiments).
    #[must_use]
    pub fn epc(&self) -> &Epc {
        &self.epc
    }

    /// Provisions this platform with the attestation service, installing the
    /// returned attestation key. Must be done before quotes can be produced.
    pub fn provision(&mut self, avs: &mut AttestationService) {
        let key = avs.provision(self.id, self.tcb_svn);
        self.attestation_key = Some(key);
    }

    /// Whether the platform has been provisioned for remote attestation.
    #[must_use]
    pub fn is_provisioned(&self) -> bool {
        self.attestation_key.is_some()
    }

    /// Target info for the quoting enclave, used by application enclaves to
    /// direct their reports.
    #[must_use]
    pub fn quoting_enclave_target(&self) -> TargetInfo {
        TargetInfo {
            measurement: quoting_enclave_measurement(),
        }
    }

    /// Creates (ECREATE/EADD/EINIT) an enclave from `image` running `program`.
    pub fn create_enclave(
        &mut self,
        image: &EnclaveImage,
        program: Box<dyn EnclaveProgram>,
    ) -> Result<EnclaveId> {
        if image.pages().is_empty() {
            return Err(SgxError::InvalidImage("image has no pages"));
        }
        if image.attributes().debug && !self.allow_debug_launch {
            return Err(SgxError::LaunchDenied("debug enclaves not allowed"));
        }
        if let Some(approved) = &self.approved_signers {
            if !approved.contains(&image.signer()) {
                return Err(SgxError::LaunchDenied("signer not in launch allowlist"));
            }
        }
        let id = self.next_enclave;
        self.epc.allocate(id, image.total_pages(), &self.meter)?;
        self.next_enclave += 1;
        let identity = EnclaveIdentity {
            measurement: image.measurement(),
            signer: image.signer(),
            attributes: image.attributes(),
        };
        self.enclaves.insert(
            id,
            EnclaveSlot {
                identity,
                program: Some(program),
                state: EnclaveState::Ready,
            },
        );
        Ok(EnclaveId(id))
    }

    /// Destroys an enclave and releases its EPC pages.
    pub fn destroy_enclave(&mut self, id: EnclaveId) -> Result<()> {
        let slot = self
            .enclaves
            .get_mut(&id.0)
            .ok_or(SgxError::NoSuchEnclave(id.0))?;
        if slot.state == EnclaveState::InEcall {
            return Err(SgxError::BadLifecycleState("enclave is executing an ECALL"));
        }
        slot.state = EnclaveState::Destroyed;
        slot.program = None;
        self.epc.release(id.0);
        Ok(())
    }

    /// Number of live (non-destroyed) enclaves.
    #[must_use]
    pub fn live_enclaves(&self) -> usize {
        self.enclaves
            .values()
            .filter(|s| s.state == EnclaveState::Ready)
            .count()
    }

    /// The measurement of a live enclave.
    pub fn enclave_measurement(&self, id: EnclaveId) -> Result<Measurement> {
        let slot = self
            .enclaves
            .get(&id.0)
            .ok_or(SgxError::NoSuchEnclave(id.0))?;
        Ok(slot.identity.measurement)
    }

    /// Enters an enclave (ECALL) with an OCALL handler for any calls the
    /// enclave makes back into untrusted code.
    pub fn ecall(
        &mut self,
        id: EnclaveId,
        selector: u16,
        data: &[u8],
        ocalls: &mut dyn OcallHandler,
    ) -> Result<Vec<u8>> {
        // Phase 1: take the program out of the slot so the platform can be
        // reborrowed for the enclave environment.
        let (mut program, identity) = {
            let slot = self
                .enclaves
                .get_mut(&id.0)
                .ok_or(SgxError::NoSuchEnclave(id.0))?;
            match slot.state {
                EnclaveState::Destroyed => {
                    return Err(SgxError::BadLifecycleState("enclave destroyed"))
                }
                EnclaveState::InEcall => {
                    return Err(SgxError::BadLifecycleState("re-entrant ECALL"))
                }
                EnclaveState::Ready => {}
            }
            slot.state = EnclaveState::InEcall;
            let program = slot
                .program
                .take()
                .ok_or(SgxError::BadLifecycleState("enclave program missing"))?;
            (program, slot.identity)
        };

        // Phase 2: run the program against a fresh environment.
        let result = {
            let mut env = PlatformEnv {
                identity,
                platform_id: self.id,
                seal_secret: self.seal_secret,
                report_secret: self.report_secret,
                meter: self.meter.clone(),
                rng: &mut self.rng,
                ocalls,
            };
            program.handle_ecall(&mut env, selector, data)
        };

        // Phase 3: restore the program and charge the transition.
        let out_len = result.as_ref().map(|v| v.len()).unwrap_or(0);
        self.meter.charge_ecall(data.len(), out_len);
        if let Some(slot) = self.enclaves.get_mut(&id.0) {
            slot.program = Some(program);
            slot.state = EnclaveState::Ready;
        }
        result.map_err(SgxError::EnclaveAbort)
    }

    /// The quoting enclave: converts a report (targeted at the QE) into a
    /// remote-attestation quote signed with the provisioned attestation key.
    pub fn quote_report(&self, report: &Report) -> Result<Quote> {
        let key = self.attestation_key.ok_or(SgxError::NotProvisioned)?;
        if report.body.platform_id != self.id {
            return Err(SgxError::AttestationFailed(
                "report was produced on a different platform",
            ));
        }
        if !report.verify(&self.report_secret, &quoting_enclave_measurement()) {
            return Err(SgxError::AttestationFailed(
                "report not targeted at the quoting enclave or MAC invalid",
            ));
        }
        self.meter.charge_quote();
        Ok(Quote::create(
            &key,
            QuoteBody {
                report: report.body.clone(),
                platform_tcb_svn: self.tcb_svn,
            },
        ))
    }
}

/// The [`EnclaveEnv`] implementation backed by a platform during one ECALL.
struct PlatformEnv<'a> {
    identity: EnclaveIdentity,
    platform_id: PlatformId,
    seal_secret: [u8; 32],
    report_secret: [u8; 32],
    meter: CostMeter,
    rng: &'a mut Drbg,
    ocalls: &'a mut dyn OcallHandler,
}

impl<'a> PlatformEnv<'a> {
    fn sealer_identity(&self) -> SealerIdentity {
        SealerIdentity {
            measurement: self.identity.measurement,
            signer: self.identity.signer,
            attributes: self.identity.attributes,
        }
    }
}

impl<'a> EnclaveEnv for PlatformEnv<'a> {
    fn measurement(&self) -> Measurement {
        self.identity.measurement
    }

    fn signer(&self) -> Measurement {
        self.identity.signer
    }

    fn attributes(&self) -> EnclaveAttributes {
        self.identity.attributes
    }

    fn platform_id(&self) -> PlatformId {
        self.platform_id
    }

    fn seal(&mut self, policy: SealPolicy, aad: &[u8], plaintext: &[u8]) -> Result<SealedBlob> {
        self.meter.charge_getkey();
        let mut key_id = [0u8; 16];
        self.rng.fill_bytes(&mut key_id);
        let mut nonce = [0u8; 12];
        self.rng.fill_bytes(&mut nonce);
        Ok(sealing::seal(
            &self.seal_secret,
            policy,
            &self.sealer_identity(),
            key_id,
            nonce,
            aad,
            plaintext,
        ))
    }

    fn unseal(&mut self, blob: &SealedBlob) -> Result<Vec<u8>> {
        self.meter.charge_getkey();
        sealing::unseal(&self.seal_secret, &self.sealer_identity(), blob)
    }

    fn create_report(&mut self, target: &TargetInfo, report_data: [u8; REPORT_DATA_LEN]) -> Report {
        self.meter.charge_ereport();
        Report::create(
            &self.report_secret,
            ReportBody {
                platform_id: self.platform_id,
                measurement: self.identity.measurement,
                signer: self.identity.signer,
                attributes: self.identity.attributes,
                report_data,
            },
            target,
        )
    }

    fn verify_report(&mut self, report: &Report) -> bool {
        report.verify(&self.report_secret, &self.identity.measurement)
    }

    fn random_bytes(&mut self, n: usize) -> Vec<u8> {
        self.rng.bytes(n)
    }

    fn ocall(&mut self, selector: u16, data: &[u8]) -> Result<Vec<u8>> {
        let result = self.ocalls.handle_ocall(selector, data);
        let out_len = result.as_ref().map(|v| v.len()).unwrap_or(0);
        self.meter.charge_ocall(data.len(), out_len);
        result.map_err(SgxError::OcallFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::{FnOcallHandler, NoOcalls};

    /// A small test program exercising every environment service.
    struct EchoProgram;

    impl EnclaveProgram for EchoProgram {
        fn name(&self) -> &str {
            "echo"
        }

        fn handle_ecall(
            &mut self,
            env: &mut dyn EnclaveEnv,
            selector: u16,
            data: &[u8],
        ) -> std::result::Result<Vec<u8>, String> {
            match selector {
                // Echo.
                0 => Ok(data.to_vec()),
                // Seal then unseal round trip inside the enclave.
                1 => {
                    let blob = env
                        .seal(SealPolicy::MrEnclave, b"test", data)
                        .map_err(|e| e.to_string())?;
                    let plain = env.unseal(&blob).map_err(|e| e.to_string())?;
                    Ok(plain)
                }
                // Seal and return the blob bytes to the host.
                2 => {
                    let blob = env
                        .seal(SealPolicy::MrEnclave, b"persist", data)
                        .map_err(|e| e.to_string())?;
                    Ok(blob.to_bytes())
                }
                // Unseal host-provided blob bytes.
                3 => {
                    let blob = SealedBlob::from_bytes(data).map_err(|e| e.to_string())?;
                    env.unseal(&blob).map_err(|e| e.to_string())
                }
                // Produce a report for the quoting enclave binding `data`.
                4 => {
                    let mut report_data = [0u8; REPORT_DATA_LEN];
                    let n = data.len().min(REPORT_DATA_LEN);
                    report_data[..n].copy_from_slice(&data[..n]);
                    let target = TargetInfo {
                        measurement: Measurement::of_bytes(b"sgx-sim-quoting-enclave-v1"),
                    };
                    let report = env.create_report(&target, report_data);
                    Ok(report.to_bytes())
                }
                // OCALL out and return the host's answer.
                5 => env.ocall(7, data).map_err(|e| e.to_string()),
                // Random bytes.
                6 => Ok(env.random_bytes(16)),
                // Abort.
                7 => Err("deliberate abort".to_string()),
                // Identity information.
                8 => {
                    let mut out = Vec::new();
                    out.extend_from_slice(env.measurement().as_bytes());
                    out.extend_from_slice(env.signer().as_bytes());
                    out.extend_from_slice(&env.platform_id().0);
                    Ok(out)
                }
                other => Err(format!("unknown selector {other}")),
            }
        }
    }

    fn test_image(code: &[u8]) -> EnclaveImage {
        EnclaveImage::from_code(
            code,
            Measurement::of_bytes(b"test-signer"),
            EnclaveAttributes::default(),
            4,
            1,
        )
    }

    fn new_platform() -> Platform {
        Platform::new(PlatformConfig::default(), &mut Drbg::from_seed([1u8; 32]))
    }

    #[test]
    fn create_ecall_destroy() {
        let mut platform = new_platform();
        let image = test_image(b"echo-program");
        let id = platform
            .create_enclave(&image, Box::new(EchoProgram))
            .unwrap();
        assert_eq!(platform.live_enclaves(), 1);
        assert_eq!(
            platform.enclave_measurement(id).unwrap(),
            image.measurement()
        );

        let reply = platform.ecall(id, 0, b"hello", &mut NoOcalls).unwrap();
        assert_eq!(reply, b"hello");

        platform.destroy_enclave(id).unwrap();
        assert_eq!(platform.live_enclaves(), 0);
        assert!(matches!(
            platform.ecall(id, 0, b"x", &mut NoOcalls),
            Err(SgxError::BadLifecycleState(_))
        ));
        assert!(matches!(
            platform.ecall(EnclaveId(999), 0, b"x", &mut NoOcalls),
            Err(SgxError::NoSuchEnclave(_))
        ));
    }

    #[test]
    fn sealing_through_the_enclave() {
        let mut platform = new_platform();
        let id = platform
            .create_enclave(&test_image(b"sealer"), Box::new(EchoProgram))
            .unwrap();
        // In-enclave round trip.
        let plain = platform.ecall(id, 1, b"secret", &mut NoOcalls).unwrap();
        assert_eq!(plain, b"secret");

        // Seal, pass the blob through the host, unseal again.
        let blob_bytes = platform.ecall(id, 2, b"persisted", &mut NoOcalls).unwrap();
        let recovered = platform.ecall(id, 3, &blob_bytes, &mut NoOcalls).unwrap();
        assert_eq!(recovered, b"persisted");

        // A different enclave (different measurement) cannot unseal it.
        let other = platform
            .create_enclave(&test_image(b"different-code"), Box::new(EchoProgram))
            .unwrap();
        let err = platform.ecall(other, 3, &blob_bytes, &mut NoOcalls);
        assert!(matches!(err, Err(SgxError::EnclaveAbort(_))));
    }

    #[test]
    fn report_and_quote_flow() {
        let mut platform = new_platform();
        let mut avs = AttestationService::new([77u8; 32]);
        platform.provision(&mut avs);
        assert!(platform.is_provisioned());

        let id = platform
            .create_enclave(&test_image(b"attested"), Box::new(EchoProgram))
            .unwrap();
        let report_bytes = platform
            .ecall(id, 4, b"dh-public-hash", &mut NoOcalls)
            .unwrap();
        let report = Report::from_bytes(&report_bytes).unwrap();
        let quote = platform.quote_report(&report).unwrap();

        assert!(avs.verify(&quote).is_ok());
        let body = avs
            .verify_expecting(&quote, &platform.enclave_measurement(id).unwrap())
            .unwrap();
        assert_eq!(&body.report_data[..14], b"dh-public-hash");

        // An unprovisioned platform cannot quote.
        let mut fresh = Platform::new(PlatformConfig::default(), &mut Drbg::from_seed([2u8; 32]));
        let fresh_id = fresh
            .create_enclave(&test_image(b"attested"), Box::new(EchoProgram))
            .unwrap();
        let fresh_report_bytes = fresh.ecall(fresh_id, 4, b"x", &mut NoOcalls).unwrap();
        let fresh_report = Report::from_bytes(&fresh_report_bytes).unwrap();
        assert!(matches!(
            fresh.quote_report(&fresh_report),
            Err(SgxError::NotProvisioned)
        ));

        // A report from another platform is rejected by the QE.
        assert!(matches!(
            platform.quote_report(&fresh_report),
            Err(SgxError::AttestationFailed(_))
        ));
    }

    #[test]
    fn host_cannot_forge_reports_for_the_quoting_enclave() {
        let mut platform = new_platform();
        let mut avs = AttestationService::new([77u8; 32]);
        platform.provision(&mut avs);
        // The host fabricates a report claiming an arbitrary measurement; it
        // does not know the platform report secret, so the QE rejects it.
        let forged = Report::create(
            &[0u8; 32],
            ReportBody {
                platform_id: platform.id(),
                measurement: Measurement::of_bytes(b"fake glimmer"),
                signer: Measurement::of_bytes(b"fake signer"),
                attributes: EnclaveAttributes::default(),
                report_data: [0u8; REPORT_DATA_LEN],
            },
            &platform.quoting_enclave_target(),
        );
        assert!(matches!(
            platform.quote_report(&forged),
            Err(SgxError::AttestationFailed(_))
        ));
    }

    #[test]
    fn ocalls_are_routed_to_the_host_handler() {
        let mut platform = new_platform();
        let id = platform
            .create_enclave(&test_image(b"ocall"), Box::new(EchoProgram))
            .unwrap();
        let mut handler = FnOcallHandler(|sel, data: &[u8]| {
            assert_eq!(sel, 7);
            let mut out = b"host:".to_vec();
            out.extend_from_slice(data);
            Ok(out)
        });
        let reply = platform.ecall(id, 5, b"ping", &mut handler).unwrap();
        assert_eq!(reply, b"host:ping");
        assert_eq!(platform.cost_report().ocalls, 1);

        // A rejecting handler surfaces as an enclave abort (the program maps
        // the error) — and the enclave stays usable.
        assert!(platform.ecall(id, 5, b"ping", &mut NoOcalls).is_err());
        assert_eq!(platform.ecall(id, 0, b"ok", &mut NoOcalls).unwrap(), b"ok");
    }

    #[test]
    fn aborts_do_not_destroy_the_enclave() {
        let mut platform = new_platform();
        let id = platform
            .create_enclave(&test_image(b"abort"), Box::new(EchoProgram))
            .unwrap();
        assert!(matches!(
            platform.ecall(id, 7, b"", &mut NoOcalls),
            Err(SgxError::EnclaveAbort(msg)) if msg.contains("deliberate")
        ));
        assert_eq!(
            platform
                .ecall(id, 0, b"still alive", &mut NoOcalls)
                .unwrap(),
            b"still alive"
        );
    }

    #[test]
    fn launch_control_and_epc_limits() {
        // Launch control: only approved signers.
        let approved = Measurement::of_bytes(b"approved-signer");
        let config = PlatformConfig {
            approved_signers: Some(vec![approved]),
            ..PlatformConfig::default()
        };
        let mut platform = Platform::new(config, &mut Drbg::from_seed([3u8; 32]));
        let bad_image = test_image(b"x");
        assert!(matches!(
            platform.create_enclave(&bad_image, Box::new(EchoProgram)),
            Err(SgxError::LaunchDenied(_))
        ));
        let good_image =
            EnclaveImage::from_code(b"x", approved, EnclaveAttributes::default(), 2, 1);
        assert!(platform
            .create_enclave(&good_image, Box::new(EchoProgram))
            .is_ok());

        // Debug launch control.
        let debug_image = EnclaveImage::from_code(
            b"dbg",
            approved,
            EnclaveAttributes {
                debug: true,
                ..EnclaveAttributes::default()
            },
            0,
            1,
        );
        assert!(matches!(
            platform.create_enclave(&debug_image, Box::new(EchoProgram)),
            Err(SgxError::LaunchDenied(_))
        ));

        // EPC exhaustion.
        let tiny = PlatformConfig {
            epc_pages: 4,
            ..PlatformConfig::default()
        };
        let mut small = Platform::new(tiny, &mut Drbg::from_seed([4u8; 32]));
        let big_image = test_image(&vec![0u8; 64 * 1024]);
        assert!(matches!(
            small.create_enclave(&big_image, Box::new(EchoProgram)),
            Err(SgxError::EpcExhausted { .. })
        ));
    }

    #[test]
    fn cost_accounting_tracks_transitions() {
        let mut platform = new_platform();
        let id = platform
            .create_enclave(&test_image(b"cost"), Box::new(EchoProgram))
            .unwrap();
        let before = platform.cost_report();
        assert!(before.pages_added > 0);
        platform.ecall(id, 0, b"0123456789", &mut NoOcalls).unwrap();
        platform.ecall(id, 6, b"", &mut NoOcalls).unwrap();
        let after = platform.cost_report();
        assert_eq!(after.ecalls, 2);
        assert!(after.total_cycles > before.total_cycles);
        assert!(after.boundary_bytes >= 20);
    }

    #[test]
    fn identity_visible_inside_matches_image() {
        let mut platform = new_platform();
        let image = test_image(b"identity");
        let id = platform
            .create_enclave(&image, Box::new(EchoProgram))
            .unwrap();
        let out = platform.ecall(id, 8, b"", &mut NoOcalls).unwrap();
        assert_eq!(&out[..32], image.measurement().as_bytes());
        assert_eq!(&out[32..64], image.signer().as_bytes());
        assert_eq!(&out[64..80], &platform.id().0);
    }

    #[test]
    fn random_bytes_vary_between_calls() {
        let mut platform = new_platform();
        let id = platform
            .create_enclave(&test_image(b"rng"), Box::new(EchoProgram))
            .unwrap();
        let a = platform.ecall(id, 6, b"", &mut NoOcalls).unwrap();
        let b = platform.ecall(id, 6, b"", &mut NoOcalls).unwrap();
        assert_ne!(a, b);
    }
}
