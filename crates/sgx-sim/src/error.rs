//! Error types for the SGX simulator.

/// Errors produced by platform, enclave, sealing, and attestation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgxError {
    /// The enclave page cache has no room for the requested pages.
    EpcExhausted {
        /// Pages requested.
        requested: usize,
        /// Pages still free.
        free: usize,
    },
    /// The referenced enclave does not exist (or was destroyed).
    NoSuchEnclave(u64),
    /// The enclave is not in the right lifecycle state for the operation.
    BadLifecycleState(&'static str),
    /// The enclave image is malformed (e.g., no TCS page, empty code).
    InvalidImage(&'static str),
    /// The launch policy refused to start the enclave.
    LaunchDenied(&'static str),
    /// An ECALL selector was not recognized by the enclave program.
    UnknownEcall(u16),
    /// The enclave program aborted (simulated runtime error inside the TEE).
    EnclaveAbort(String),
    /// An OCALL failed or was rejected by the untrusted host.
    OcallFailed(String),
    /// A sealed blob could not be unsealed by the calling enclave.
    UnsealDenied(&'static str),
    /// A report or quote failed verification.
    AttestationFailed(&'static str),
    /// The platform is not provisioned with the attestation service.
    NotProvisioned,
    /// An underlying cryptographic operation failed.
    Crypto(glimmer_crypto::CryptoError),
    /// A malformed serialized structure was encountered.
    Malformed(&'static str),
}

impl core::fmt::Display for SgxError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SgxError::EpcExhausted { requested, free } => {
                write!(f, "EPC exhausted: requested {requested} pages, {free} free")
            }
            SgxError::NoSuchEnclave(id) => write!(f, "no such enclave: {id}"),
            SgxError::BadLifecycleState(s) => write!(f, "bad enclave lifecycle state: {s}"),
            SgxError::InvalidImage(s) => write!(f, "invalid enclave image: {s}"),
            SgxError::LaunchDenied(s) => write!(f, "enclave launch denied: {s}"),
            SgxError::UnknownEcall(sel) => write!(f, "unknown ECALL selector {sel}"),
            SgxError::EnclaveAbort(s) => write!(f, "enclave aborted: {s}"),
            SgxError::OcallFailed(s) => write!(f, "OCALL failed: {s}"),
            SgxError::UnsealDenied(s) => write!(f, "unseal denied: {s}"),
            SgxError::AttestationFailed(s) => write!(f, "attestation failed: {s}"),
            SgxError::NotProvisioned => write!(f, "platform not provisioned for attestation"),
            SgxError::Crypto(e) => write!(f, "crypto error: {e}"),
            SgxError::Malformed(s) => write!(f, "malformed structure: {s}"),
        }
    }
}

impl std::error::Error for SgxError {}

impl From<glimmer_crypto::CryptoError> for SgxError {
    fn from(e: glimmer_crypto::CryptoError) -> Self {
        SgxError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let cases: Vec<(SgxError, &str)> = vec![
            (
                SgxError::EpcExhausted {
                    requested: 10,
                    free: 2,
                },
                "EPC",
            ),
            (SgxError::NoSuchEnclave(7), "7"),
            (SgxError::BadLifecycleState("destroyed"), "destroyed"),
            (SgxError::InvalidImage("no pages"), "no pages"),
            (SgxError::LaunchDenied("unapproved signer"), "signer"),
            (SgxError::UnknownEcall(3), "3"),
            (SgxError::EnclaveAbort("oops".into()), "oops"),
            (SgxError::OcallFailed("io".into()), "io"),
            (SgxError::UnsealDenied("wrong measurement"), "measurement"),
            (SgxError::AttestationFailed("bad mac"), "bad mac"),
            (SgxError::NotProvisioned, "provisioned"),
            (SgxError::Malformed("short"), "short"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn crypto_error_conversion() {
        let e: SgxError = glimmer_crypto::CryptoError::VerificationFailed.into();
        assert!(matches!(e, SgxError::Crypto(_)));
        assert!(e.to_string().contains("crypto"));
    }
}
