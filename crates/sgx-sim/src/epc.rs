//! Enclave Page Cache (EPC) accounting.
//!
//! SGX enclaves live in a limited region of protected memory; on the
//! client-class CPUs the paper targets this is typically 93–128 MiB usable.
//! The simulator tracks per-enclave page allocations against a configurable
//! capacity, and optionally models oversubscription by charging page-swap
//! costs instead of failing, so experiments can study Glimmer memory
//! footprint pressure on small clients.

use crate::cost::CostMeter;
use crate::error::SgxError;
use std::collections::HashMap;

/// Size of one EPC page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// The enclave page cache of one platform.
#[derive(Debug)]
pub struct Epc {
    capacity_pages: usize,
    allow_oversubscription: bool,
    allocations: HashMap<u64, usize>,
}

impl Epc {
    /// Creates an EPC with the given capacity in pages.
    #[must_use]
    pub fn new(capacity_pages: usize, allow_oversubscription: bool) -> Self {
        Epc {
            capacity_pages,
            allow_oversubscription,
            allocations: HashMap::new(),
        }
    }

    /// Total capacity in pages.
    #[must_use]
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Pages currently allocated across all enclaves.
    #[must_use]
    pub fn used_pages(&self) -> usize {
        self.allocations.values().sum()
    }

    /// Pages still free (zero when oversubscribed).
    #[must_use]
    pub fn free_pages(&self) -> usize {
        self.capacity_pages.saturating_sub(self.used_pages())
    }

    /// Pages allocated to one enclave.
    #[must_use]
    pub fn pages_of(&self, enclave: u64) -> usize {
        self.allocations.get(&enclave).copied().unwrap_or(0)
    }

    /// Allocates `pages` pages to `enclave`.
    ///
    /// If the request does not fit and oversubscription is disabled, returns
    /// [`SgxError::EpcExhausted`]. If oversubscription is enabled the request
    /// succeeds but the overflowing pages are charged as swaps on `meter`,
    /// modelling EPC paging.
    pub fn allocate(
        &mut self,
        enclave: u64,
        pages: usize,
        meter: &CostMeter,
    ) -> Result<(), SgxError> {
        let free = self.free_pages();
        if pages > free {
            if !self.allow_oversubscription {
                return Err(SgxError::EpcExhausted {
                    requested: pages,
                    free,
                });
            }
            meter.charge_page_swap(pages - free);
        }
        meter.charge_page_add(pages);
        *self.allocations.entry(enclave).or_insert(0) += pages;
        Ok(())
    }

    /// Releases all pages of `enclave` (idempotent).
    pub fn release(&mut self, enclave: u64) {
        self.allocations.remove(&enclave);
    }

    /// Number of enclaves with live allocations.
    #[must_use]
    pub fn enclave_count(&self) -> usize {
        self.allocations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn meter() -> CostMeter {
        CostMeter::new(CostModel::default())
    }

    #[test]
    fn allocation_and_release() {
        let m = meter();
        let mut epc = Epc::new(100, false);
        assert_eq!(epc.capacity_pages(), 100);
        epc.allocate(1, 40, &m).unwrap();
        epc.allocate(2, 30, &m).unwrap();
        assert_eq!(epc.used_pages(), 70);
        assert_eq!(epc.free_pages(), 30);
        assert_eq!(epc.pages_of(1), 40);
        assert_eq!(epc.pages_of(3), 0);
        assert_eq!(epc.enclave_count(), 2);
        epc.release(1);
        assert_eq!(epc.used_pages(), 30);
        epc.release(1); // Idempotent.
        assert_eq!(epc.used_pages(), 30);
    }

    #[test]
    fn exhaustion_without_oversubscription() {
        let m = meter();
        let mut epc = Epc::new(10, false);
        epc.allocate(1, 8, &m).unwrap();
        let err = epc.allocate(2, 5, &m).unwrap_err();
        assert_eq!(
            err,
            SgxError::EpcExhausted {
                requested: 5,
                free: 2
            }
        );
        // Failed allocation does not change accounting.
        assert_eq!(epc.used_pages(), 8);
    }

    #[test]
    fn oversubscription_charges_swaps() {
        let m = meter();
        let mut epc = Epc::new(10, true);
        epc.allocate(1, 8, &m).unwrap();
        epc.allocate(2, 5, &m).unwrap();
        assert_eq!(epc.used_pages(), 13);
        assert_eq!(epc.free_pages(), 0);
        let report = m.report();
        assert_eq!(report.pages_added, 13);
        assert_eq!(report.page_swaps, 3);
    }

    #[test]
    fn repeated_allocations_accumulate_per_enclave() {
        let m = meter();
        let mut epc = Epc::new(100, false);
        epc.allocate(7, 10, &m).unwrap();
        epc.allocate(7, 5, &m).unwrap();
        assert_eq!(epc.pages_of(7), 15);
    }
}
