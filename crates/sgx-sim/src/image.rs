//! Enclave images: the measured pages, signer identity, and attributes that
//! define what an enclave *is* before it is instantiated on a platform.
//!
//! In real SGX the image is an ELF-like binary plus a SIGSTRUCT produced by
//! the enclave author. In the simulator, the "code" of an enclave is a
//! canonical descriptor byte string supplied by the program (for the Glimmer,
//! this is the serialized program descriptor: component list, predicate
//! configuration, declared declassifiers). The descriptor plays the role the
//! binary plays on hardware: it is what gets measured, published, and vetted.

use crate::epc::PAGE_SIZE;
use crate::measurement::{Measurement, MeasurementBuilder};

/// The type of an enclave page (subset of the SGX page types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageType {
    /// SGX Enclave Control Structure page (one per enclave).
    Secs,
    /// Thread Control Structure page (one per supported thread).
    Tcs,
    /// Regular code/data page.
    Regular,
}

impl PageType {
    fn tag(self) -> u8 {
        match self {
            PageType::Secs => 0,
            PageType::Tcs => 1,
            PageType::Regular => 2,
        }
    }
}

/// One measured enclave page.
#[derive(Debug, Clone)]
pub struct Page {
    /// Offset of the page within the enclave's linear range.
    pub offset: usize,
    /// Page type.
    pub page_type: PageType,
    /// Page contents (up to [`PAGE_SIZE`] bytes; shorter pages are
    /// zero-padded conceptually and measured as given).
    pub content: Vec<u8>,
}

/// Enclave attributes carried into reports and quotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnclaveAttributes {
    /// Debug enclaves can be inspected by the host; production Glimmers must
    /// not set this (a debug Glimmer provides no input confidentiality).
    pub debug: bool,
    /// Product identifier assigned by the signer.
    pub isv_prod_id: u16,
    /// Security version number; bumped when vulnerabilities are fixed.
    pub isv_svn: u16,
}

impl Default for EnclaveAttributes {
    fn default() -> Self {
        EnclaveAttributes {
            debug: false,
            isv_prod_id: 1,
            isv_svn: 1,
        }
    }
}

impl EnclaveAttributes {
    /// Serializes attributes for inclusion in measured structures.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; 5] {
        let mut out = [0u8; 5];
        out[0] = u8::from(self.debug);
        out[1..3].copy_from_slice(&self.isv_prod_id.to_le_bytes());
        out[3..5].copy_from_slice(&self.isv_svn.to_le_bytes());
        out
    }
}

/// A buildable enclave image: pages + signer + attributes.
#[derive(Debug, Clone)]
pub struct EnclaveImage {
    pages: Vec<Page>,
    signer: Measurement,
    attributes: EnclaveAttributes,
    heap_pages: usize,
    threads: usize,
}

impl EnclaveImage {
    /// Builds an image from a code descriptor.
    ///
    /// The descriptor is split into page-sized chunks and measured as regular
    /// pages, preceded by one SECS page and one TCS page per thread.
    /// `heap_pages` unmeasured heap pages are reserved in the EPC but do not
    /// affect MRENCLAVE (matching SGX, where heap is added as zero pages).
    #[must_use]
    pub fn from_code(
        code_descriptor: &[u8],
        signer: Measurement,
        attributes: EnclaveAttributes,
        heap_pages: usize,
        threads: usize,
    ) -> Self {
        let threads = threads.max(1);
        let mut pages = Vec::new();
        pages.push(Page {
            offset: 0,
            page_type: PageType::Secs,
            content: attributes.to_bytes().to_vec(),
        });
        for t in 0..threads {
            pages.push(Page {
                offset: PAGE_SIZE * (1 + t),
                page_type: PageType::Tcs,
                content: (t as u64).to_le_bytes().to_vec(),
            });
        }
        let code_base = PAGE_SIZE * (1 + threads);
        if code_descriptor.is_empty() {
            pages.push(Page {
                offset: code_base,
                page_type: PageType::Regular,
                content: Vec::new(),
            });
        } else {
            for (i, chunk) in code_descriptor.chunks(PAGE_SIZE).enumerate() {
                pages.push(Page {
                    offset: code_base + i * PAGE_SIZE,
                    page_type: PageType::Regular,
                    content: chunk.to_vec(),
                });
            }
        }
        EnclaveImage {
            pages,
            signer,
            attributes,
            heap_pages,
            threads,
        }
    }

    /// The measured pages.
    #[must_use]
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// Signer identity (MRSIGNER).
    #[must_use]
    pub fn signer(&self) -> Measurement {
        self.signer
    }

    /// Enclave attributes.
    #[must_use]
    pub fn attributes(&self) -> EnclaveAttributes {
        self.attributes
    }

    /// Total EPC pages this image needs (measured pages + heap).
    #[must_use]
    pub fn total_pages(&self) -> usize {
        self.pages.len() + self.heap_pages
    }

    /// Number of supported threads (TCS pages).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Computes the MRENCLAVE measurement of this image.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        let mut builder = MeasurementBuilder::new();
        for page in &self.pages {
            builder.add_page(page.offset, page.page_type.tag(), &page.content);
        }
        builder.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signer() -> Measurement {
        Measurement::of_bytes(b"vetting-org-signing-key")
    }

    #[test]
    fn image_layout() {
        let code = vec![0xABu8; PAGE_SIZE * 2 + 100];
        let image = EnclaveImage::from_code(&code, signer(), EnclaveAttributes::default(), 4, 2);
        // 1 SECS + 2 TCS + 3 code pages.
        assert_eq!(image.pages().len(), 6);
        assert_eq!(image.total_pages(), 10);
        assert_eq!(image.threads(), 2);
        assert_eq!(image.pages()[0].page_type, PageType::Secs);
        assert_eq!(image.pages()[1].page_type, PageType::Tcs);
        assert_eq!(image.pages()[3].page_type, PageType::Regular);
        assert_eq!(image.signer(), signer());
    }

    #[test]
    fn empty_code_still_has_a_regular_page() {
        let image = EnclaveImage::from_code(b"", signer(), EnclaveAttributes::default(), 0, 0);
        // Thread count is clamped to 1.
        assert_eq!(image.threads(), 1);
        assert!(image
            .pages()
            .iter()
            .any(|p| p.page_type == PageType::Regular));
    }

    #[test]
    fn measurement_depends_on_code_and_attributes() {
        let base =
            EnclaveImage::from_code(b"glimmer-v1", signer(), EnclaveAttributes::default(), 2, 1);
        let same =
            EnclaveImage::from_code(b"glimmer-v1", signer(), EnclaveAttributes::default(), 2, 1);
        assert_eq!(base.measurement(), same.measurement());

        let different_code =
            EnclaveImage::from_code(b"glimmer-v2", signer(), EnclaveAttributes::default(), 2, 1);
        assert_ne!(base.measurement(), different_code.measurement());

        let debug_attrs = EnclaveAttributes {
            debug: true,
            ..EnclaveAttributes::default()
        };
        let debug_image = EnclaveImage::from_code(b"glimmer-v1", signer(), debug_attrs, 2, 1);
        assert_ne!(base.measurement(), debug_image.measurement());

        // Heap pages are not measured (they start as zero pages).
        let more_heap =
            EnclaveImage::from_code(b"glimmer-v1", signer(), EnclaveAttributes::default(), 8, 1);
        assert_eq!(base.measurement(), more_heap.measurement());

        // Thread count is measured (extra TCS page).
        let more_threads =
            EnclaveImage::from_code(b"glimmer-v1", signer(), EnclaveAttributes::default(), 2, 2);
        assert_ne!(base.measurement(), more_threads.measurement());
    }

    #[test]
    fn attribute_bytes() {
        let attrs = EnclaveAttributes {
            debug: true,
            isv_prod_id: 0x0102,
            isv_svn: 0x0304,
        };
        assert_eq!(attrs.to_bytes(), [1, 0x02, 0x01, 0x04, 0x03]);
    }
}
