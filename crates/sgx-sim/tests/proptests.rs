//! Property-based tests for the SGX simulator: sealing isolation,
//! measurement sensitivity, and attestation structure round trips.

use glimmer_crypto::drbg::Drbg;
use proptest::prelude::*;
use sgx_sim::attestation::{Quote, QuoteBody, Report, ReportBody, TargetInfo, REPORT_DATA_LEN};
use sgx_sim::sealing::{seal, unseal, SealerIdentity};
use sgx_sim::{EnclaveAttributes, EnclaveImage, Measurement, PlatformId, SealPolicy, SealedBlob};

fn identity(code: &[u8], signer: &[u8]) -> SealerIdentity {
    SealerIdentity {
        measurement: Measurement::of_bytes(code),
        signer: Measurement::of_bytes(signer),
        attributes: EnclaveAttributes::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn sealed_blobs_round_trip_and_stay_sealed(
        platform_secret in any::<[u8; 32]>(),
        other_secret in any::<[u8; 32]>(),
        code in proptest::collection::vec(any::<u8>(), 1..32),
        plaintext in proptest::collection::vec(any::<u8>(), 0..128),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
        key_id in any::<[u8; 16]>(),
        nonce in any::<[u8; 12]>(),
    ) {
        prop_assume!(platform_secret != other_secret);
        let sealer = identity(&code, b"signer");
        let blob = seal(&platform_secret, SealPolicy::MrEnclave, &sealer, key_id, nonce, &aad, &plaintext);
        // Serialization round trip.
        let parsed = SealedBlob::from_bytes(&blob.to_bytes()).unwrap();
        prop_assert_eq!(&parsed, &blob);
        // The same identity on the same platform unseals.
        prop_assert_eq!(unseal(&platform_secret, &sealer, &parsed).unwrap(), plaintext);
        // A different platform never unseals.
        prop_assert!(unseal(&other_secret, &sealer, &blob).is_err());
        // A different enclave measurement never unseals under MrEnclave.
        let mut other_code = code.clone();
        other_code[0] ^= 1;
        let other = identity(&other_code, b"signer");
        prop_assert!(unseal(&platform_secret, &other, &blob).is_err());
    }

    #[test]
    fn measurement_is_sensitive_to_every_code_byte(
        code in proptest::collection::vec(any::<u8>(), 1..256),
        flip in any::<usize>(),
    ) {
        let signer = Measurement::of_bytes(b"vetting");
        let attrs = EnclaveAttributes::default();
        let image = EnclaveImage::from_code(&code, signer, attrs, 4, 1);
        let mut mutated = code.clone();
        let idx = flip % mutated.len();
        mutated[idx] ^= 0x01;
        let other = EnclaveImage::from_code(&mutated, signer, attrs, 4, 1);
        prop_assert_ne!(image.measurement(), other.measurement());
        // Measurement is deterministic.
        let again = EnclaveImage::from_code(&code, signer, attrs, 4, 1);
        prop_assert_eq!(image.measurement(), again.measurement());
    }

    #[test]
    fn reports_and_quotes_round_trip_and_resist_forgery(
        report_secret in any::<[u8; 32]>(),
        attestation_key in any::<[u8; 32]>(),
        wrong_key in any::<[u8; 32]>(),
        code in proptest::collection::vec(any::<u8>(), 1..32),
        report_data_prefix in proptest::collection::vec(any::<u8>(), 0..REPORT_DATA_LEN),
        platform in any::<[u8; 16]>(),
        tcb in any::<u16>(),
    ) {
        prop_assume!(attestation_key != wrong_key);
        let mut report_data = [0u8; REPORT_DATA_LEN];
        report_data[..report_data_prefix.len()].copy_from_slice(&report_data_prefix);
        let target = TargetInfo { measurement: Measurement::of_bytes(b"qe") };
        let body = ReportBody {
            platform_id: PlatformId(platform),
            measurement: Measurement::of_bytes(&code),
            signer: Measurement::of_bytes(b"signer"),
            attributes: EnclaveAttributes::default(),
            report_data,
        };
        let report = Report::create(&report_secret, body.clone(), &target);
        let parsed = Report::from_bytes(&report.to_bytes()).unwrap();
        prop_assert_eq!(&parsed, &report);
        prop_assert!(parsed.verify(&report_secret, &target.measurement));
        prop_assert!(!parsed.verify(&report_secret, &Measurement::of_bytes(b"other")));

        let quote = Quote::create(&attestation_key, QuoteBody { report: body, platform_tcb_svn: tcb });
        let parsed_quote = Quote::from_bytes(&quote.to_bytes()).unwrap();
        prop_assert_eq!(&parsed_quote, &quote);
        // A quote signed with the wrong key differs.
        let forged = Quote::create(&wrong_key, parsed_quote.body.clone());
        prop_assert_ne!(forged.to_bytes(), quote.to_bytes());
    }

    #[test]
    fn heap_pages_never_change_identity(heap_a in 0usize..64, heap_b in 0usize..64, code in proptest::collection::vec(any::<u8>(), 1..64)) {
        let signer = Measurement::of_bytes(b"vetting");
        let a = EnclaveImage::from_code(&code, signer, EnclaveAttributes::default(), heap_a, 1);
        let b = EnclaveImage::from_code(&code, signer, EnclaveAttributes::default(), heap_b, 1);
        prop_assert_eq!(a.measurement(), b.measurement());
        prop_assert_eq!(a.total_pages() as i64 - b.total_pages() as i64, heap_a as i64 - heap_b as i64);
    }

    #[test]
    fn platform_rng_seeds_do_not_collide(seed_a in any::<[u8; 32]>(), seed_b in any::<[u8; 32]>()) {
        prop_assume!(seed_a != seed_b);
        let a = sgx_sim::Platform::new(sgx_sim::PlatformConfig::default(), &mut Drbg::from_seed(seed_a));
        let b = sgx_sim::Platform::new(sgx_sim::PlatformConfig::default(), &mut Drbg::from_seed(seed_b));
        prop_assert_ne!(a.id(), b.id());
    }
}
