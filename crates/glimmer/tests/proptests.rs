//! Property-based tests for the Glimmer core: protocol round trips, the
//! blinding zero-sum invariant, and auditor output bounds.

use glimmer_core::auditor::OutputAuditor;
use glimmer_core::blinding::BlindingService;
use glimmer_core::confidential::BotVerdict;
use glimmer_core::protocol::{
    frame_type, Contribution, ContributionPayload, EndorsedContribution, PrivateData,
};
use glimmer_core::validation::{PredicateSpec, RangeCheck, ValidationPredicate};
use glimmer_federated::fixed::{add_vectors, decode_weights, encode_weights};
use glimmer_wire::{Frame, WireCodec};
use proptest::prelude::*;

fn arb_payload() -> impl Strategy<Value = ContributionPayload> {
    prop_oneof![
        proptest::collection::vec(-2.0f64..2.0, 0..32)
            .prop_map(|weights| ContributionPayload::ModelUpdate { weights }),
        (any::<[u8; 32]>(), -90.0f64..90.0, -180.0f64..180.0).prop_map(
            |(photo_hash, claimed_lat, claimed_lon)| ContributionPayload::Photo {
                photo_hash,
                claimed_lat,
                claimed_lon,
            }
        ),
        proptest::collection::vec(0.0f64..1.0, 0..16)
            .prop_map(|samples| ContributionPayload::IotReadings { samples }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn contribution_wire_round_trip(
        app_id in "[a-z.]{1,20}",
        client_id in any::<u64>(),
        round in any::<u64>(),
        payload in arb_payload(),
    ) {
        let contribution = Contribution { app_id, client_id, round, payload };
        let decoded = Contribution::from_wire(&contribution.to_wire()).unwrap();
        prop_assert_eq!(decoded, contribution);
    }

    #[test]
    fn endorsement_wire_round_trip_and_binding(
        client_id in any::<u64>(),
        round in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        blinded in any::<bool>(),
        signature in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let endorsed = EndorsedContribution {
            app_id: "app".to_string(),
            client_id,
            round,
            released_payload: payload,
            blinded,
            signature,
        };
        prop_assert_eq!(
            EndorsedContribution::from_wire(&endorsed.to_wire()).unwrap(),
            endorsed.clone()
        );
        // The signed bytes change whenever the round changes.
        let mut other = endorsed.clone();
        other.round = endorsed.round.wrapping_add(1);
        prop_assert_ne!(endorsed.signed_bytes(), other.signed_bytes());
    }

    #[test]
    fn zero_sum_masks_always_cancel(
        clients in proptest::collection::vec(any::<u64>(), 1..12),
        dimension in 0usize..64,
        round in any::<u64>(),
        seed in any::<[u8; 32]>(),
    ) {
        let mut unique = clients.clone();
        unique.sort_unstable();
        unique.dedup();
        let masks = BlindingService::new(seed).zero_sum_masks(round, &unique, dimension);
        let mut sum = vec![0u64; dimension];
        for m in &masks {
            sum = add_vectors(&sum, &m.mask);
        }
        prop_assert!(sum.iter().all(|&v| v == 0));
    }

    #[test]
    fn blinded_aggregation_is_exact(
        weights in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 8),
            1..8
        ),
        seed in any::<[u8; 32]>(),
    ) {
        let clients: Vec<u64> = (0..weights.len() as u64).collect();
        let masks = BlindingService::new(seed).zero_sum_masks(0, &clients, 8);
        let mut blinded_sum = vec![0u64; 8];
        let mut plain_sum = [0.0f64; 8];
        for (w, m) in weights.iter().zip(&masks) {
            blinded_sum = add_vectors(&blinded_sum, &m.blind(&encode_weights(w)));
            for (p, v) in plain_sum.iter_mut().zip(w) {
                *p += v;
            }
        }
        let decoded = decode_weights(&blinded_sum);
        for (a, b) in decoded.iter().zip(plain_sum.iter()) {
            prop_assert!((a - b).abs() < 1e-5, "{} vs {}", a, b);
        }
    }

    #[test]
    fn range_check_never_passes_out_of_range_model_updates(
        weights in proptest::collection::vec(-10.0f64..10.0, 1..32),
    ) {
        let predicate = RangeCheck::default();
        let contribution = Contribution {
            app_id: "app".to_string(),
            client_id: 0,
            round: 0,
            payload: ContributionPayload::ModelUpdate { weights: weights.clone() },
        };
        let verdict = predicate.validate(&contribution, &PrivateData::None);
        let all_in_range = weights.iter().all(|w| (0.0..=1.0).contains(w));
        prop_assert_eq!(verdict.passed, all_in_range);
    }

    #[test]
    fn predicate_specs_round_trip(min in -1.0f64..1.0, max in 1.0f64..10.0, tol in 0.0f64..1.0) {
        let specs = vec![
            PredicateSpec::RangeCheck { min, max },
            PredicateSpec::KeyboardCorroboration { tolerance: tol, min_support: 0.5 },
            PredicateSpec::AllOf(vec![
                PredicateSpec::Plausibility,
                PredicateSpec::RetrainCheck { tolerance: tol },
            ]),
        ];
        for spec in specs {
            prop_assert_eq!(PredicateSpec::from_wire(&spec.to_wire()).unwrap(), spec);
        }
    }

    #[test]
    fn auditor_never_exceeds_its_bit_budget(
        budget in 0u64..16,
        attempts in 0usize..40,
        mac_key in any::<[u8; 32]>(),
    ) {
        let mut auditor = OutputAuditor::new(budget);
        let mut released = 0u64;
        for i in 0..attempts {
            let verdict = BotVerdict::new([i as u8; 32], i % 2 == 0, &mac_key);
            if auditor.audit(&verdict.to_frame()).is_ok() {
                released += 1;
            }
        }
        prop_assert!(released <= budget);
        prop_assert_eq!(auditor.verdict_bits_released(), released);
        prop_assert_eq!(auditor.channel_capacity_bound_bits(), budget);
    }

    #[test]
    fn auditor_rejects_frames_with_extra_bytes(
        extra in proptest::collection::vec(any::<u8>(), 1..32),
        mac_key in any::<[u8; 32]>(),
    ) {
        let mut auditor = OutputAuditor::new(1000);
        let mut frame = BotVerdict::new([1u8; 32], true, &mac_key).to_frame();
        frame.payload.extend_from_slice(&extra);
        prop_assert!(auditor.audit(&frame).is_err());
        // Unknown frame types are always rejected regardless of payload.
        let unknown = Frame::new(40_000 + (extra[0] as u16), extra.clone());
        prop_assert!(auditor.audit(&unknown).is_err());
        // Well-formed endorsement frames still pass afterwards.
        let endorsed = EndorsedContribution {
            app_id: "a".into(),
            client_id: 0,
            round: 0,
            released_payload: extra,
            blinded: true,
            signature: vec![],
        };
        prop_assert!(auditor
            .audit(&Frame::new(frame_type::ENDORSED_CONTRIBUTION, endorsed.to_wire()))
            .is_ok());
    }
}
