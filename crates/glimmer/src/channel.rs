//! The attested secure channel between the service and the Glimmer.
//!
//! Section 4.1: "This can be accomplished using remote attestation, which
//! enables data, such as Diffie-Hellman (DH) handshake values, to be bound to
//! code running in an enclave. This would assert to the service that the DH
//! handshake is occurring with a legitimate Glimmer. Similarly, the Glimmer
//! would need to ensure that the DH handshake is occurring with a legitimate
//! service, which can be accomplished by the service signing its DH handshake
//! values and embedding the signature verification key in the Glimmer code."
//!
//! The channel is established in two messages:
//!
//! 1. [`ChannelOffer`] (Glimmer → service): the Glimmer's ephemeral DH public
//!    value plus an SGX quote whose report data binds a hash of that value
//!    and the application id.
//! 2. [`ChannelAccept`] (service → Glimmer): the service's ephemeral DH public
//!    value, signed (together with the Glimmer's value) by the service
//!    identity key that is embedded in the Glimmer descriptor.
//!
//! Both sides then derive directional AEAD keys and a shared MAC key.

use crate::{GlimmerError, Result};
use glimmer_crypto::aead::AeadKey;
use glimmer_crypto::dh::{DhGroup, DhKeyPair, DhPublic};
use glimmer_crypto::drbg::Drbg;
use glimmer_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use glimmer_crypto::sha256::sha256_concat;
use glimmer_wire::{Decoder, Encoder, WireCodec, WireError};
use sgx_sim::{AttestationService, Measurement, Quote};

/// Error alias used by channel operations.
pub type ChannelError = GlimmerError;

/// The Glimmer's opening handshake message.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelOffer {
    /// Application id the channel is for.
    pub app_id: String,
    /// The Glimmer's ephemeral DH public value.
    pub glimmer_dh_public: Vec<u8>,
    /// Serialized SGX quote binding `sha256(glimmer_dh_public || app_id)` in
    /// its report data.
    pub quote: Vec<u8>,
}

impl WireCodec for ChannelOffer {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.app_id);
        enc.put_bytes(&self.glimmer_dh_public);
        enc.put_bytes(&self.quote);
    }

    fn decode(dec: &mut Decoder<'_>) -> core::result::Result<Self, WireError> {
        Ok(ChannelOffer {
            app_id: dec.get_str()?,
            glimmer_dh_public: dec.get_bytes()?,
            quote: dec.get_bytes()?,
        })
    }
}

/// The service's handshake response.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelAccept {
    /// The service's ephemeral DH public value.
    pub service_dh_public: Vec<u8>,
    /// Service signature over the handshake transcript.
    pub signature: Vec<u8>,
}

impl WireCodec for ChannelAccept {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(&self.service_dh_public);
        enc.put_bytes(&self.signature);
    }

    fn decode(dec: &mut Decoder<'_>) -> core::result::Result<Self, WireError> {
        Ok(ChannelAccept {
            service_dh_public: dec.get_bytes()?,
            signature: dec.get_bytes()?,
        })
    }
}

/// The symmetric keys both ends hold once the channel is up.
#[derive(Clone)]
pub struct ChannelKeys {
    /// AEAD key for service → Glimmer messages (encrypted predicates).
    pub service_to_glimmer: AeadKey,
    /// AEAD key for Glimmer → service messages.
    pub glimmer_to_service: AeadKey,
    /// MAC key for verdict authentication.
    pub mac_key: [u8; 32],
}

/// Byte length of a [`ChannelKeys::export_bytes`] encoding.
pub const CHANNEL_KEYS_EXPORT_LEN: usize = 64 + 64 + 32;

impl ChannelKeys {
    /// Exports the working key material (160 bytes) for sealed persistence.
    ///
    /// The DH secrets the keys were derived from are ephemeral and erased
    /// after the handshake, so a checkpointed enclave can only persist the
    /// *derived* keys. The export must go straight into a sealed blob — it
    /// is exactly the session's channel security.
    #[must_use]
    pub fn export_bytes(&self) -> [u8; CHANNEL_KEYS_EXPORT_LEN] {
        let mut out = [0u8; CHANNEL_KEYS_EXPORT_LEN];
        out[..64].copy_from_slice(&self.service_to_glimmer.export_bytes());
        out[64..128].copy_from_slice(&self.glimmer_to_service.export_bytes());
        out[128..].copy_from_slice(&self.mac_key);
        out
    }

    /// Rebuilds channel keys from [`ChannelKeys::export_bytes`] output
    /// (the unseal side of a checkpoint restore).
    pub fn from_export(bytes: &[u8]) -> Result<Self> {
        if bytes.len() != CHANNEL_KEYS_EXPORT_LEN {
            return Err(GlimmerError::Protocol("channel key export length"));
        }
        let mut s2g = [0u8; 64];
        let mut g2s = [0u8; 64];
        let mut mac_key = [0u8; 32];
        s2g.copy_from_slice(&bytes[..64]);
        g2s.copy_from_slice(&bytes[64..128]);
        mac_key.copy_from_slice(&bytes[128..]);
        Ok(ChannelKeys {
            service_to_glimmer: AeadKey::from_export(&s2g),
            glimmer_to_service: AeadKey::from_export(&g2s),
            mac_key,
        })
    }
}

/// Binds the Glimmer DH public value and app id into 64 bytes of report data.
#[must_use]
pub fn report_data_for(glimmer_dh_public: &[u8], app_id: &str) -> [u8; 64] {
    let digest = sha256_concat(&[b"glimmer-channel-v1", glimmer_dh_public, app_id.as_bytes()]);
    let mut out = [0u8; 64];
    out[..32].copy_from_slice(&digest);
    out
}

fn transcript(app_id: &str, glimmer_pub: &[u8], service_pub: &[u8]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_str("glimmer-channel-transcript-v1");
    enc.put_str(app_id);
    enc.put_bytes(glimmer_pub);
    enc.put_bytes(service_pub);
    enc.into_bytes()
}

fn derive_channel_keys(keypair: &DhKeyPair, peer: &DhPublic, app_id: &str) -> Result<ChannelKeys> {
    let material =
        keypair.derive_shared_key(peer, format!("glimmer-channel:{app_id}").as_bytes(), 96)?;
    let mut s2g = [0u8; 32];
    let mut g2s = [0u8; 32];
    let mut mac = [0u8; 32];
    s2g.copy_from_slice(&material[..32]);
    g2s.copy_from_slice(&material[32..64]);
    mac.copy_from_slice(&material[64..]);
    Ok(ChannelKeys {
        service_to_glimmer: AeadKey::from_master(&s2g),
        glimmer_to_service: AeadKey::from_master(&g2s),
        mac_key: mac,
    })
}

/// The Glimmer-side handshake state (lives inside the enclave).
pub struct GlimmerChannel {
    app_id: String,
    keypair: DhKeyPair,
}

impl GlimmerChannel {
    /// Starts a handshake: generates the ephemeral key pair.
    pub fn start(app_id: &str, rng: &mut Drbg) -> Result<Self> {
        let keypair = DhKeyPair::generate(DhGroup::default_group(), rng)?;
        Ok(GlimmerChannel {
            app_id: app_id.to_string(),
            keypair,
        })
    }

    /// The DH public value to place in the offer.
    #[must_use]
    pub fn public_bytes(&self) -> Vec<u8> {
        self.keypair.public().to_bytes(self.keypair.group())
    }

    /// The report data to bind into the attestation report.
    #[must_use]
    pub fn report_data(&self) -> [u8; 64] {
        report_data_for(&self.public_bytes(), &self.app_id)
    }

    /// Completes the handshake *without* authenticating the peer.
    ///
    /// Used by glimmer-as-a-service (Section 4.2), where the IoT device
    /// authenticates the Glimmer through attestation but the Glimmer does not
    /// need to know who the device is: "the client device needs to establish
    /// that it is sending its private data to a genuine Glimmer". The
    /// resulting channel still provides confidentiality and integrity against
    /// the untrusted remote host.
    pub fn complete_unauthenticated(self, accept: &ChannelAccept) -> Result<ChannelKeys> {
        let peer = DhPublic::from_bytes(self.keypair.group(), &accept.service_dh_public)?;
        derive_channel_keys(&self.keypair, &peer, &self.app_id)
    }

    /// Completes the handshake with the service's response, verifying the
    /// service signature against the key embedded in the Glimmer descriptor.
    pub fn complete(
        self,
        accept: &ChannelAccept,
        service_verifying_key: &VerifyingKey,
    ) -> Result<ChannelKeys> {
        let (_, signature) = Signature::from_bytes(&accept.signature)?;
        let transcript = transcript(
            &self.app_id,
            &self.public_bytes(),
            &accept.service_dh_public,
        );
        service_verifying_key
            .verify(&transcript, &signature)
            .map_err(|_| {
                GlimmerError::Channel("service handshake signature invalid".to_string())
            })?;
        let peer = DhPublic::from_bytes(self.keypair.group(), &accept.service_dh_public)?;
        derive_channel_keys(&self.keypair, &peer, &self.app_id)
    }
}

/// The service-side view of an established attested channel.
pub struct AttestedChannel {
    /// The keys shared with the attested Glimmer.
    pub keys: ChannelKeys,
    /// The attested Glimmer measurement (as vouched for by the AVS).
    pub glimmer_measurement: Measurement,
    /// The platform the Glimmer runs on.
    pub platform_id: sgx_sim::PlatformId,
}

impl AttestedChannel {
    /// Service-side handshake: verifies the offer's quote against the
    /// attestation service and the approved Glimmer measurement, checks the
    /// binding between the quote and the DH value, and produces the signed
    /// response plus the shared keys.
    pub fn respond(
        offer: &ChannelOffer,
        avs: &AttestationService,
        approved_measurement: &Measurement,
        service_signing_key: &SigningKey,
        rng: &mut Drbg,
    ) -> Result<(ChannelAccept, AttestedChannel)> {
        let quote = Quote::from_bytes(&offer.quote).map_err(GlimmerError::from)?;
        let report = avs
            .verify_expecting(&quote, approved_measurement)
            .map_err(GlimmerError::from)?;
        let expected = report_data_for(&offer.glimmer_dh_public, &offer.app_id);
        if report.report_data != expected {
            return Err(GlimmerError::Channel(
                "quote does not bind the offered DH value".to_string(),
            ));
        }

        let keypair = DhKeyPair::generate(DhGroup::default_group(), rng)?;
        let service_pub = keypair.public().to_bytes(keypair.group());
        let transcript = transcript(&offer.app_id, &offer.glimmer_dh_public, &service_pub);
        let signature = service_signing_key
            .sign(&transcript)?
            .to_bytes(service_signing_key.group());

        let glimmer_pub = DhPublic::from_bytes(keypair.group(), &offer.glimmer_dh_public)?;
        let keys = derive_channel_keys(&keypair, &glimmer_pub, &offer.app_id)?;
        Ok((
            ChannelAccept {
                service_dh_public: service_pub,
                signature,
            },
            AttestedChannel {
                keys,
                glimmer_measurement: report.measurement,
                platform_id: report.platform_id,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::attestation::{QuoteBody, ReportBody};
    use sgx_sim::{EnclaveAttributes, PlatformId};

    struct Setup {
        avs: AttestationService,
        platform_key: [u8; 32],
        platform_id: PlatformId,
        glimmer_measurement: Measurement,
        service_key: SigningKey,
        rng: Drbg,
    }

    fn setup() -> Setup {
        let mut avs = AttestationService::new([9u8; 32]);
        let platform_id = PlatformId([4u8; 16]);
        let platform_key = avs.provision(platform_id, 2);
        let mut rng = Drbg::from_seed([8u8; 32]);
        let service_key = SigningKey::generate(DhGroup::default_group(), &mut rng).unwrap();
        Setup {
            avs,
            platform_key,
            platform_id,
            glimmer_measurement: Measurement::of_bytes(b"approved glimmer"),
            service_key,
            rng,
        }
    }

    /// Builds a quote the way the platform's quoting enclave would, for a
    /// Glimmer that bound `report_data`.
    fn make_quote(s: &Setup, report_data: [u8; 64]) -> Vec<u8> {
        let body = QuoteBody {
            report: ReportBody {
                platform_id: s.platform_id,
                measurement: s.glimmer_measurement,
                signer: Measurement::of_bytes(b"eff"),
                attributes: EnclaveAttributes::default(),
                report_data,
            },
            platform_tcb_svn: 2,
        };
        Quote::create(&s.platform_key, body).to_bytes()
    }

    #[test]
    fn full_handshake_derives_matching_keys() {
        let mut s = setup();
        let mut glimmer_rng = Drbg::from_seed([77u8; 32]);
        let glimmer = GlimmerChannel::start("botcheck", &mut glimmer_rng).unwrap();
        let offer = ChannelOffer {
            app_id: "botcheck".to_string(),
            glimmer_dh_public: glimmer.public_bytes(),
            quote: make_quote(&s, glimmer.report_data()),
        };
        // Offer survives the wire.
        let offer = ChannelOffer::from_wire(&offer.to_wire()).unwrap();

        let (accept, service_channel) = AttestedChannel::respond(
            &offer,
            &s.avs,
            &s.glimmer_measurement,
            &s.service_key,
            &mut s.rng,
        )
        .unwrap();
        let accept = ChannelAccept::from_wire(&accept.to_wire()).unwrap();

        let glimmer_keys = glimmer
            .complete(&accept, s.service_key.verifying_key())
            .unwrap();

        // Both directions agree: what the service encrypts, the glimmer opens.
        let nonce = [1u8; 12];
        let ct =
            service_channel
                .keys
                .service_to_glimmer
                .seal(&nonce, b"predicate", b"secret detector");
        assert_eq!(
            glimmer_keys
                .service_to_glimmer
                .open(&nonce, b"predicate", &ct)
                .unwrap(),
            b"secret detector"
        );
        let ct = glimmer_keys
            .glimmer_to_service
            .seal(&nonce, b"verdict", b"\x01");
        assert_eq!(
            service_channel
                .keys
                .glimmer_to_service
                .open(&nonce, b"verdict", &ct)
                .unwrap(),
            b"\x01"
        );
        assert_eq!(glimmer_keys.mac_key, service_channel.keys.mac_key);
        assert_eq!(service_channel.glimmer_measurement, s.glimmer_measurement);
        assert_eq!(service_channel.platform_id, s.platform_id);
    }

    #[test]
    fn service_rejects_wrong_measurement_and_unbound_quotes() {
        let mut s = setup();
        let mut glimmer_rng = Drbg::from_seed([78u8; 32]);
        let glimmer = GlimmerChannel::start("botcheck", &mut glimmer_rng).unwrap();
        let offer = ChannelOffer {
            app_id: "botcheck".to_string(),
            glimmer_dh_public: glimmer.public_bytes(),
            quote: make_quote(&s, glimmer.report_data()),
        };

        // Wrong approved measurement.
        assert!(AttestedChannel::respond(
            &offer,
            &s.avs,
            &Measurement::of_bytes(b"some other enclave"),
            &s.service_key,
            &mut s.rng,
        )
        .is_err());

        // Quote that does not bind the DH value (malicious host swapped keys).
        let mut other_rng = Drbg::from_seed([79u8; 32]);
        let mitm = GlimmerChannel::start("botcheck", &mut other_rng).unwrap();
        let swapped = ChannelOffer {
            app_id: "botcheck".to_string(),
            glimmer_dh_public: mitm.public_bytes(),
            quote: make_quote(&s, glimmer.report_data()),
        };
        let err = AttestedChannel::respond(
            &swapped,
            &s.avs,
            &s.glimmer_measurement,
            &s.service_key,
            &mut s.rng,
        );
        assert!(matches!(err, Err(GlimmerError::Channel(_))));

        // Garbage quote bytes.
        let garbage = ChannelOffer {
            quote: vec![1, 2, 3],
            ..offer
        };
        assert!(AttestedChannel::respond(
            &garbage,
            &s.avs,
            &s.glimmer_measurement,
            &s.service_key,
            &mut s.rng,
        )
        .is_err());
    }

    #[test]
    fn glimmer_rejects_forged_service_response() {
        let mut s = setup();
        let mut glimmer_rng = Drbg::from_seed([80u8; 32]);
        let glimmer = GlimmerChannel::start("botcheck", &mut glimmer_rng).unwrap();
        let offer = ChannelOffer {
            app_id: "botcheck".to_string(),
            glimmer_dh_public: glimmer.public_bytes(),
            quote: make_quote(&s, glimmer.report_data()),
        };
        // A man-in-the-middle "service" with its own key responds.
        let rogue_key = SigningKey::generate(DhGroup::default_group(), &mut s.rng).unwrap();
        let (rogue_accept, _) = AttestedChannel::respond(
            &offer,
            &s.avs,
            &s.glimmer_measurement,
            &rogue_key,
            &mut s.rng,
        )
        .unwrap();
        // The Glimmer checks against the embedded legitimate service key.
        assert!(glimmer
            .complete(&rogue_accept, s.service_key.verifying_key())
            .is_err());
    }

    #[test]
    fn report_data_binding_is_input_sensitive() {
        let a = report_data_for(b"dh-public-A", "app");
        let b = report_data_for(b"dh-public-B", "app");
        let c = report_data_for(b"dh-public-A", "other-app");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(&a[32..], &[0u8; 32]);
    }
}
