//! The Glimmer enclave program (Figure 3).
//!
//! This is the code that runs *inside* the (simulated) SGX enclave on the
//! client device. It wires the three components of the paper's design —
//! Validation, Blinding, Signing — behind a handful of ECALLs, plus the
//! Section 4.1 extensions (attested channel, encrypted predicate, audited
//! 1-bit verdicts). Everything in this file is part of the trusted computing
//! base accounted for in Experiment E10; it deliberately avoids OCALLs so the
//! Glimmer "runs mostly in isolation" as Section 3 requires.

use crate::auditor::OutputAuditor;
use crate::blinding::MaskShare;
use crate::channel::{ChannelAccept, ChannelKeys, GlimmerChannel};
use crate::confidential::{open_predicate, BotVerdict, EncryptedPredicate};
use crate::host::GlimmerDescriptor;
use crate::protocol::{
    ecall, BatchOutcome, BatchReplyItem, BatchRequestView, EndorsedContribution, PrivateData,
    ProcessRequest, ProcessResponse, SessionAcceptRequest, SessionMaskRequest, SessionOpenRequest,
};
use crate::signing::{sign_endorsement, signing_key_from_secret};
use crate::validation::{AllOf, BotDetector, ValidationPredicate};
use glimmer_crypto::drbg::Drbg;
use glimmer_crypto::schnorr::{SigningKey, VerifyingKey};
use glimmer_federated::fixed::encode_weights;
use glimmer_wire::{Decoder, Encoder, WireCodec, WireError};
use sgx_sim::{EnclaveEnv, EnclaveProgram, SealPolicy, SealedBlob, TargetInfo};
use std::collections::{HashMap, HashSet};

/// Product id carried in the Glimmer enclave's attributes.
pub const GLIMMER_ISV_PROD_ID: u16 = 0x6C17;

/// Most sessions a single Glimmer enclave will hold channels for at once
/// (bounds enclave memory; the gateway shards across pool slots well before
/// this).
pub const MAX_SESSIONS_PER_ENCLAVE: usize = 4096;

/// Most items accepted in one `PROCESS_BATCH` ECALL.
pub const MAX_BATCH_ITEMS: usize = 4096;

/// Most request nonces remembered per session for replay protection. A
/// session that submits more requests than this must be reopened (fresh
/// keys), which bounds enclave memory per session (~192 KiB worst case).
pub const MAX_NONCES_PER_SESSION: usize = 16_384;

/// Associated data under which the service signing key is sealed.
const SERVICE_KEY_AAD: &[u8] = b"glimmer-service-signing-key-v1";

/// Marker prefix the enclave puts on abort messages caused by rejected
/// sealed/encrypted input (AEAD authentication failures, AAD mismatches,
/// cross-identity unseals). Real SGX surfaces these as a distinct status
/// code; the simulator's ecall error channel is a string, so the host
/// runtime ([`crate::host::GlimmerClient`]) recognizes this marker and maps
/// the abort back to the typed [`sgx_sim::SgxError::UnsealDenied`].
pub const SEALED_REJECTED_MARKER: &str = "[sealed-rejected]";

/// Version tag leading every serialized enclave-state export; bumping it
/// makes older sealed exports fail import (closed) instead of misparsing.
const STATE_EXPORT_TAG: &str = "glimmer-enclave-state-v2";

/// Provisioning request: either fresh secret key bytes from the service, or a
/// previously exported sealed blob to restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvisionRequest {
    /// Fresh secret signing-key bytes (delivered at enrollment or over the
    /// attested channel).
    FreshKey(Vec<u8>),
    /// A sealed blob previously exported by this Glimmer on this platform.
    Sealed(Vec<u8>),
}

impl WireCodec for ProvisionRequest {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ProvisionRequest::FreshKey(bytes) => {
                enc.put_u8(0);
                enc.put_bytes(bytes);
            }
            ProvisionRequest::Sealed(bytes) => {
                enc.put_u8(1);
                enc.put_bytes(bytes);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.get_u8()? {
            0 => Ok(ProvisionRequest::FreshKey(dec.get_bytes()?)),
            1 => Ok(ProvisionRequest::Sealed(dec.get_bytes()?)),
            other => Err(WireError::InvalidBool(other)),
        }
    }
}

/// Mask installation request: plaintext (trusted delivery in simulations) or
/// encrypted under the attested channel's service→Glimmer key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaskDelivery {
    /// Plaintext mask share.
    Plain {
        /// The mask share.
        round: u64,
        /// Client the mask was issued to.
        client_id: u64,
        /// The additive mask values.
        mask: Vec<u64>,
    },
    /// AEAD-encrypted mask share (nonce plus ciphertext of the plain encoding).
    Encrypted {
        /// AEAD nonce.
        nonce: [u8; 12],
        /// Ciphertext+tag of a `Plain` encoding.
        ciphertext: Vec<u8>,
    },
}

impl MaskDelivery {
    /// Builds a plaintext delivery from a mask share.
    #[must_use]
    pub fn plain(share: &MaskShare) -> Self {
        MaskDelivery::Plain {
            round: share.round,
            client_id: share.client_id,
            mask: share.mask.clone(),
        }
    }

    /// Encrypts a mask share under a channel key (what the blinding service
    /// does after the attested handshake).
    #[must_use]
    pub fn encrypted(
        share: &MaskShare,
        key: &glimmer_crypto::aead::AeadKey,
        nonce: [u8; 12],
    ) -> Self {
        let plain = MaskDelivery::plain(share).to_wire();
        MaskDelivery::Encrypted {
            nonce,
            ciphertext: key.seal(&nonce, b"glimmer-mask-v1", &plain),
        }
    }
}

impl WireCodec for MaskDelivery {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            MaskDelivery::Plain {
                round,
                client_id,
                mask,
            } => {
                enc.put_u8(0);
                enc.put_u64(*round);
                enc.put_u64(*client_id);
                enc.put_u64_vec(mask);
            }
            MaskDelivery::Encrypted { nonce, ciphertext } => {
                enc.put_u8(1);
                enc.put_raw(nonce);
                enc.put_bytes(ciphertext);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.get_u8()? {
            0 => Ok(MaskDelivery::Plain {
                round: dec.get_u64()?,
                client_id: dec.get_u64()?,
                mask: dec.get_u64_vec()?,
            }),
            1 => {
                let raw = dec.get_raw(12)?;
                let mut nonce = [0u8; 12];
                nonce.copy_from_slice(&raw);
                Ok(MaskDelivery::Encrypted {
                    nonce,
                    ciphertext: dec.get_bytes()?,
                })
            }
            other => Err(WireError::InvalidBool(other)),
        }
    }
}

/// Request for a confidential bot check: the service challenge plus the
/// private signals collected on the client.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidentialCheckRequest {
    /// Challenge nonce from the service (replay protection).
    pub challenge: [u8; 32],
    /// Private interaction signals.
    pub private: PrivateData,
}

impl WireCodec for ConfidentialCheckRequest {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_array32(&self.challenge);
        self.private.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ConfidentialCheckRequest {
            challenge: dec.get_array32()?,
            private: PrivateData::decode(dec)?,
        })
    }
}

/// Status flags reported by the `STATUS` ECALL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlimmerStatus {
    /// A service signing key is installed.
    pub signing_key: bool,
    /// The attested channel is established.
    pub channel: bool,
    /// A confidential predicate is installed.
    pub confidential_predicate: bool,
    /// Number of blinding masks currently installed.
    pub masks: u32,
    /// Verdict bits released by the auditor so far.
    pub verdict_bits_released: u64,
    /// Number of established device sessions (gateway serving path).
    pub sessions: u32,
}

impl WireCodec for GlimmerStatus {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(self.signing_key);
        enc.put_bool(self.channel);
        enc.put_bool(self.confidential_predicate);
        enc.put_u32(self.masks);
        enc.put_u64(self.verdict_bits_released);
        enc.put_u32(self.sessions);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(GlimmerStatus {
            signing_key: dec.get_bool()?,
            channel: dec.get_bool()?,
            confidential_predicate: dec.get_bool()?,
            masks: dec.get_u32()?,
            verdict_bits_released: dec.get_u64()?,
            sessions: dec.get_u32()?,
        })
    }
}

/// Reply to the `CHANNEL_REPORT` ECALL: the Glimmer's DH public value and the
/// local-attestation report binding it (to be quoted by the host).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelReportReply {
    /// The Glimmer's ephemeral DH public value.
    pub dh_public: Vec<u8>,
    /// Serialized report targeted at the quoting enclave.
    pub report: Vec<u8>,
}

impl WireCodec for ChannelReportReply {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(&self.dh_public);
        enc.put_bytes(&self.report);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ChannelReportReply {
            dh_public: dec.get_bytes()?,
            report: dec.get_bytes()?,
        })
    }
}

/// The Glimmer enclave program.
pub struct GlimmerEnclaveProgram {
    app_id: String,
    predicate: AllOf,
    service_verifying_key: Option<VerifyingKey>,
    signing_key: Option<SigningKey>,
    /// The raw service-key secret, kept (inside the enclave only) so the
    /// serving state can be checkpointed: the sealed state export embeds it,
    /// and a restored enclave re-derives the signing key from it.
    service_key_secret: Option<Vec<u8>>,
    sealed_key: Option<SealedBlob>,
    masks: HashMap<(u64, u64), MaskShare>,
    pending_channel: Option<GlimmerChannel>,
    channel: Option<ChannelKeys>,
    pending_sessions: HashMap<u64, GlimmerChannel>,
    sessions: HashMap<u64, ChannelKeys>,
    session_clients: HashMap<u64, HashSet<u64>>,
    session_masks: HashMap<u64, HashSet<(u64, u64)>>,
    session_nonces: HashMap<u64, HashSet<[u8; 12]>>,
    confidential_detector: Option<BotDetector>,
    auditor: OutputAuditor,
    /// Reusable wire buffer for `PROCESS_BATCH` replies: reset (capacity
    /// kept) at the start of every batch, so steady-state batches encode
    /// their reply without growing this buffer (the copy-out the ecall
    /// interface requires still allocates once per batch).
    reply_scratch: Encoder,
    /// Monotonic serving-state epoch: bumped on every state-mutating ecall
    /// (whether or not it succeeds — an over-approximation is the safe
    /// direction), exported inside the sealed state, and compared by
    /// `EXPORT_STATE_IF_NEWER` so idle enclaves can skip re-sealing.
    state_epoch: u64,
}

impl GlimmerEnclaveProgram {
    /// Builds the enclave program from its (measured) descriptor.
    #[must_use]
    pub fn new(descriptor: &GlimmerDescriptor) -> Self {
        let predicate = AllOf {
            inner: descriptor
                .predicate_specs
                .iter()
                .map(|s| s.instantiate())
                .collect(),
        };
        let service_verifying_key = if descriptor.service_verifying_key.is_empty() {
            None
        } else {
            VerifyingKey::from_bytes(&descriptor.service_verifying_key).ok()
        };
        GlimmerEnclaveProgram {
            app_id: descriptor.app_id.clone(),
            predicate,
            service_verifying_key,
            signing_key: None,
            service_key_secret: None,
            sealed_key: None,
            masks: HashMap::new(),
            pending_channel: None,
            channel: None,
            pending_sessions: HashMap::new(),
            sessions: HashMap::new(),
            session_clients: HashMap::new(),
            session_masks: HashMap::new(),
            session_nonces: HashMap::new(),
            confidential_detector: None,
            auditor: OutputAuditor::new(descriptor.verdict_bit_budget),
            reply_scratch: Encoder::new(),
            state_epoch: 0,
        }
    }

    fn provision(
        &mut self,
        env: &mut dyn EnclaveEnv,
        request: ProvisionRequest,
    ) -> Result<Vec<u8>, String> {
        match request {
            ProvisionRequest::FreshKey(secret) => {
                let key = signing_key_from_secret(&secret).map_err(|e| e.to_string())?;
                let sealed = env
                    .seal(SealPolicy::MrEnclave, SERVICE_KEY_AAD, &secret)
                    .map_err(|e| e.to_string())?;
                let sealed_bytes = sealed.to_bytes();
                self.signing_key = Some(key);
                self.service_key_secret = Some(secret);
                self.sealed_key = Some(sealed);
                Ok(sealed_bytes)
            }
            ProvisionRequest::Sealed(blob_bytes) => {
                let blob = SealedBlob::from_bytes(&blob_bytes).map_err(|e| e.to_string())?;
                if blob.aad() != SERVICE_KEY_AAD {
                    return Err(format!(
                        "{SEALED_REJECTED_MARKER} sealed blob is not a glimmer service key"
                    ));
                }
                let secret = env
                    .unseal(&blob)
                    .map_err(|e| format!("{SEALED_REJECTED_MARKER} {e}"))?;
                let key = signing_key_from_secret(&secret).map_err(|e| e.to_string())?;
                self.signing_key = Some(key);
                self.service_key_secret = Some(secret);
                self.sealed_key = Some(blob);
                Ok(Vec::new())
            }
        }
    }

    fn install_mask(&mut self, delivery: MaskDelivery) -> Result<Vec<u8>, String> {
        self.store_mask(delivery)?;
        Ok(Vec::new())
    }

    /// Decodes a mask delivery and stores the share keyed by (round, client);
    /// returns that key.
    fn store_mask(&mut self, delivery: MaskDelivery) -> Result<(u64, u64), String> {
        let (round, client_id, mask) = match delivery {
            MaskDelivery::Plain {
                round,
                client_id,
                mask,
            } => (round, client_id, mask),
            MaskDelivery::Encrypted { nonce, ciphertext } => {
                let channel = self
                    .channel
                    .as_ref()
                    .ok_or("encrypted mask requires an established channel")?;
                let plain = channel
                    .service_to_glimmer
                    .open(&nonce, b"glimmer-mask-v1", &ciphertext)
                    .map_err(|e| format!("{SEALED_REJECTED_MARKER} mask delivery rejected: {e}"))?;
                match MaskDelivery::from_wire(&plain).map_err(|e| e.to_string())? {
                    MaskDelivery::Plain {
                        round,
                        client_id,
                        mask,
                    } => (round, client_id, mask),
                    MaskDelivery::Encrypted { .. } => {
                        return Err("nested encrypted mask".to_string())
                    }
                }
            }
        };
        self.masks.insert(
            (round, client_id),
            MaskShare {
                round,
                client_id,
                mask,
            },
        );
        Ok((round, client_id))
    }

    /// Installs a mask scoped to one session and records the binding: the
    /// session becomes authorized to contribute as the mask's client id.
    /// Without this binding, co-located sessions on a pooled enclave could
    /// claim each other's client ids and consume each other's mask shares.
    fn session_install_mask(&mut self, data: &[u8]) -> Result<Vec<u8>, String> {
        let request = SessionMaskRequest::from_wire(data).map_err(|e| e.to_string())?;
        if !self.sessions.contains_key(&request.session_id)
            && !self.pending_sessions.contains_key(&request.session_id)
        {
            return Err(format!("no such session {}", request.session_id));
        }
        let delivery = MaskDelivery::from_wire(&request.delivery).map_err(|e| e.to_string())?;
        let (round, client_id) = self.store_mask(delivery)?;
        self.session_clients
            .entry(request.session_id)
            .or_default()
            .insert(client_id);
        self.session_masks
            .entry(request.session_id)
            .or_default()
            .insert((round, client_id));
        Ok(Vec::new())
    }

    fn process_contribution(&mut self, request: ProcessRequest) -> Result<ProcessResponse, String> {
        let contribution = request.contribution;
        let private = request.private_data;

        // 1. Validation.
        let verdict = self.predicate.validate(&contribution, &private);
        if !verdict.passed {
            return Ok(ProcessResponse::Rejected {
                reason: verdict.reason,
            });
        }

        // 2. Blinding (only for private payloads).
        let is_private = contribution.payload.requires_blinding();
        let (released_payload, blinded) = if is_private {
            let values: Vec<f64> = match &contribution.payload {
                crate::protocol::ContributionPayload::ModelUpdate { weights } => weights.clone(),
                crate::protocol::ContributionPayload::IotReadings { samples } => samples.clone(),
                crate::protocol::ContributionPayload::Photo { .. } => unreachable!(),
            };
            let Some(mask) = self
                .masks
                .get(&(contribution.round, contribution.client_id))
            else {
                return Ok(ProcessResponse::Rejected {
                    reason: format!(
                        "no blinding mask installed for round {} client {}; refusing to release private data",
                        contribution.round, contribution.client_id
                    ),
                });
            };
            if mask.mask.len() != values.len() {
                return Ok(ProcessResponse::Rejected {
                    reason: "blinding mask dimension mismatch".to_string(),
                });
            }
            let blinded_vec = mask.blind(&encode_weights(&values));
            let mut enc = Encoder::new();
            enc.put_u64_vec(&blinded_vec);
            (enc.into_bytes(), true)
        } else {
            (contribution.payload.to_wire(), false)
        };

        // 3. Signing.
        let signing_key = self
            .signing_key
            .as_ref()
            .ok_or("no service signing key provisioned")?;
        let mut endorsed = EndorsedContribution {
            app_id: contribution.app_id.clone(),
            client_id: contribution.client_id,
            round: contribution.round,
            released_payload,
            blinded,
            signature: Vec::new(),
        };
        endorsed.signature = sign_endorsement(signing_key, &endorsed).map_err(|e| e.to_string())?;

        // 4. Output audit: private payloads must never leave unblinded.
        self.auditor
            .audit_endorsement(&endorsed, is_private)
            .map_err(|e| e.to_string())?;

        Ok(ProcessResponse::Endorsed(endorsed))
    }

    /// Starts a handshake and binds its DH value into a report targeted at
    /// the quoting enclave. Shared by the single-channel and session paths.
    fn make_channel_report(
        &self,
        env: &mut dyn EnclaveEnv,
        target: [u8; 32],
    ) -> Result<(GlimmerChannel, ChannelReportReply), String> {
        let mut rng_seed = [0u8; 32];
        rng_seed.copy_from_slice(&env.random_bytes(32));
        let mut rng = Drbg::from_seed(rng_seed);
        let channel = GlimmerChannel::start(&self.app_id, &mut rng).map_err(|e| e.to_string())?;
        let report = env.create_report(
            &TargetInfo {
                measurement: sgx_sim::Measurement(target),
            },
            channel.report_data(),
        );
        let reply = ChannelReportReply {
            dh_public: channel.public_bytes(),
            report: report.to_bytes(),
        };
        Ok((channel, reply))
    }

    fn channel_report(&mut self, env: &mut dyn EnclaveEnv, data: &[u8]) -> Result<Vec<u8>, String> {
        if data.len() != 32 {
            return Err("CHANNEL_REPORT expects the 32-byte quoting-enclave measurement".into());
        }
        let mut target = [0u8; 32];
        target.copy_from_slice(data);
        let (channel, reply) = self.make_channel_report(env, target)?;
        self.pending_channel = Some(channel);
        Ok(reply.to_wire())
    }

    fn session_open(&mut self, env: &mut dyn EnclaveEnv, data: &[u8]) -> Result<Vec<u8>, String> {
        let request = SessionOpenRequest::from_wire(data).map_err(|e| e.to_string())?;
        if self.sessions.contains_key(&request.session_id) {
            return Err(format!(
                "session {} already established",
                request.session_id
            ));
        }
        // Restarting an already-pending handshake replaces its state and
        // does not grow the table, so it is exempt from the capacity guard.
        if !self.pending_sessions.contains_key(&request.session_id)
            && self.sessions.len() + self.pending_sessions.len() >= MAX_SESSIONS_PER_ENCLAVE
        {
            return Err(format!(
                "session table full ({MAX_SESSIONS_PER_ENCLAVE} sessions)"
            ));
        }
        let (channel, reply) = self.make_channel_report(env, request.qe_measurement)?;
        // Re-opening a pending session restarts its handshake.
        self.pending_sessions.insert(request.session_id, channel);
        Ok(reply.to_wire())
    }

    fn session_accept(&mut self, data: &[u8]) -> Result<Vec<u8>, String> {
        let request = SessionAcceptRequest::from_wire(data).map_err(|e| e.to_string())?;
        let accept = ChannelAccept::from_wire(&request.accept).map_err(|e| e.to_string())?;
        let channel = self
            .pending_sessions
            .remove(&request.session_id)
            .ok_or_else(|| format!("no pending handshake for session {}", request.session_id))?;
        // Like the single-channel glimmer-as-a-service path: the device
        // authenticated *us* through attestation; with an embedded service
        // key the peer must additionally prove it is the service.
        let keys = match &self.service_verifying_key {
            Some(service_key) => channel.complete(&accept, service_key),
            None => channel.complete_unauthenticated(&accept),
        }
        .map_err(|e| e.to_string())?;
        self.sessions.insert(request.session_id, keys);
        Ok(Vec::new())
    }

    fn session_close(&mut self, data: &[u8]) -> Result<Vec<u8>, String> {
        if data.len() != 8 {
            return Err("SESSION_CLOSE expects an 8-byte session id".into());
        }
        let mut id = [0u8; 8];
        id.copy_from_slice(data);
        let session_id = u64::from_le_bytes(id);
        self.drop_session_state(session_id);
        Ok(Vec::new())
    }

    /// Erases every trace of one session: channel keys, client bindings,
    /// replay nonces, and its masks. Shared by `SESSION_CLOSE` and the
    /// state-import pruning path.
    fn drop_session_state(&mut self, session_id: u64) {
        self.pending_sessions.remove(&session_id);
        self.sessions.remove(&session_id);
        self.session_clients.remove(&session_id);
        self.session_nonces.remove(&session_id);
        // Session-scoped masks die with the session: a pool slot serves an
        // open-ended stream of sessions, so without eviction the mask table
        // would grow without bound — and a later session re-bound to the
        // same (round, client) must install a fresh share, not inherit a
        // stale one.
        if let Some(keys) = self.session_masks.remove(&session_id) {
            for key in keys {
                // A reconnected device may have the same (round, client) mask
                // bound to its replacement session; only evict shares no live
                // session still claims.
                let still_bound = self.session_masks.values().any(|set| set.contains(&key));
                if !still_bound {
                    self.masks.remove(&key);
                }
            }
        }
    }

    /// Decrypts one session's request, runs the pipeline, and re-encrypts the
    /// response under the same session's keys. Returns the ciphertext plus
    /// the public one-bit endorsement outcome (see
    /// [`BatchOutcome`](crate::protocol::BatchOutcome)).
    fn process_for_session(
        &mut self,
        env: &mut dyn EnclaveEnv,
        keys: &ChannelKeys,
        session_id: Option<u64>,
        data: &[u8],
    ) -> Result<(Vec<u8>, bool), String> {
        if data.len() < 12 {
            return Err("encrypted request too short".to_string());
        }
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&data[..12]);
        // Replay protection (pooled path): AEAD opening is stateless, so a
        // replayed ciphertext would re-endorse the same contribution and
        // burn the tenant's endorsement budget twice. Remember each
        // session's request nonces and refuse repeats; the per-session cap
        // bounds enclave memory (reopen the session past it).
        if let Some(sid) = session_id {
            let seen = self.session_nonces.entry(sid).or_default();
            if seen.contains(&nonce) {
                return Err("replayed request nonce".to_string());
            }
            if seen.len() >= MAX_NONCES_PER_SESSION {
                return Err(format!(
                    "session exceeded {MAX_NONCES_PER_SESSION} requests; reopen it"
                ));
            }
        }
        let plain = keys
            .service_to_glimmer
            .open(&nonce, b"glimmer-remote-request-v1", &data[12..])
            .map_err(|e| e.to_string())?;
        let request = ProcessRequest::from_wire(&plain).map_err(|e| e.to_string())?;
        // On a pooled enclave many devices' masks coexist, so a session may
        // only contribute as client ids that were bound to it via
        // SESSION_INSTALL_MASK — otherwise one device could impersonate
        // another and consume its mask share. The legacy single-channel path
        // (session_id None) serves exactly one device and needs no binding.
        let authorized = match session_id {
            None => true,
            Some(sid) => self
                .session_clients
                .get(&sid)
                .is_some_and(|clients| clients.contains(&request.contribution.client_id)),
        };
        let response = if authorized {
            self.process_contribution(request)?
        } else {
            ProcessResponse::Rejected {
                reason: format!(
                    "session not authorized to contribute as client {}",
                    request.contribution.client_id
                ),
            }
        };
        let endorsed = matches!(response, ProcessResponse::Endorsed(_));
        // Record the nonce only now that the request was actually processed:
        // a corrupted ciphertext must not burn the nonce of the legitimate
        // request the device will retransmit.
        if let Some(sid) = session_id {
            self.session_nonces.entry(sid).or_default().insert(nonce);
        }
        let mut reply_nonce = [0u8; 12];
        reply_nonce.copy_from_slice(&env.random_bytes(12));
        let ciphertext = keys.glimmer_to_service.seal(
            &reply_nonce,
            b"glimmer-remote-response-v1",
            &response.to_wire(),
        );
        let mut out = reply_nonce.to_vec();
        out.extend_from_slice(&ciphertext);
        Ok((out, endorsed))
    }

    fn process_batch(&mut self, env: &mut dyn EnclaveEnv, data: &[u8]) -> Result<Vec<u8>, String> {
        // Zero-copy parse: each item's ciphertext borrows `data` instead of
        // being copied into a fresh Vec. The batch limit is enforced from the
        // declared count, before any payload is touched.
        let view = BatchRequestView::new(data).map_err(|e| e.to_string())?;
        if view.len() > MAX_BATCH_ITEMS {
            return Err(format!(
                "batch of {} items exceeds the {MAX_BATCH_ITEMS}-item limit",
                view.len()
            ));
        }
        // Parse the WHOLE batch before processing any of it (the collected
        // refs are (id, &[u8]) pairs — still no ciphertext copies). Batch
        // processing must stay all-or-nothing on malformed encodings: if a
        // decode error surfaced mid-loop, the already-processed items would
        // have consumed replay nonces inside an ECALL that then failed, and
        // the host's retry of those items would be rejected as replays.
        let mut view = view;
        let mut items = Vec::with_capacity(view.len());
        for item in view.by_ref() {
            items.push(item.map_err(|e| e.to_string())?);
        }
        // Reject trailing garbage after the declared items, exactly like the
        // owned `BatchRequest::from_wire` path did.
        view.finish().map_err(|e| e.to_string())?;
        // Encode each outcome straight into the enclave's reusable reply
        // encoder as it is produced — no intermediate `BatchReply` vector,
        // and the wire buffer itself stops growing once it has seen the
        // largest batch. (The final `to_vec` copy-out below still allocates
        // once per batch: the ecall interface returns an owned `Vec<u8>`.)
        // The scratch is moved out for the loop because processing needs
        // `&mut self`; there are no early returns between the take and the
        // put-back.
        let mut scratch = std::mem::take(&mut self.reply_scratch);
        scratch.reset();
        scratch.put_varint(items.len() as u64);
        // Clone each session's keys at most once per batch, not per item
        // (the cache is a local, so borrowing from it is disjoint from the
        // `&mut self` the processing call needs).
        let mut key_cache: HashMap<u64, ChannelKeys> = HashMap::new();
        for item in items {
            if let std::collections::hash_map::Entry::Vacant(slot) =
                key_cache.entry(item.session_id)
            {
                if let Some(keys) = self.sessions.get(&item.session_id) {
                    slot.insert(keys.clone());
                }
            }
            let outcome = match key_cache.get(&item.session_id) {
                Some(keys) => match self.process_for_session(
                    env,
                    keys,
                    Some(item.session_id),
                    item.ciphertext,
                ) {
                    Ok((ciphertext, endorsed)) => BatchOutcome::Reply {
                        ciphertext,
                        endorsed,
                    },
                    Err(reason) => BatchOutcome::Failed(reason),
                },
                None => BatchOutcome::Failed(format!("no such session {}", item.session_id)),
            };
            BatchReplyItem {
                session_id: item.session_id,
                outcome,
            }
            .encode(&mut scratch);
        }
        let out = scratch.as_slice().to_vec();
        self.reply_scratch = scratch;
        Ok(out)
    }

    /// Serializes the enclave's full serving state. Every map is emitted in
    /// sorted key order, so identical state always produces identical bytes
    /// — the gateway's snapshot-determinism canary depends on this (std
    /// `HashMap` iteration order varies between processes).
    ///
    /// Deliberately *not* exported: pending handshakes (their ephemeral DH
    /// secrets must die with the process; devices simply reopen), the
    /// confidential predicate (the tenant re-installs it over its channel),
    /// and the reply scratch buffer.
    fn encode_state(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_str(STATE_EXPORT_TAG);
        match &self.service_key_secret {
            Some(secret) => {
                enc.put_bool(true);
                enc.put_bytes(secret);
            }
            None => enc.put_bool(false),
        }
        match &self.channel {
            Some(keys) => {
                enc.put_bool(true);
                enc.put_raw(&keys.export_bytes());
            }
            None => enc.put_bool(false),
        }
        let mut session_ids: Vec<u64> = self.sessions.keys().copied().collect();
        session_ids.sort_unstable();
        enc.put_varint(session_ids.len() as u64);
        for sid in &session_ids {
            enc.put_u64(*sid);
            enc.put_raw(&self.sessions[sid].export_bytes());
        }
        let mut client_ids: Vec<u64> = self.session_clients.keys().copied().collect();
        client_ids.sort_unstable();
        enc.put_varint(client_ids.len() as u64);
        for sid in &client_ids {
            enc.put_u64(*sid);
            let mut clients: Vec<u64> = self.session_clients[sid].iter().copied().collect();
            clients.sort_unstable();
            enc.put_u64_vec(&clients);
        }
        let mut mask_sids: Vec<u64> = self.session_masks.keys().copied().collect();
        mask_sids.sort_unstable();
        enc.put_varint(mask_sids.len() as u64);
        for sid in &mask_sids {
            enc.put_u64(*sid);
            let mut keys: Vec<(u64, u64)> = self.session_masks[sid].iter().copied().collect();
            keys.sort_unstable();
            enc.put_varint(keys.len() as u64);
            for (round, client) in keys {
                enc.put_u64(round);
                enc.put_u64(client);
            }
        }
        let mut nonce_sids: Vec<u64> = self.session_nonces.keys().copied().collect();
        nonce_sids.sort_unstable();
        enc.put_varint(nonce_sids.len() as u64);
        for sid in &nonce_sids {
            enc.put_u64(*sid);
            let mut nonces: Vec<[u8; 12]> = self.session_nonces[sid].iter().copied().collect();
            nonces.sort_unstable();
            enc.put_varint(nonces.len() as u64);
            for nonce in nonces {
                enc.put_raw(&nonce);
            }
        }
        let mut mask_keys: Vec<(u64, u64)> = self.masks.keys().copied().collect();
        mask_keys.sort_unstable();
        enc.put_varint(mask_keys.len() as u64);
        for key in &mask_keys {
            let share = &self.masks[key];
            enc.put_u64(share.round);
            enc.put_u64(share.client_id);
            enc.put_u64_vec(&share.mask);
        }
        enc.put_u64(self.auditor.verdict_bits_released());
        enc.put_u64(self.auditor.frames_released());
        enc.put_u64(self.auditor.frames_rejected());
        enc.put_u64(self.state_epoch);
        enc.into_bytes()
    }

    /// `EXPORT_STATE`: seals the serving state under [`SealPolicy::MrEnclave`]
    /// with the caller's snapshot header as AAD and returns the blob bytes.
    /// Only byte-identical Glimmer code on this platform can ever open the
    /// result, and only when presenting the same header — which binds the
    /// blob to exactly one snapshot.
    fn export_state(&mut self, env: &mut dyn EnclaveEnv, header: &[u8]) -> Result<Vec<u8>, String> {
        let state = self.encode_state();
        let blob = env
            .seal(SealPolicy::MrEnclave, header, &state)
            .map_err(|e| e.to_string())?;
        Ok(blob.to_bytes())
    }

    /// `EXPORT_STATE_IF_NEWER`: the incremental-checkpoint handshake.
    /// Request: `header bytes | force bool | known_epoch u64`. Reply:
    /// `state_epoch u64 | present bool | [sealed blob bytes]`. When the
    /// caller already holds a sealed export taken at `known_epoch` and the
    /// state has not mutated since (and `force` is clear), the enclave
    /// answers with just its epoch — skipping the encode + seal entirely,
    /// which is the whole ecall-budget win for idle slots.
    fn export_state_if_newer(
        &mut self,
        env: &mut dyn EnclaveEnv,
        data: &[u8],
    ) -> Result<Vec<u8>, String> {
        let mut dec = Decoder::new(data);
        let header = dec.get_bytes().map_err(|e| e.to_string())?;
        let force = dec.get_bool().map_err(|e| e.to_string())?;
        let known_epoch = dec.get_u64().map_err(|e| e.to_string())?;
        dec.finish().map_err(|e| e.to_string())?;
        let mut enc = Encoder::new();
        enc.put_u64(self.state_epoch);
        if force || self.state_epoch != known_epoch {
            let blob = self.export_state(env, &header)?;
            enc.put_bool(true);
            enc.put_bytes(&blob);
        } else {
            enc.put_bool(false);
        }
        Ok(enc.into_bytes())
    }

    /// `IMPORT_STATE`: the restore half of [`Self::export_state`]. The
    /// request carries the snapshot header and the sealed blob; a blob bound
    /// to a different snapshot, sealed by different code, or sealed on a
    /// different platform fails closed with a [`SEALED_REJECTED_MARKER`]
    /// abort (mapped to a typed error by the host).
    fn import_state(&mut self, env: &mut dyn EnclaveEnv, data: &[u8]) -> Result<Vec<u8>, String> {
        let mut dec = Decoder::new(data);
        let header = dec.get_bytes().map_err(|e| e.to_string())?;
        let blob_bytes = dec.get_bytes().map_err(|e| e.to_string())?;
        let live_sessions = dec.get_u64_vec().map_err(|e| e.to_string())?;
        dec.finish().map_err(|e| e.to_string())?;
        // Import only into a freshly built enclave: merging a checkpoint
        // into live serving state could resurrect closed sessions, roll
        // replay-nonce sets backwards, or clobber a live tenant channel.
        if self.signing_key.is_some()
            || self.channel.is_some()
            || self.pending_channel.is_some()
            || !self.sessions.is_empty()
            || !self.pending_sessions.is_empty()
            || !self.masks.is_empty()
            || !self.session_nonces.is_empty()
        {
            return Err("state import requires a freshly built enclave".to_string());
        }
        let blob = SealedBlob::from_bytes(&blob_bytes).map_err(|e| e.to_string())?;
        let plain = env
            .unseal_expecting(&blob, &header)
            .map_err(|e| format!("{SEALED_REJECTED_MARKER} {e}"))?;
        self.install_state(env, &plain)?;
        // Prune session state the routing layer no longer routes: a session
        // closed concurrently with the checkpoint barrier can be present in
        // the sealed export but absent from the captured table. Keeping
        // exactly the caller's live set erases those orphans' keys, nonces,
        // and masks instead of carrying them forever across restarts.
        let live: HashSet<u64> = live_sessions.into_iter().collect();
        let dead: Vec<u64> = self
            .sessions
            .keys()
            .chain(self.session_clients.keys())
            .chain(self.session_masks.keys())
            .chain(self.session_nonces.keys())
            .filter(|sid| !live.contains(sid))
            .copied()
            .collect::<HashSet<u64>>()
            .into_iter()
            .collect();
        for session_id in dead {
            self.drop_session_state(session_id);
        }
        Ok(Vec::new())
    }

    /// Decodes and installs an unsealed state export.
    fn install_state(&mut self, env: &mut dyn EnclaveEnv, bytes: &[u8]) -> Result<(), String> {
        let w = |e: WireError| e.to_string();
        let mut dec = Decoder::new(bytes);
        let tag = dec.get_str().map_err(w)?;
        if tag != STATE_EXPORT_TAG {
            return Err(format!("unsupported state export tag {tag:?}"));
        }
        if dec.get_bool().map_err(w)? {
            let secret = dec.get_bytes().map_err(w)?;
            let key = signing_key_from_secret(&secret).map_err(|e| e.to_string())?;
            // Re-seal the service key fresh so EXPORT_SEALED_KEY keeps
            // working after a restore.
            let sealed = env
                .seal(SealPolicy::MrEnclave, SERVICE_KEY_AAD, &secret)
                .map_err(|e| e.to_string())?;
            self.signing_key = Some(key);
            self.service_key_secret = Some(secret);
            self.sealed_key = Some(sealed);
        }
        if dec.get_bool().map_err(w)? {
            let raw = dec
                .get_raw(crate::channel::CHANNEL_KEYS_EXPORT_LEN)
                .map_err(w)?;
            self.channel = Some(ChannelKeys::from_export(&raw).map_err(|e| e.to_string())?);
        }
        let n = dec.get_varint().map_err(w)? as usize;
        for _ in 0..n {
            let sid = dec.get_u64().map_err(w)?;
            let raw = dec
                .get_raw(crate::channel::CHANNEL_KEYS_EXPORT_LEN)
                .map_err(w)?;
            self.sessions.insert(
                sid,
                ChannelKeys::from_export(&raw).map_err(|e| e.to_string())?,
            );
        }
        let n = dec.get_varint().map_err(w)? as usize;
        for _ in 0..n {
            let sid = dec.get_u64().map_err(w)?;
            let clients = dec.get_u64_vec().map_err(w)?;
            self.session_clients
                .insert(sid, clients.into_iter().collect());
        }
        let n = dec.get_varint().map_err(w)? as usize;
        for _ in 0..n {
            let sid = dec.get_u64().map_err(w)?;
            let m = dec.get_varint().map_err(w)? as usize;
            let mut keys = HashSet::with_capacity(m);
            for _ in 0..m {
                keys.insert((dec.get_u64().map_err(w)?, dec.get_u64().map_err(w)?));
            }
            self.session_masks.insert(sid, keys);
        }
        let n = dec.get_varint().map_err(w)? as usize;
        for _ in 0..n {
            let sid = dec.get_u64().map_err(w)?;
            let m = dec.get_varint().map_err(w)? as usize;
            let mut nonces = HashSet::with_capacity(m);
            for _ in 0..m {
                let raw = dec.get_raw(12).map_err(w)?;
                let mut nonce = [0u8; 12];
                nonce.copy_from_slice(&raw);
                nonces.insert(nonce);
            }
            self.session_nonces.insert(sid, nonces);
        }
        let n = dec.get_varint().map_err(w)? as usize;
        for _ in 0..n {
            let round = dec.get_u64().map_err(w)?;
            let client_id = dec.get_u64().map_err(w)?;
            let mask = dec.get_u64_vec().map_err(w)?;
            self.masks.insert(
                (round, client_id),
                MaskShare {
                    round,
                    client_id,
                    mask,
                },
            );
        }
        let bits = dec.get_u64().map_err(w)?;
        let released = dec.get_u64().map_err(w)?;
        let rejected = dec.get_u64().map_err(w)?;
        let state_epoch = dec.get_u64().map_err(w)?;
        dec.finish().map_err(w)?;
        self.auditor.restore_counts(bits, released, rejected);
        // The imported epoch replaces ours wholesale: a restored enclave
        // continues the exporting incarnation's dirtiness clock, so a
        // checkpoint chain can keep skipping slots that stayed idle across
        // the restart.
        self.state_epoch = state_epoch;
        Ok(())
    }

    fn channel_complete(&mut self, data: &[u8]) -> Result<Vec<u8>, String> {
        let accept = ChannelAccept::from_wire(data).map_err(|e| e.to_string())?;
        let channel = self
            .pending_channel
            .take()
            .ok_or("no pending channel handshake")?;
        // With an embedded service key the peer must prove it is the service;
        // without one (glimmer-as-a-service, Section 4.2) the channel is
        // one-way authenticated: the peer verified *us* through attestation.
        let keys = match &self.service_verifying_key {
            Some(service_key) => channel
                .complete(&accept, service_key)
                .map_err(|e| e.to_string())?,
            None => channel
                .complete_unauthenticated(&accept)
                .map_err(|e| e.to_string())?,
        };
        self.channel = Some(keys);
        Ok(Vec::new())
    }

    fn process_encrypted(
        &mut self,
        env: &mut dyn EnclaveEnv,
        data: &[u8],
    ) -> Result<Vec<u8>, String> {
        let channel = self
            .channel
            .as_ref()
            .ok_or("encrypted processing requires an established channel")?
            .clone();
        self.process_for_session(env, &channel, None, data)
            .map(|(ciphertext, _endorsed)| ciphertext)
    }

    fn install_predicate(&mut self, data: &[u8]) -> Result<Vec<u8>, String> {
        let encrypted = EncryptedPredicate::from_wire(data).map_err(|e| e.to_string())?;
        let channel = self
            .channel
            .as_ref()
            .ok_or("encrypted predicates require an established channel")?;
        let spec =
            open_predicate(&encrypted, &channel.service_to_glimmer).map_err(|e| e.to_string())?;
        self.confidential_detector = Some(BotDetector::new(spec));
        Ok(Vec::new())
    }

    fn confidential_check(&mut self, data: &[u8]) -> Result<Vec<u8>, String> {
        let request = ConfidentialCheckRequest::from_wire(data).map_err(|e| e.to_string())?;
        let detector = self
            .confidential_detector
            .as_ref()
            .ok_or("no confidential predicate installed")?;
        let channel = self
            .channel
            .as_ref()
            .ok_or("confidential check requires an established channel")?;
        let PrivateData::BotSignals { signals } = &request.private else {
            return Err("confidential check requires bot signals".to_string());
        };
        let human = detector.is_human(signals);
        let verdict = BotVerdict::new(request.challenge, human, &channel.mac_key);
        let frame = verdict.to_frame();
        // The auditor is the last gate before anything leaves the enclave.
        self.auditor.audit(&frame).map_err(|e| e.to_string())?;
        Ok(frame.to_bytes())
    }

    fn status(&self) -> Vec<u8> {
        GlimmerStatus {
            signing_key: self.signing_key.is_some(),
            channel: self.channel.is_some(),
            confidential_predicate: self.confidential_detector.is_some(),
            masks: self.masks.len() as u32,
            verdict_bits_released: self.auditor.verdict_bits_released(),
            sessions: self.sessions.len() as u32,
        }
        .to_wire()
    }
}

impl EnclaveProgram for GlimmerEnclaveProgram {
    fn name(&self) -> &str {
        "glimmer"
    }

    fn handle_ecall(
        &mut self,
        env: &mut dyn EnclaveEnv,
        selector: u16,
        data: &[u8],
    ) -> Result<Vec<u8>, String> {
        // Every selector that can mutate serving state bumps the state
        // epoch, whether or not the call ultimately succeeds: over-counting
        // dirtiness costs at most one redundant export, while under-counting
        // would let an incremental checkpoint silently skip changed state.
        // Read-only selectors and IMPORT_STATE (which installs the imported
        // epoch) are exempt.
        match selector {
            ecall::STATUS
            | ecall::EXPORT_SEALED_KEY
            | ecall::EXPORT_STATE
            | ecall::EXPORT_STATE_IF_NEWER
            | ecall::IMPORT_STATE => {}
            _ => self.state_epoch += 1,
        }
        match selector {
            ecall::PROVISION => {
                let request = ProvisionRequest::from_wire(data).map_err(|e| e.to_string())?;
                self.provision(env, request)
            }
            ecall::PROCESS_CONTRIBUTION => {
                let request = ProcessRequest::from_wire(data).map_err(|e| e.to_string())?;
                self.process_contribution(request).map(|r| r.to_wire())
            }
            ecall::PROCESS_ENCRYPTED => self.process_encrypted(env, data),
            ecall::PROCESS_BATCH => self.process_batch(env, data),
            ecall::SESSION_INSTALL_MASK => self.session_install_mask(data),
            ecall::SESSION_OPEN => self.session_open(env, data),
            ecall::SESSION_ACCEPT => self.session_accept(data),
            ecall::SESSION_CLOSE => self.session_close(data),
            ecall::CHANNEL_REPORT => self.channel_report(env, data),
            ecall::CHANNEL_COMPLETE => self.channel_complete(data),
            ecall::INSTALL_PREDICATE => self.install_predicate(data),
            ecall::CONFIDENTIAL_CHECK => self.confidential_check(data),
            ecall::EXPORT_SEALED_KEY => self
                .sealed_key
                .as_ref()
                .map(SealedBlob::to_bytes)
                .ok_or_else(|| "no sealed service key to export".to_string()),
            ecall::INSTALL_MASK => {
                let delivery = MaskDelivery::from_wire(data).map_err(|e| e.to_string())?;
                self.install_mask(delivery)
            }
            ecall::EXPORT_STATE => self.export_state(env, data),
            ecall::EXPORT_STATE_IF_NEWER => self.export_state_if_newer(env, data),
            ecall::IMPORT_STATE => self.import_state(env, data),
            ecall::STATUS => Ok(self.status()),
            other => Err(format!("unknown ECALL selector {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provision_request_round_trip() {
        for r in [
            ProvisionRequest::FreshKey(vec![1, 2, 3]),
            ProvisionRequest::Sealed(vec![4, 5]),
        ] {
            assert_eq!(ProvisionRequest::from_wire(&r.to_wire()).unwrap(), r);
        }
        assert!(ProvisionRequest::from_wire(&[9]).is_err());
    }

    #[test]
    fn mask_delivery_round_trip_and_encryption() {
        let share = MaskShare {
            round: 3,
            client_id: 7,
            mask: vec![1, 2, 3],
        };
        let plain = MaskDelivery::plain(&share);
        assert_eq!(MaskDelivery::from_wire(&plain.to_wire()).unwrap(), plain);

        let key = glimmer_crypto::aead::AeadKey::from_master(&[1u8; 32]);
        let encrypted = MaskDelivery::encrypted(&share, &key, [2u8; 12]);
        let encoded = encrypted.to_wire();
        let decoded = MaskDelivery::from_wire(&encoded).unwrap();
        assert_eq!(decoded, encrypted);
        // The ciphertext does not reveal the mask values.
        match decoded {
            MaskDelivery::Encrypted { ciphertext, .. } => {
                assert!(!ciphertext.windows(8).any(|w| w == 1u64.to_le_bytes()));
            }
            MaskDelivery::Plain { .. } => panic!("expected encrypted"),
        }
        assert!(MaskDelivery::from_wire(&[7]).is_err());
    }

    #[test]
    fn status_and_channel_reply_round_trip() {
        let status = GlimmerStatus {
            signing_key: true,
            channel: false,
            confidential_predicate: true,
            masks: 4,
            verdict_bits_released: 9,
            sessions: 3,
        };
        assert_eq!(GlimmerStatus::from_wire(&status.to_wire()).unwrap(), status);

        let reply = ChannelReportReply {
            dh_public: vec![1, 2],
            report: vec![3, 4, 5],
        };
        assert_eq!(
            ChannelReportReply::from_wire(&reply.to_wire()).unwrap(),
            reply
        );

        let check = ConfidentialCheckRequest {
            challenge: [8u8; 32],
            private: PrivateData::BotSignals {
                signals: vec![("x".to_string(), 1.0)],
            },
        };
        assert_eq!(
            ConfidentialCheckRequest::from_wire(&check.to_wire()).unwrap(),
            check
        );
    }
}
