//! Glimmer-as-a-service (Section 4.2).
//!
//! "Given the increasing trend towards Internet of things (IoT) devices,
//! there are likely to be some devices that will make user contributions that
//! must be trustworthy, but do not have a processor with trusted computing
//! capabilities. In this case, we envision that a neutral third party may
//! supply the capability to run a Glimmer."
//!
//! The remote host (a set-top box, a university server, the EFF) is
//! *untrusted* apart from its enclave. The IoT device:
//!
//! 1. obtains an attestation offer from the host and verifies, through the
//!    attestation service, that the peer is a genuine, approved Glimmer;
//! 2. completes a DH exchange whose Glimmer half is bound inside the quote,
//!    yielding keys only the device and the enclave share;
//! 3. sends its contribution and private validation data encrypted under
//!    those keys and receives the endorsed (validated, blinded, signed)
//!    contribution back, which it forwards to the service.
//!
//! The remote host only ever sees ciphertext and the endorsed output.

use crate::channel::{AttestedChannel, ChannelAccept, ChannelKeys, ChannelOffer};
use crate::host::{GlimmerClient, GlimmerDescriptor};
use crate::protocol::{Contribution, PrivateData, ProcessRequest, ProcessResponse};
use crate::{GlimmerError, Result};
use glimmer_crypto::dh::DhGroup;
use glimmer_crypto::drbg::Drbg;
use glimmer_crypto::schnorr::SigningKey;
use glimmer_wire::WireCodec;
use sgx_sim::{AttestationService, Measurement, PlatformConfig};

/// A third-party machine hosting a Glimmer enclave on behalf of TEE-less
/// devices.
pub struct RemoteGlimmerHost {
    client: GlimmerClient,
}

// Hosts and device sessions are self-contained state machines, so serving
// stacks may move them freely across threads (the gateway's stress tests
// drive device sessions from multiple submitter threads).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<RemoteGlimmerHost>();
    assert_send::<IotDeviceSession>();
};

impl RemoteGlimmerHost {
    /// Creates the host, instantiates the Glimmer, and provisions the
    /// platform for remote attestation.
    pub fn new(
        descriptor: GlimmerDescriptor,
        platform_config: PlatformConfig,
        rng: &mut Drbg,
        avs: &mut AttestationService,
    ) -> Result<Self> {
        let mut client = GlimmerClient::new(descriptor, platform_config, rng)?;
        client.provision_platform(avs);
        Ok(RemoteGlimmerHost { client })
    }

    /// The hosted Glimmer's published measurement.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.client.measurement()
    }

    /// Access to the underlying client runtime (key/mask provisioning).
    pub fn client_mut(&mut self) -> &mut GlimmerClient {
        &mut self.client
    }

    /// Accumulated simulated enclave cost on this host.
    #[must_use]
    pub fn cost_report(&self) -> sgx_sim::CostReport {
        self.client.cost_report()
    }

    /// Produces an attestation offer for a connecting device.
    pub fn attestation_offer(&mut self) -> Result<ChannelOffer> {
        self.client.start_channel()
    }

    /// Completes the device's side of the handshake inside the enclave.
    pub fn accept_device(&mut self, accept: &ChannelAccept) -> Result<()> {
        self.client.complete_channel(accept)
    }

    /// Relays an encrypted request from the device into the enclave and
    /// returns the encrypted response. The host cannot read either.
    pub fn relay(&mut self, request_ciphertext: &[u8]) -> Result<Vec<u8>> {
        self.client.process_encrypted(request_ciphertext)
    }
}

/// The IoT device's view of a remote Glimmer session.
pub struct IotDeviceSession {
    keys: ChannelKeys,
    rng: Drbg,
}

impl IotDeviceSession {
    /// Connects to a remote Glimmer: verifies the attestation offer against
    /// the attestation service and the published measurement, and returns the
    /// handshake response to send back plus the established session.
    ///
    /// The device uses an ephemeral signing key for its half of the
    /// handshake; the Glimmer does not authenticate the device (Section 4.2
    /// only requires the device to authenticate the Glimmer).
    pub fn connect(
        offer: &ChannelOffer,
        avs: &AttestationService,
        approved_measurement: &Measurement,
        rng: &mut Drbg,
    ) -> Result<(ChannelAccept, IotDeviceSession)> {
        let ephemeral_key = SigningKey::generate(DhGroup::default_group(), rng)?;
        let (accept, channel) =
            AttestedChannel::respond(offer, avs, approved_measurement, &ephemeral_key, rng)?;
        Ok((
            accept,
            IotDeviceSession {
                keys: channel.keys,
                rng: rng.fork("iot-device-session"),
            },
        ))
    }

    /// Encrypts a contribution (plus private validation data) for the remote
    /// Glimmer.
    pub fn encrypt_request(
        &mut self,
        contribution: Contribution,
        private_data: PrivateData,
    ) -> Vec<u8> {
        let request = ProcessRequest {
            contribution,
            private_data,
        };
        let mut nonce = [0u8; 12];
        self.rng.fill_bytes(&mut nonce);
        let ciphertext = self.keys.service_to_glimmer.seal(
            &nonce,
            b"glimmer-remote-request-v1",
            &request.to_wire(),
        );
        let mut out = nonce.to_vec();
        out.extend_from_slice(&ciphertext);
        out
    }

    /// Decrypts the remote Glimmer's response.
    pub fn decrypt_response(&self, response: &[u8]) -> Result<ProcessResponse> {
        if response.len() < 12 {
            return Err(GlimmerError::Protocol("encrypted response too short"));
        }
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&response[..12]);
        let plain = self
            .keys
            .glimmer_to_service
            .open(&nonce, b"glimmer-remote-response-v1", &response[12..])
            .map_err(|_| GlimmerError::Channel("remote response failed to decrypt".to_string()))?;
        ProcessResponse::from_wire(&plain).map_err(GlimmerError::from)
    }

    /// The channel keys (exposed for tests that check the host learns
    /// nothing).
    #[must_use]
    pub fn keys(&self) -> &ChannelKeys {
        &self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blinding::{BlindingService, MaskShare};
    use crate::protocol::ContributionPayload;
    use crate::signing::ServiceKeyMaterial;

    fn setup() -> (RemoteGlimmerHost, AttestationService, Drbg) {
        let mut rng = Drbg::from_seed([60u8; 32]);
        let mut avs = AttestationService::new([61u8; 32]);
        let host = RemoteGlimmerHost::new(
            GlimmerDescriptor::iot_default(Vec::new()),
            PlatformConfig::default(),
            &mut rng,
            &mut avs,
        )
        .unwrap();
        (host, avs, rng)
    }

    #[test]
    fn end_to_end_iot_contribution_through_remote_glimmer() {
        let (mut host, avs, mut rng) = setup();

        // Service-side provisioning of the hosted Glimmer.
        let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        host.client_mut()
            .install_service_key(&material.secret_bytes())
            .unwrap();
        let masks = BlindingService::new([7u8; 32]).zero_sum_masks(1, &[100, 101], 4);
        host.client_mut().install_mask(&masks[0]).unwrap();

        // Device connects after verifying attestation.
        let offer = host.attestation_offer().unwrap();
        let approved = host.measurement();
        let (accept, mut session) =
            IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
        host.accept_device(&accept).unwrap();

        // Device submits readings encrypted end-to-end.
        let contribution = Contribution {
            app_id: "iot-telemetry.example".to_string(),
            client_id: 100,
            round: 1,
            payload: ContributionPayload::IotReadings {
                samples: vec![0.2, 0.4, 0.6, 0.8],
            },
        };
        let request = session.encrypt_request(contribution, PrivateData::None);
        let response_ct = host.relay(&request).unwrap();
        let response = session.decrypt_response(&response_ct).unwrap();
        let ProcessResponse::Endorsed(endorsed) = response else {
            panic!("expected endorsement, got {response:?}");
        };
        assert!(endorsed.blinded);
        assert!(material.verifier().verify(&endorsed).is_ok());

        // The relayed bytes never contain the raw samples (host cannot read
        // the device's data).
        let raw = 0.6f64.to_le_bytes();
        assert!(!request.windows(8).any(|w| w == raw));
        assert!(host.cost_report().ecalls >= 4);
    }

    #[test]
    fn device_rejects_unattested_or_wrong_glimmer() {
        let (mut host, avs, mut rng) = setup();
        let offer = host.attestation_offer().unwrap();

        // Wrong expected measurement (a rogue enclave pretending to be a
        // Glimmer).
        let wrong = Measurement::of_bytes(b"rogue enclave");
        assert!(IotDeviceSession::connect(&offer, &avs, &wrong, &mut rng).is_err());

        // Unknown attestation service (the platform never provisioned with it).
        let other_avs = AttestationService::new([99u8; 32]);
        assert!(
            IotDeviceSession::connect(&offer, &other_avs, &host.measurement(), &mut rng).is_err()
        );
    }

    #[test]
    fn out_of_range_iot_readings_are_rejected_by_the_remote_glimmer() {
        let (mut host, avs, mut rng) = setup();
        let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        host.client_mut()
            .install_service_key(&material.secret_bytes())
            .unwrap();
        host.client_mut()
            .install_mask(&MaskShare {
                round: 1,
                client_id: 100,
                mask: vec![0u64; 3],
            })
            .unwrap();

        let offer = host.attestation_offer().unwrap();
        let approved = host.measurement();
        let (accept, mut session) =
            IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
        host.accept_device(&accept).unwrap();

        let contribution = Contribution {
            app_id: "iot-telemetry.example".to_string(),
            client_id: 100,
            round: 1,
            payload: ContributionPayload::IotReadings {
                samples: vec![0.5, 538.0, 0.5],
            },
        };
        let request = session.encrypt_request(contribution, PrivateData::None);
        let response = session
            .decrypt_response(&host.relay(&request).unwrap())
            .unwrap();
        assert!(
            matches!(response, ProcessResponse::Rejected { ref reason } if reason.contains("538"))
        );
    }

    #[test]
    fn batched_multi_session_processing_shares_one_enclave() {
        use crate::protocol::{BatchItem, BatchOutcome, BatchRequest};

        let (mut host, avs, mut rng) = setup();
        let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        host.client_mut()
            .install_service_key(&material.secret_bytes())
            .unwrap();
        let devices: Vec<u64> = vec![300, 301, 302];
        let masks = BlindingService::new([8u8; 32]).zero_sum_masks(2, &devices, 3);
        let approved = host.measurement();

        // Three devices hold *concurrent* sessions against the same enclave;
        // each session gets its own device's mask bound to it.
        let mut sessions = Vec::new();
        for (i, device) in devices.iter().enumerate() {
            let session_id = 1000 + i as u64;
            let offer = host.client_mut().open_session(session_id).unwrap();
            let (accept, session) =
                IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
            host.client_mut()
                .accept_session(session_id, &accept)
                .unwrap();
            host.client_mut()
                .install_session_mask(session_id, &masks[i])
                .unwrap();
            sessions.push((session_id, *device, session));
        }
        assert_eq!(host.client_mut().status().unwrap().sessions, 3);

        // All three contributions cross the boundary in ONE ecall.
        let ecalls_before = host.cost_report().ecalls;
        let items = sessions
            .iter_mut()
            .map(|(session_id, device, session)| BatchItem {
                session_id: *session_id,
                ciphertext: session.encrypt_request(
                    Contribution {
                        app_id: "iot-telemetry.example".to_string(),
                        client_id: *device,
                        round: 2,
                        payload: ContributionPayload::IotReadings {
                            samples: vec![0.1, 0.5, 0.9],
                        },
                    },
                    PrivateData::None,
                ),
            })
            .collect();
        let reply = host
            .client_mut()
            .process_batch(&BatchRequest { items })
            .unwrap();
        assert_eq!(host.cost_report().ecalls, ecalls_before + 1);
        assert_eq!(reply.items.len(), 3);
        for ((_, device, session), item) in sessions.iter().zip(&reply.items) {
            let BatchOutcome::Reply {
                ciphertext,
                endorsed,
            } = &item.outcome
            else {
                panic!("expected reply, got {:?}", item.outcome);
            };
            assert!(*endorsed);
            let response = session.decrypt_response(ciphertext).unwrap();
            let ProcessResponse::Endorsed(endorsed) = response else {
                panic!("expected endorsement");
            };
            assert_eq!(endorsed.client_id, *device);
            assert!(material.verifier().verify(&endorsed).is_ok());
        }

        // A batch item for an unknown session fails without poisoning others,
        // and closed sessions stop decrypting.
        let (first_id, _, session) = &mut sessions[0];
        let good = BatchItem {
            session_id: *first_id,
            ciphertext: session.encrypt_request(
                Contribution {
                    app_id: "iot-telemetry.example".to_string(),
                    client_id: 300,
                    round: 2,
                    payload: ContributionPayload::IotReadings {
                        samples: vec![0.2, 0.2, 0.2],
                    },
                },
                PrivateData::None,
            ),
        };
        let reply = host
            .client_mut()
            .process_batch(&BatchRequest {
                items: vec![
                    BatchItem {
                        session_id: 9999,
                        ciphertext: vec![0u8; 40],
                    },
                    good.clone(),
                ],
            })
            .unwrap();
        assert!(matches!(&reply.items[0].outcome, BatchOutcome::Failed(r) if r.contains("9999")));
        assert!(matches!(
            &reply.items[1].outcome,
            BatchOutcome::Reply { endorsed: true, .. }
        ));

        // Replaying an already-processed ciphertext on the live session is
        // refused (stateless AEAD would otherwise re-endorse it).
        let reply = host
            .client_mut()
            .process_batch(&BatchRequest {
                items: vec![good.clone()],
            })
            .unwrap();
        assert!(
            matches!(&reply.items[0].outcome, BatchOutcome::Failed(r) if r.contains("replayed")),
            "{:?}",
            reply.items[0].outcome
        );

        host.client_mut().close_session(*first_id).unwrap();
        assert_eq!(host.client_mut().status().unwrap().sessions, 2);
        // The closed session's mask was evicted with it.
        assert_eq!(host.client_mut().status().unwrap().masks, 2);
        let reply = host
            .client_mut()
            .process_batch(&BatchRequest { items: vec![good] })
            .unwrap();
        assert!(matches!(&reply.items[0].outcome, BatchOutcome::Failed(_)));
    }

    #[test]
    fn garbage_ciphertext_and_short_responses_error() {
        let (mut host, avs, mut rng) = setup();
        let offer = host.attestation_offer().unwrap();
        let approved = host.measurement();
        let (accept, session) =
            IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
        host.accept_device(&accept).unwrap();

        assert!(host.relay(&[0u8; 5]).is_err());
        assert!(host.relay(&[0u8; 64]).is_err());
        assert!(session.decrypt_response(&[1, 2, 3]).is_err());
        assert!(session.decrypt_response(&[0u8; 40]).is_err());
        let _ = session.keys();
    }
}
