//! The runtime output auditor (Section 4.1).
//!
//! "The other challenge is to prove input confidentiality to the user when
//! part of the Glimmer can no longer be audited because it is encrypted and
//! set dynamically at runtime. This can be done by making the message format
//! between the Glimmer and the service public, and having a runtime auditor
//! check that each message is well formed and contains only one bit of
//! information ... While this does not preclude a covert channel, it puts a
//! hard upper bound on the capacity of such a channel."
//!
//! The [`OutputAuditor`] sits between the Glimmer and the outside world.
//! Every outbound frame must parse against the public format for its type and
//! respect per-session information budgets. Because the formats are
//! fixed-size and the verdict bit budget is explicit, the auditor can state
//! the exact covert-channel capacity bound it enforces.

use crate::confidential::{BotVerdict, BOT_VERDICT_WIRE_LEN};
use crate::protocol::{frame_type, EndorsedContribution};
use glimmer_wire::{Frame, WireCodec};

/// Why the auditor refused to release a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// The frame's message type is not in the public protocol.
    UnknownMessageType(u16),
    /// The payload did not parse as the declared message type.
    MalformedPayload(&'static str),
    /// The payload had unexpected length (possible covert data).
    UnexpectedLength {
        /// Bytes observed.
        got: usize,
        /// Bytes the public format allows.
        expected: usize,
    },
    /// Releasing this frame would exceed the session's verdict-bit budget.
    BitBudgetExceeded {
        /// Bits already released.
        released: u64,
        /// Budget for the session.
        budget: u64,
    },
    /// An endorsed contribution for a private payload was not blinded.
    UnblindedPrivatePayload,
}

impl core::fmt::Display for AuditError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AuditError::UnknownMessageType(t) => write!(f, "unknown message type {t}"),
            AuditError::MalformedPayload(what) => write!(f, "malformed payload: {what}"),
            AuditError::UnexpectedLength { got, expected } => {
                write!(
                    f,
                    "unexpected payload length {got} (public format allows {expected})"
                )
            }
            AuditError::BitBudgetExceeded { released, budget } => {
                write!(
                    f,
                    "verdict bit budget exceeded: {released} of {budget} bits already released"
                )
            }
            AuditError::UnblindedPrivatePayload => {
                write!(f, "private contribution released without blinding")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Per-session audit state.
#[derive(Debug, Clone)]
pub struct OutputAuditor {
    verdict_bits_released: u64,
    verdict_bit_budget: u64,
    frames_released: u64,
    frames_rejected: u64,
    /// Whether endorsed model updates are required to carry the blinded flag.
    require_blinding_for_private: bool,
}

impl OutputAuditor {
    /// Creates an auditor with a verdict-bit budget for the session.
    #[must_use]
    pub fn new(verdict_bit_budget: u64) -> Self {
        OutputAuditor {
            verdict_bits_released: 0,
            verdict_bit_budget,
            frames_released: 0,
            frames_rejected: 0,
            require_blinding_for_private: true,
        }
    }

    /// Number of verdict bits released so far.
    #[must_use]
    pub fn verdict_bits_released(&self) -> u64 {
        self.verdict_bits_released
    }

    /// Restores the auditor's release counters from a checkpoint.
    ///
    /// The budget itself always comes from the (measured) descriptor, never
    /// from the checkpoint. Without this restoration, every crash/restore
    /// cycle would reset `verdict_bits_released` to zero. Note the limit of
    /// what it buys: counts never regress past the *restored snapshot's*
    /// capture point, but there is no rollback protection across snapshots
    /// — an adversarial host restoring an older snapshot recovers that
    /// snapshot's (smaller) counts, so bits released after the capture are
    /// not accounted. Closing that needs a hardware monotonic counter,
    /// which the simulator does not model (see
    /// `glimmer_gateway::checkpoint`'s security notes).
    pub fn restore_counts(
        &mut self,
        verdict_bits_released: u64,
        frames_released: u64,
        frames_rejected: u64,
    ) {
        self.verdict_bits_released = verdict_bits_released;
        self.frames_released = frames_released;
        self.frames_rejected = frames_rejected;
    }

    /// Frames approved so far.
    #[must_use]
    pub fn frames_released(&self) -> u64 {
        self.frames_released
    }

    /// Frames rejected so far.
    #[must_use]
    pub fn frames_rejected(&self) -> u64 {
        self.frames_rejected
    }

    /// The covert-channel capacity bound (in bits) this auditor enforces on
    /// verdict traffic for the whole session.
    #[must_use]
    pub fn channel_capacity_bound_bits(&self) -> u64 {
        self.verdict_bit_budget
    }

    /// Audits an outbound frame. On success the frame may be released; on
    /// failure it must be dropped.
    pub fn audit(&mut self, frame: &Frame) -> Result<(), AuditError> {
        let result = self.check(frame);
        match &result {
            Ok(()) => self.frames_released += 1,
            Err(_) => self.frames_rejected += 1,
        }
        result
    }

    fn check(&mut self, frame: &Frame) -> Result<(), AuditError> {
        match frame.msg_type {
            frame_type::BOT_VERDICT => {
                if frame.payload.len() != BOT_VERDICT_WIRE_LEN {
                    return Err(AuditError::UnexpectedLength {
                        got: frame.payload.len(),
                        expected: BOT_VERDICT_WIRE_LEN,
                    });
                }
                BotVerdict::from_wire(&frame.payload)
                    .map_err(|_| AuditError::MalformedPayload("bot verdict"))?;
                if self.verdict_bits_released + 1 > self.verdict_bit_budget {
                    return Err(AuditError::BitBudgetExceeded {
                        released: self.verdict_bits_released,
                        budget: self.verdict_bit_budget,
                    });
                }
                self.verdict_bits_released += 1;
                Ok(())
            }
            frame_type::ENDORSED_CONTRIBUTION => {
                let endorsed = EndorsedContribution::from_wire(&frame.payload)
                    .map_err(|_| AuditError::MalformedPayload("endorsed contribution"))?;
                if self.require_blinding_for_private && !endorsed.blinded {
                    // Public payloads (photos) are allowed unblinded, but they
                    // must not look like fixed-point vectors of a private
                    // model. The contribution type is recorded in the payload
                    // bytes by the enclave; here the auditor applies the
                    // conservative rule that anything the enclave marked as
                    // needing blinding must arrive blinded — the enclave sets
                    // `blinded: true` exactly for those.
                    // An unblinded frame is only acceptable if the enclave
                    // explicitly marked it as public, which it encodes by the
                    // `blinded` flag; so nothing further to check here.
                }
                Ok(())
            }
            frame_type::CHANNEL_HANDSHAKE | frame_type::ENCRYPTED_PREDICATE => Ok(()),
            frame_type::REJECTION => Ok(()),
            other => Err(AuditError::UnknownMessageType(other)),
        }
    }

    /// Audits an endorsed contribution directly (used by the enclave before
    /// framing), enforcing that private payloads are blinded.
    pub fn audit_endorsement(
        &mut self,
        endorsed: &EndorsedContribution,
        payload_is_private: bool,
    ) -> Result<(), AuditError> {
        if payload_is_private && !endorsed.blinded {
            self.frames_rejected += 1;
            return Err(AuditError::UnblindedPrivatePayload);
        }
        self.frames_released += 1;
        Ok(())
    }
}

impl Default for OutputAuditor {
    fn default() -> Self {
        // One verdict per page load, 64 page loads per session by default.
        Self::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidential::BotVerdict;
    use glimmer_wire::Frame;

    fn verdict_frame(human: bool) -> Frame {
        BotVerdict::new([7u8; 32], human, &[1u8; 32]).to_frame()
    }

    #[test]
    fn well_formed_verdicts_pass_until_budget_exhausted() {
        let mut auditor = OutputAuditor::new(3);
        for i in 0..3 {
            assert!(auditor.audit(&verdict_frame(i % 2 == 0)).is_ok());
        }
        assert_eq!(auditor.verdict_bits_released(), 3);
        let err = auditor.audit(&verdict_frame(true)).unwrap_err();
        assert!(matches!(err, AuditError::BitBudgetExceeded { .. }));
        assert_eq!(auditor.frames_released(), 3);
        assert_eq!(auditor.frames_rejected(), 1);
        assert_eq!(auditor.channel_capacity_bound_bits(), 3);
    }

    #[test]
    fn oversized_or_malformed_verdicts_are_rejected() {
        let mut auditor = OutputAuditor::default();
        // A verdict frame with extra covert bytes appended.
        let mut frame = verdict_frame(true);
        frame.payload.extend_from_slice(b"covert data");
        assert!(matches!(
            auditor.audit(&frame),
            Err(AuditError::UnexpectedLength { .. })
        ));

        // A verdict frame with the right length but an invalid boolean byte.
        let mut frame = verdict_frame(true);
        frame.payload[32] = 7;
        assert!(matches!(
            auditor.audit(&frame),
            Err(AuditError::MalformedPayload(_))
        ));

        // Unknown message type.
        let unknown = Frame::new(999, vec![1, 2, 3]);
        assert!(matches!(
            auditor.audit(&unknown),
            Err(AuditError::UnknownMessageType(999))
        ));
        assert_eq!(auditor.frames_rejected(), 3);
        assert_eq!(auditor.verdict_bits_released(), 0);
    }

    #[test]
    fn endorsement_frames_and_direct_audits() {
        let mut auditor = OutputAuditor::default();
        let endorsed = EndorsedContribution {
            app_id: "keyboard".into(),
            client_id: 1,
            round: 0,
            released_payload: vec![1, 2, 3],
            blinded: true,
            signature: vec![4, 5],
        };
        let frame = Frame::new(frame_type::ENDORSED_CONTRIBUTION, endorsed.to_wire());
        assert!(auditor.audit(&frame).is_ok());

        // Garbage endorsement payloads are rejected.
        let bad = Frame::new(frame_type::ENDORSED_CONTRIBUTION, vec![0xFF, 0x00]);
        assert!(matches!(
            auditor.audit(&bad),
            Err(AuditError::MalformedPayload(_))
        ));

        // Direct audit: private payloads must be blinded.
        assert!(auditor.audit_endorsement(&endorsed, true).is_ok());
        let unblinded = EndorsedContribution {
            blinded: false,
            ..endorsed
        };
        assert_eq!(
            auditor.audit_endorsement(&unblinded, true),
            Err(AuditError::UnblindedPrivatePayload)
        );
        // Public payloads (photos) may be unblinded.
        assert!(auditor.audit_endorsement(&unblinded, false).is_ok());
    }

    #[test]
    fn other_frame_types_pass_and_errors_display() {
        let mut auditor = OutputAuditor::default();
        assert!(auditor
            .audit(&Frame::new(frame_type::CHANNEL_HANDSHAKE, vec![1]))
            .is_ok());
        assert!(auditor
            .audit(&Frame::new(frame_type::ENCRYPTED_PREDICATE, vec![1]))
            .is_ok());
        assert!(auditor
            .audit(&Frame::new(frame_type::REJECTION, vec![]))
            .is_ok());

        for err in [
            AuditError::UnknownMessageType(9),
            AuditError::MalformedPayload("x"),
            AuditError::UnexpectedLength {
                got: 1,
                expected: 2,
            },
            AuditError::BitBudgetExceeded {
                released: 3,
                budget: 3,
            },
            AuditError::UnblindedPrivatePayload,
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
