//! The Glimmer of Trust: the paper's primary contribution.
//!
//! A Glimmer (Lie & Maniatis, HotOS 2017) is a small trusted third party that
//! sits on the client side of the trust boundary and does exactly three
//! things to a user contribution before it is sent to a cloud service:
//!
//! 1. **Validation** — runs a service-specified validity predicate over the
//!    contribution and over private validation data the service must never
//!    see ([`validation`]).
//! 2. **Blinding** — hides the (private) contribution so the service can only
//!    learn aggregates ([`blinding`]).
//! 3. **Signing** — endorses the validated, blinded contribution with a
//!    service-provided key sealed to the Glimmer, so the service can verify
//!    that what it aggregates passed validation ([`signing`]).
//!
//! The Glimmer runs inside a (simulated) SGX enclave on the client device:
//! [`enclave_app`] is the enclave program, [`host`] is the untrusted client
//! runtime that drives it, and [`channel`] establishes the attested secure
//! channel between the service and the enclave. Section 4 extensions are
//! covered by [`confidential`] (validation confidentiality via encrypted
//! predicates), [`auditor`] (the runtime output auditor that bounds leakage
//! to one bit), and [`remote`] (Glimmer-as-a-service for TEE-less IoT
//! devices). [`policy`] implements the verifiability/TCB accounting the paper
//! argues makes Glimmers amenable to formal verification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auditor;
pub mod blinding;
pub mod channel;
pub mod confidential;
pub mod enclave_app;
pub mod host;
pub mod policy;
pub mod protocol;
pub mod remote;
pub mod signing;
pub mod validation;

pub use auditor::{AuditError, OutputAuditor};
pub use blinding::{BlindingService, MaskShare};
pub use channel::{AttestedChannel, ChannelAccept, ChannelError, ChannelOffer, GlimmerChannel};
pub use confidential::{open_predicate, seal_predicate, BotVerdict, EncryptedPredicate};
pub use enclave_app::{GlimmerEnclaveProgram, GlimmerStatus, MaskDelivery, GLIMMER_ISV_PROD_ID};
pub use host::{GlimmerClient, GlimmerDescriptor};
pub use policy::{check_verifiability, PolicyLimits, PolicyViolation, TcbReport};
pub use protocol::{
    BatchItem, BatchOutcome, BatchReply, BatchReplyItem, BatchRequest, Contribution,
    ContributionPayload, EndorsedContribution, PrivateData, ProcessRequest, ProcessResponse,
    SessionAcceptRequest, SessionMaskRequest, SessionOpenRequest, ValidationVerdict,
};
pub use remote::{IotDeviceSession, RemoteGlimmerHost};
pub use signing::{EndorsementVerifier, ServiceKeyMaterial};
pub use validation::{BotDetectorSpec, PredicateKind, PredicateSpec, ValidationPredicate};

/// Errors produced by the Glimmer runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum GlimmerError {
    /// The contribution failed validation; no endorsement was produced.
    ValidationRejected(String),
    /// A cryptographic operation failed.
    Crypto(glimmer_crypto::CryptoError),
    /// A simulated SGX operation failed.
    Sgx(sgx_sim::SgxError),
    /// A wire message could not be decoded.
    Wire(glimmer_wire::WireError),
    /// The Glimmer is missing state it needs (e.g., no signing key installed).
    NotProvisioned(&'static str),
    /// The attested channel could not be established or was misused.
    Channel(String),
    /// The runtime auditor refused to release a message.
    AuditRejected(String),
    /// A protocol message arrived with inconsistent or out-of-range fields.
    Protocol(&'static str),
}

impl core::fmt::Display for GlimmerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GlimmerError::ValidationRejected(reason) => {
                write!(f, "contribution rejected by validation: {reason}")
            }
            GlimmerError::Crypto(e) => write!(f, "crypto error: {e}"),
            GlimmerError::Sgx(e) => write!(f, "sgx error: {e}"),
            GlimmerError::Wire(e) => write!(f, "wire error: {e}"),
            GlimmerError::NotProvisioned(what) => write!(f, "glimmer not provisioned: {what}"),
            GlimmerError::Channel(msg) => write!(f, "attested channel error: {msg}"),
            GlimmerError::AuditRejected(msg) => write!(f, "auditor rejected output: {msg}"),
            GlimmerError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for GlimmerError {}

impl From<glimmer_crypto::CryptoError> for GlimmerError {
    fn from(e: glimmer_crypto::CryptoError) -> Self {
        GlimmerError::Crypto(e)
    }
}

impl From<sgx_sim::SgxError> for GlimmerError {
    fn from(e: sgx_sim::SgxError) -> Self {
        GlimmerError::Sgx(e)
    }
}

impl From<glimmer_wire::WireError> for GlimmerError {
    fn from(e: glimmer_wire::WireError) -> Self {
        GlimmerError::Wire(e)
    }
}

/// Result alias for the Glimmer runtime.
pub type Result<T> = core::result::Result<T, GlimmerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversions() {
        assert!(GlimmerError::ValidationRejected("out of range".into())
            .to_string()
            .contains("out of range"));
        assert!(GlimmerError::NotProvisioned("signing key")
            .to_string()
            .contains("signing key"));
        assert!(GlimmerError::AuditRejected("too many bits".into())
            .to_string()
            .contains("too many bits"));
        assert!(GlimmerError::Channel("no quote".into())
            .to_string()
            .contains("no quote"));
        assert!(GlimmerError::Protocol("bad round")
            .to_string()
            .contains("bad round"));

        let crypto: GlimmerError = glimmer_crypto::CryptoError::VerificationFailed.into();
        assert!(matches!(crypto, GlimmerError::Crypto(_)));
        let sgx: GlimmerError = sgx_sim::SgxError::NotProvisioned.into();
        assert!(matches!(sgx, GlimmerError::Sgx(_)));
        let wire: GlimmerError = glimmer_wire::WireError::BadMagic.into();
        assert!(matches!(wire, GlimmerError::Wire(_)));
        assert!(wire.to_string().contains("wire"));
    }
}
