//! Protocol messages exchanged between the client app, the Glimmer enclave,
//! and the service.
//!
//! Everything that crosses the enclave boundary or the client/service trust
//! boundary is one of the types defined here, encoded with `glimmer-wire` so
//! that the runtime auditor and the service can parse it unambiguously.

use glimmer_wire::{Decoder, Encoder, WireCodec, WireError};

/// ECALL selectors understood by the Glimmer enclave program.
pub mod ecall {
    /// Install service key material (sealed blob produced earlier, or fresh
    /// material delivered over the attested channel).
    pub const PROVISION: u16 = 1;
    /// Validate, blind, and sign one contribution.
    pub const PROCESS_CONTRIBUTION: u16 = 2;
    /// Produce an attestation report binding the Glimmer's channel public key.
    pub const CHANNEL_REPORT: u16 = 3;
    /// Complete the attested channel with the service's handshake message.
    pub const CHANNEL_COMPLETE: u16 = 4;
    /// Install an encrypted validation predicate (Section 4.1).
    pub const INSTALL_PREDICATE: u16 = 5;
    /// Run the confidential predicate over private signals and emit a 1-bit
    /// verdict frame (Section 4.1).
    pub const CONFIDENTIAL_CHECK: u16 = 6;
    /// Export the sealed service-key blob for persistence by the host.
    pub const EXPORT_SEALED_KEY: u16 = 7;
    /// Install a blinding mask share for an upcoming round.
    pub const INSTALL_MASK: u16 = 8;
    /// Return the Glimmer's status (provisioned flags) for diagnostics.
    pub const STATUS: u16 = 9;
    /// Validate, blind, and sign a contribution delivered encrypted over the
    /// attested channel (glimmer-as-a-service, Section 4.2).
    pub const PROCESS_ENCRYPTED: u16 = 10;
    /// Open a session-scoped attested channel handshake (multi-tenant
    /// glimmer-as-a-service: one enclave, many concurrent device sessions).
    pub const SESSION_OPEN: u16 = 11;
    /// Complete a session-scoped handshake with the device's response.
    pub const SESSION_ACCEPT: u16 = 12;
    /// Tear down a session and erase its channel keys.
    pub const SESSION_CLOSE: u16 = 13;
    /// Validate, blind, and sign a whole batch of encrypted contributions
    /// from many sessions in a single enclave transition (the gateway's
    /// amortized serving path).
    pub const PROCESS_BATCH: u16 = 14;
    /// Install a blinding mask bound to one session: the mask's client id
    /// becomes a client the session is authorized to contribute as.
    pub const SESSION_INSTALL_MASK: u16 = 15;
    /// Export the enclave's full serving state (signing key, session channel
    /// keys, masks, replay nonces, auditor counters) as a sealed blob bound
    /// to a caller-supplied snapshot header (checkpoint/restore).
    pub const EXPORT_STATE: u16 = 16;
    /// Import a sealed serving-state blob into a freshly built enclave on
    /// the same platform with the same measurement (restore after restart).
    pub const IMPORT_STATE: u16 = 17;
    /// Export serving state only if it changed: the caller supplies the
    /// state epoch it already holds (plus a force flag) and the enclave
    /// replies with its current epoch and — only when newer or forced —
    /// a fresh sealed export. Lets incremental checkpoints skip the
    /// sealing work for idle slots entirely.
    pub const EXPORT_STATE_IF_NEWER: u16 = 18;
}

/// Frame message types used on the client/service wire.
pub mod frame_type {
    /// An endorsed contribution travelling to the service.
    pub const ENDORSED_CONTRIBUTION: u16 = 1;
    /// A bot-detection verdict (Section 4.1): exactly one bit of payload.
    pub const BOT_VERDICT: u16 = 2;
    /// A channel handshake message.
    pub const CHANNEL_HANDSHAKE: u16 = 3;
    /// An encrypted predicate delivery.
    pub const ENCRYPTED_PREDICATE: u16 = 4;
    /// A validation rejection notice (sent back to the local app only).
    pub const REJECTION: u16 = 5;
}

/// What the user is contributing to the service.
#[derive(Debug, Clone, PartialEq)]
pub enum ContributionPayload {
    /// A federated-learning model update: one weight per schema slot.
    /// Private — must be blinded before leaving the Glimmer.
    ModelUpdate {
        /// The local model parameter vector.
        weights: Vec<f64>,
    },
    /// A crowd-sourced photo for a map location. The photo itself is meant to
    /// be shared, so it is not blinded; only its validation needs private data.
    Photo {
        /// Hash of the photo contents.
        photo_hash: [u8; 32],
        /// Latitude the user claims the photo was taken at.
        claimed_lat: f64,
        /// Longitude the user claims the photo was taken at.
        claimed_lon: f64,
    },
    /// A batch of IoT sensor readings.
    IotReadings {
        /// The reported samples.
        samples: Vec<f64>,
    },
}

impl ContributionPayload {
    /// Whether this payload is private and must be blinded before release.
    #[must_use]
    pub fn requires_blinding(&self) -> bool {
        match self {
            ContributionPayload::ModelUpdate { .. } => true,
            ContributionPayload::Photo { .. } => false,
            ContributionPayload::IotReadings { .. } => true,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            ContributionPayload::ModelUpdate { .. } => 1,
            ContributionPayload::Photo { .. } => 2,
            ContributionPayload::IotReadings { .. } => 3,
        }
    }
}

impl WireCodec for ContributionPayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.tag());
        match self {
            ContributionPayload::ModelUpdate { weights } => enc.put_f64_vec(weights),
            ContributionPayload::Photo {
                photo_hash,
                claimed_lat,
                claimed_lon,
            } => {
                enc.put_array32(photo_hash);
                enc.put_f64(*claimed_lat);
                enc.put_f64(*claimed_lon);
            }
            ContributionPayload::IotReadings { samples } => enc.put_f64_vec(samples),
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.get_u8()? {
            1 => Ok(ContributionPayload::ModelUpdate {
                weights: dec.get_f64_vec()?,
            }),
            2 => Ok(ContributionPayload::Photo {
                photo_hash: dec.get_array32()?,
                claimed_lat: dec.get_f64()?,
                claimed_lon: dec.get_f64()?,
            }),
            3 => Ok(ContributionPayload::IotReadings {
                samples: dec.get_f64_vec()?,
            }),
            other => Err(WireError::InvalidBool(other)),
        }
    }
}

/// Private validation data: information the Glimmer may inspect but that must
/// never reach the service (Section 2: "they can only verify the legitimacy
/// of user contributions through direct access to sensitive user data").
#[derive(Debug, Clone, PartialEq)]
pub enum PrivateData {
    /// No private data supplied (only context-free predicates can run).
    None,
    /// The user's recent keyboard activity, as tokenized sentences.
    KeyboardLog {
        /// Tokenized sentences (word ids in the service vocabulary).
        sentences: Vec<Vec<u32>>,
    },
    /// Location history and device fingerprint for photo corroboration.
    GpsTrack {
        /// `(lat, lon, unix_seconds)` samples.
        points: Vec<(f64, f64, u64)>,
        /// Fingerprint of the camera hardware that captured the photo.
        camera_fingerprint: [u8; 32],
    },
    /// Behavioural signals collected by the in-page bot detector.
    BotSignals {
        /// Named signal values (timings, JS fidelity, focus changes, ...).
        signals: Vec<(String, f64)>,
    },
}

impl PrivateData {
    fn tag(&self) -> u8 {
        match self {
            PrivateData::None => 0,
            PrivateData::KeyboardLog { .. } => 1,
            PrivateData::GpsTrack { .. } => 2,
            PrivateData::BotSignals { .. } => 3,
        }
    }
}

impl WireCodec for PrivateData {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.tag());
        match self {
            PrivateData::None => {}
            PrivateData::KeyboardLog { sentences } => {
                enc.put_varint(sentences.len() as u64);
                for s in sentences {
                    enc.put_varint(s.len() as u64);
                    for w in s {
                        enc.put_u32(*w);
                    }
                }
            }
            PrivateData::GpsTrack {
                points,
                camera_fingerprint,
            } => {
                enc.put_varint(points.len() as u64);
                for (lat, lon, ts) in points {
                    enc.put_f64(*lat);
                    enc.put_f64(*lon);
                    enc.put_u64(*ts);
                }
                enc.put_array32(camera_fingerprint);
            }
            PrivateData::BotSignals { signals } => {
                enc.put_varint(signals.len() as u64);
                for (name, value) in signals {
                    enc.put_str(name);
                    enc.put_f64(*value);
                }
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.get_u8()? {
            0 => Ok(PrivateData::None),
            1 => {
                let n = dec.get_varint()? as usize;
                let mut sentences = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let len = dec.get_varint()? as usize;
                    let mut sentence = Vec::with_capacity(len.min(1 << 16));
                    for _ in 0..len {
                        sentence.push(dec.get_u32()?);
                    }
                    sentences.push(sentence);
                }
                Ok(PrivateData::KeyboardLog { sentences })
            }
            2 => {
                let n = dec.get_varint()? as usize;
                let mut points = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    points.push((dec.get_f64()?, dec.get_f64()?, dec.get_u64()?));
                }
                let camera_fingerprint = dec.get_array32()?;
                Ok(PrivateData::GpsTrack {
                    points,
                    camera_fingerprint,
                })
            }
            3 => {
                let n = dec.get_varint()? as usize;
                let mut signals = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    signals.push((dec.get_str()?, dec.get_f64()?));
                }
                Ok(PrivateData::BotSignals { signals })
            }
            other => Err(WireError::InvalidBool(other)),
        }
    }
}

/// A user contribution as handed to the Glimmer by the client application.
#[derive(Debug, Clone, PartialEq)]
pub struct Contribution {
    /// Application identifier (which service/schema this belongs to).
    pub app_id: String,
    /// Opaque client identifier assigned by the service (not a user identity).
    pub client_id: u64,
    /// Aggregation round this contribution targets.
    pub round: u64,
    /// The contributed data.
    pub payload: ContributionPayload,
}

impl WireCodec for Contribution {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.app_id);
        enc.put_u64(self.client_id);
        enc.put_u64(self.round);
        self.payload.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Contribution {
            app_id: dec.get_str()?,
            client_id: dec.get_u64()?,
            round: dec.get_u64()?,
            payload: ContributionPayload::decode(dec)?,
        })
    }
}

/// The result of running the validation predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationVerdict {
    /// Whether the contribution passed.
    pub passed: bool,
    /// Confidence in the verdict, in `[0, 1]`.
    pub confidence: f64,
    /// Human-readable reason (kept inside the client; never sent to the
    /// service beyond the pass/fail outcome).
    pub reason: String,
}

impl ValidationVerdict {
    /// A passing verdict with full confidence.
    #[must_use]
    pub fn pass() -> Self {
        ValidationVerdict {
            passed: true,
            confidence: 1.0,
            reason: String::new(),
        }
    }

    /// A failing verdict with a reason.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        ValidationVerdict {
            passed: false,
            confidence: 1.0,
            reason: reason.into(),
        }
    }

    /// A verdict with an explicit confidence value.
    #[must_use]
    pub fn with_confidence(passed: bool, confidence: f64, reason: impl Into<String>) -> Self {
        ValidationVerdict {
            passed,
            confidence: confidence.clamp(0.0, 1.0),
            reason: reason.into(),
        }
    }
}

impl WireCodec for ValidationVerdict {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(self.passed);
        enc.put_f64(self.confidence);
        enc.put_str(&self.reason);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ValidationVerdict {
            passed: dec.get_bool()?,
            confidence: dec.get_f64()?,
            reason: dec.get_str()?,
        })
    }
}

/// What actually leaves the Glimmer for the service: the (blinded, if
/// private) contribution bytes, bound to the app/round/client, under the
/// endorsement signature.
#[derive(Debug, Clone, PartialEq)]
pub struct EndorsedContribution {
    /// Application identifier.
    pub app_id: String,
    /// Client identifier.
    pub client_id: u64,
    /// Aggregation round.
    pub round: u64,
    /// Blinded fixed-point vector for private payloads, or the raw payload
    /// encoding for public ones (photos).
    pub released_payload: Vec<u8>,
    /// True when `released_payload` is a blinded fixed-point vector.
    pub blinded: bool,
    /// Endorsement signature by the Glimmer's service-provided key.
    pub signature: Vec<u8>,
}

impl EndorsedContribution {
    /// The byte string covered by the endorsement signature.
    #[must_use]
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_str("glimmer-endorsement-v1");
        enc.put_str(&self.app_id);
        enc.put_u64(self.client_id);
        enc.put_u64(self.round);
        enc.put_bool(self.blinded);
        enc.put_bytes(&self.released_payload);
        enc.into_bytes()
    }

    /// Decodes the released payload as a blinded fixed-point vector.
    pub fn blinded_vector(&self) -> Result<Vec<u64>, WireError> {
        let mut dec = Decoder::new(&self.released_payload);
        let v = dec.get_u64_vec()?;
        dec.finish()?;
        Ok(v)
    }
}

impl WireCodec for EndorsedContribution {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.app_id);
        enc.put_u64(self.client_id);
        enc.put_u64(self.round);
        enc.put_bytes(&self.released_payload);
        enc.put_bool(self.blinded);
        enc.put_bytes(&self.signature);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(EndorsedContribution {
            app_id: dec.get_str()?,
            client_id: dec.get_u64()?,
            round: dec.get_u64()?,
            released_payload: dec.get_bytes()?,
            blinded: dec.get_bool()?,
            signature: dec.get_bytes()?,
        })
    }
}

/// Request marshalled into the `PROCESS_CONTRIBUTION` ECALL.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessRequest {
    /// The contribution to validate and endorse.
    pub contribution: Contribution,
    /// Private validation data the predicate may inspect.
    pub private_data: PrivateData,
}

impl WireCodec for ProcessRequest {
    fn encode(&self, enc: &mut Encoder) {
        self.contribution.encode(enc);
        self.private_data.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ProcessRequest {
            contribution: Contribution::decode(dec)?,
            private_data: PrivateData::decode(dec)?,
        })
    }
}

/// Response marshalled out of the `PROCESS_CONTRIBUTION` ECALL.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcessResponse {
    /// The contribution was validated and endorsed.
    Endorsed(EndorsedContribution),
    /// The contribution was rejected; the reason stays on the client.
    Rejected {
        /// Why validation failed.
        reason: String,
    },
}

impl WireCodec for ProcessResponse {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ProcessResponse::Endorsed(e) => {
                enc.put_u8(1);
                e.encode(enc);
            }
            ProcessResponse::Rejected { reason } => {
                enc.put_u8(0);
                enc.put_str(reason);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.get_u8()? {
            1 => Ok(ProcessResponse::Endorsed(EndorsedContribution::decode(
                dec,
            )?)),
            0 => Ok(ProcessResponse::Rejected {
                reason: dec.get_str()?,
            }),
            other => Err(WireError::InvalidBool(other)),
        }
    }
}

/// Request marshalled into the `SESSION_OPEN` ECALL: which session to open
/// and the quoting enclave's measurement (so the enclave can target its
/// report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOpenRequest {
    /// Gateway-assigned session identifier (unique per enclave).
    pub session_id: u64,
    /// Measurement of the platform's quoting enclave.
    pub qe_measurement: [u8; 32],
}

impl WireCodec for SessionOpenRequest {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.session_id);
        enc.put_array32(&self.qe_measurement);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(SessionOpenRequest {
            session_id: dec.get_u64()?,
            qe_measurement: dec.get_array32()?,
        })
    }
}

/// Request marshalled into the `SESSION_ACCEPT` ECALL: the device's handshake
/// response for one pending session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionAcceptRequest {
    /// The session the response belongs to.
    pub session_id: u64,
    /// The device's raw `ChannelAccept` encoding.
    pub accept: Vec<u8>,
}

impl WireCodec for SessionAcceptRequest {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.session_id);
        enc.put_bytes(&self.accept);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(SessionAcceptRequest {
            session_id: dec.get_u64()?,
            accept: dec.get_bytes()?,
        })
    }
}

/// Request marshalled into the `SESSION_INSTALL_MASK` ECALL: a mask delivery
/// scoped to one session. Installing it authorizes the session to contribute
/// as the mask's client id — the binding that keeps co-located sessions on a
/// pooled enclave from impersonating each other.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMaskRequest {
    /// The session the mask belongs to.
    pub session_id: u64,
    /// The raw `MaskDelivery` encoding.
    pub delivery: Vec<u8>,
}

impl WireCodec for SessionMaskRequest {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.session_id);
        enc.put_bytes(&self.delivery);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(SessionMaskRequest {
            session_id: dec.get_u64()?,
            delivery: dec.get_bytes()?,
        })
    }
}

/// One encrypted request travelling into the `PROCESS_BATCH` ECALL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchItem {
    /// The session whose channel keys protect `ciphertext`.
    pub session_id: u64,
    /// Nonce-prefixed AEAD ciphertext of a [`ProcessRequest`].
    pub ciphertext: Vec<u8>,
}

impl WireCodec for BatchItem {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.session_id);
        enc.put_bytes(&self.ciphertext);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(BatchItem {
            session_id: dec.get_u64()?,
            ciphertext: dec.get_bytes()?,
        })
    }
}

/// A [`BatchItem`] decoded without copying: the ciphertext borrows the wire
/// buffer it arrived in.
///
/// This is the enclave's zero-copy fast path for `PROCESS_BATCH`: a batch of
/// N contributions used to cost N ciphertext allocations just to *parse* the
/// request, before any of them was processed. Borrowing instead makes the
/// parse allocation-free, which matters once shard workers drain batches in
/// parallel and the allocator becomes a shared bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchItemRef<'a> {
    /// The session whose channel keys protect `ciphertext`.
    pub session_id: u64,
    /// Nonce-prefixed AEAD ciphertext of a [`ProcessRequest`], borrowed from
    /// the batch's wire encoding.
    pub ciphertext: &'a [u8],
}

impl<'a> BatchItemRef<'a> {
    /// Decodes one item, borrowing the ciphertext from the decoder's buffer.
    pub fn decode(dec: &mut Decoder<'a>) -> Result<Self, WireError> {
        Ok(BatchItemRef {
            session_id: dec.get_u64()?,
            ciphertext: dec.get_bytes_ref()?,
        })
    }

    /// An owning copy of this item.
    #[must_use]
    pub fn to_owned(&self) -> BatchItem {
        BatchItem {
            session_id: self.session_id,
            ciphertext: self.ciphertext.to_vec(),
        }
    }
}

/// A lazily-decoded view over a `BatchRequest` wire encoding: yields
/// [`BatchItemRef`]s that borrow their ciphertexts from the input buffer.
///
/// The item count is read eagerly (so callers can enforce batch limits
/// before touching any payload); the items themselves decode as the view is
/// iterated. Wire-format errors surface as `Err` items, after which the
/// iterator fuses.
#[derive(Debug)]
pub struct BatchRequestView<'a> {
    dec: Decoder<'a>,
    remaining: usize,
    poisoned: bool,
}

impl<'a> BatchRequestView<'a> {
    /// Opens a view over `data`, reading only the item count.
    pub fn new(data: &'a [u8]) -> Result<Self, WireError> {
        let mut dec = Decoder::new(data);
        let remaining = dec.get_varint()? as usize;
        Ok(BatchRequestView {
            dec,
            remaining,
            poisoned: false,
        })
    }

    /// Declared number of items not yet yielded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.remaining
    }

    /// True when no items remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }

    /// Fails with [`WireError::TrailingBytes`] unless every declared item
    /// has been yielded and the underlying buffer is exhausted — the same
    /// strictness `BatchRequest::from_wire` enforces via `Decoder::finish`.
    /// Call after iteration when the encoding comes from an untrusted peer.
    pub fn finish(&self) -> Result<(), WireError> {
        self.dec.finish()
    }
}

impl<'a> Iterator for BatchRequestView<'a> {
    type Item = Result<BatchItemRef<'a>, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match BatchItemRef::decode(&mut self.dec) {
            Ok(item) => Some(Ok(item)),
            Err(e) => {
                self.poisoned = true;
                Some(Err(e))
            }
        }
    }
}

/// Request marshalled into the `PROCESS_BATCH` ECALL: every queued encrypted
/// contribution for this enclave, crossing the boundary in one transition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchRequest {
    /// The queued items, in arrival order.
    pub items: Vec<BatchItem>,
}

impl BatchRequest {
    /// Streams `items` into `enc` in the exact `BatchRequest` wire format
    /// without materializing an owned `BatchRequest` first. The encoder is
    /// reset, so afterwards it holds a complete encoding that
    /// [`BatchRequest::from_wire`] and [`BatchRequestView`] both accept.
    ///
    /// This is the gateway's allocation-free drain path: the shard worker
    /// encodes its queue directly from the `VecDeque` into a long-lived
    /// per-worker encoder, so steady-state sweeps reuse one buffer instead
    /// of collecting a fresh item vector plus a fresh wire vector per batch.
    pub fn encode_items_into<'a, I>(enc: &mut Encoder, items: I)
    where
        I: ExactSizeIterator<Item = &'a BatchItem>,
    {
        enc.reset();
        enc.put_varint(items.len() as u64);
        for item in items {
            item.encode(enc);
        }
    }
}

impl WireCodec for BatchRequest {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.items.len() as u64);
        for item in &self.items {
            item.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let n = dec.get_varint()? as usize;
        let mut items = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            items.push(BatchItem::decode(dec)?);
        }
        Ok(BatchRequest { items })
    }
}

/// Per-item outcome of a `PROCESS_BATCH` ECALL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOutcome {
    /// The item was processed; the payload is the nonce-prefixed encrypted
    /// [`ProcessResponse`] (which may itself be a rejection).
    ///
    /// `endorsed` publicly releases exactly one bit — whether the pipeline
    /// produced an endorsement — so the untrusted gateway can do admission
    /// control and billing without opening the response. The device forwards
    /// any endorsement to the service anyway, so this bit becomes public the
    /// moment the contribution is used; releasing it here (and nothing else)
    /// mirrors the paper's one-bit-verdict auditor discipline.
    Reply {
        /// Nonce-prefixed encrypted [`ProcessResponse`].
        ciphertext: Vec<u8>,
        /// Whether an endorsement was produced (validation passed).
        endorsed: bool,
    },
    /// The item could not be processed at all (unknown session, undecryptable
    /// ciphertext); nothing was released for it.
    Failed(String),
}

/// One reply slot of a batch, paired with the session it belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReplyItem {
    /// The session the reply belongs to.
    pub session_id: u64,
    /// What happened to the item.
    pub outcome: BatchOutcome,
}

impl WireCodec for BatchReplyItem {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.session_id);
        match &self.outcome {
            BatchOutcome::Reply {
                ciphertext,
                endorsed,
            } => {
                enc.put_u8(1);
                enc.put_bytes(ciphertext);
                enc.put_bool(*endorsed);
            }
            BatchOutcome::Failed(reason) => {
                enc.put_u8(0);
                enc.put_str(reason);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let session_id = dec.get_u64()?;
        let outcome = match dec.get_u8()? {
            1 => BatchOutcome::Reply {
                ciphertext: dec.get_bytes()?,
                endorsed: dec.get_bool()?,
            },
            0 => BatchOutcome::Failed(dec.get_str()?),
            other => return Err(WireError::InvalidBool(other)),
        };
        Ok(BatchReplyItem {
            session_id,
            outcome,
        })
    }
}

/// Reply marshalled out of the `PROCESS_BATCH` ECALL: one outcome per input
/// item, in the same order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchReply {
    /// Per-item outcomes.
    pub items: Vec<BatchReplyItem>,
}

impl BatchReply {
    /// Decodes a reply's items into a reusable vector — cleared first, with
    /// its capacity kept — instead of allocating a fresh `BatchReply` per
    /// drain sweep. On error the vector's contents are unspecified (the next
    /// call clears it again); full-consumption strictness matches
    /// [`BatchReply::from_wire`].
    pub fn decode_items_into(
        bytes: &[u8],
        items: &mut Vec<BatchReplyItem>,
    ) -> Result<(), WireError> {
        items.clear();
        let mut dec = Decoder::new(bytes);
        let n = dec.get_varint()? as usize;
        items.reserve(n.min(1 << 16));
        for _ in 0..n {
            items.push(BatchReplyItem::decode(&mut dec)?);
        }
        dec.finish()
    }
}

impl WireCodec for BatchReply {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.items.len() as u64);
        for item in &self.items {
            item.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let n = dec.get_varint()? as usize;
        let mut items = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            items.push(BatchReplyItem::decode(dec)?);
        }
        Ok(BatchReply { items })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_contribution() -> Contribution {
        Contribution {
            app_id: "nextwordpredictive.com".to_string(),
            client_id: 42,
            round: 7,
            payload: ContributionPayload::ModelUpdate {
                weights: vec![0.1, 0.9, 0.5],
            },
        }
    }

    #[test]
    fn payload_round_trips() {
        let payloads = vec![
            ContributionPayload::ModelUpdate {
                weights: vec![0.0, 0.5, 538.0],
            },
            ContributionPayload::Photo {
                photo_hash: [9u8; 32],
                claimed_lat: 43.66,
                claimed_lon: -79.39,
            },
            ContributionPayload::IotReadings {
                samples: vec![20.5, 21.0],
            },
        ];
        for p in payloads {
            let bytes = p.to_wire();
            assert_eq!(ContributionPayload::from_wire(&bytes).unwrap(), p);
        }
        assert!(ContributionPayload::from_wire(&[99]).is_err());
    }

    #[test]
    fn blinding_requirements() {
        assert!(ContributionPayload::ModelUpdate { weights: vec![] }.requires_blinding());
        assert!(ContributionPayload::IotReadings { samples: vec![] }.requires_blinding());
        assert!(!ContributionPayload::Photo {
            photo_hash: [0u8; 32],
            claimed_lat: 0.0,
            claimed_lon: 0.0
        }
        .requires_blinding());
    }

    #[test]
    fn private_data_round_trips() {
        let cases = vec![
            PrivateData::None,
            PrivateData::KeyboardLog {
                sentences: vec![vec![1, 2, 3], vec![], vec![7]],
            },
            PrivateData::GpsTrack {
                points: vec![
                    (43.66, -79.39, 1_700_000_000),
                    (43.67, -79.38, 1_700_000_060),
                ],
                camera_fingerprint: [3u8; 32],
            },
            PrivateData::BotSignals {
                signals: vec![
                    ("mouse_entropy".to_string(), 0.8),
                    ("js_fidelity".to_string(), 1.0),
                ],
            },
        ];
        for c in cases {
            assert_eq!(PrivateData::from_wire(&c.to_wire()).unwrap(), c);
        }
        assert!(PrivateData::from_wire(&[77]).is_err());
    }

    #[test]
    fn contribution_and_request_round_trip() {
        let contribution = sample_contribution();
        assert_eq!(
            Contribution::from_wire(&contribution.to_wire()).unwrap(),
            contribution
        );
        let request = ProcessRequest {
            contribution,
            private_data: PrivateData::KeyboardLog {
                sentences: vec![vec![1, 2]],
            },
        };
        assert_eq!(
            ProcessRequest::from_wire(&request.to_wire()).unwrap(),
            request
        );
    }

    #[test]
    fn verdict_constructors_and_round_trip() {
        let pass = ValidationVerdict::pass();
        assert!(pass.passed);
        let fail = ValidationVerdict::fail("weight 538 outside [0,1]");
        assert!(!fail.passed);
        assert!(fail.reason.contains("538"));
        let partial = ValidationVerdict::with_confidence(true, 7.0, "clamped");
        assert_eq!(partial.confidence, 1.0);
        for v in [pass, fail, partial] {
            assert_eq!(ValidationVerdict::from_wire(&v.to_wire()).unwrap(), v);
        }
    }

    #[test]
    fn endorsement_and_response_round_trip() {
        let endorsed = EndorsedContribution {
            app_id: "app".to_string(),
            client_id: 1,
            round: 2,
            released_payload: vec![1, 2, 3],
            blinded: true,
            signature: vec![9u8; 64],
        };
        assert_eq!(
            EndorsedContribution::from_wire(&endorsed.to_wire()).unwrap(),
            endorsed
        );
        // The signed bytes bind the app, client, round, and payload.
        let mut other = endorsed.clone();
        other.round = 3;
        assert_ne!(endorsed.signed_bytes(), other.signed_bytes());

        let responses = vec![
            ProcessResponse::Endorsed(endorsed),
            ProcessResponse::Rejected {
                reason: "range".to_string(),
            },
        ];
        for r in responses {
            assert_eq!(ProcessResponse::from_wire(&r.to_wire()).unwrap(), r);
        }
    }

    #[test]
    fn session_and_batch_messages_round_trip() {
        let open = SessionOpenRequest {
            session_id: 9,
            qe_measurement: [4u8; 32],
        };
        assert_eq!(
            SessionOpenRequest::from_wire(&open.to_wire()).unwrap(),
            open
        );

        let accept = SessionAcceptRequest {
            session_id: 9,
            accept: vec![1, 2, 3],
        };
        assert_eq!(
            SessionAcceptRequest::from_wire(&accept.to_wire()).unwrap(),
            accept
        );

        let batch = BatchRequest {
            items: vec![
                BatchItem {
                    session_id: 1,
                    ciphertext: vec![5; 20],
                },
                BatchItem {
                    session_id: 2,
                    ciphertext: vec![],
                },
            ],
        };
        assert_eq!(BatchRequest::from_wire(&batch.to_wire()).unwrap(), batch);
        assert_eq!(
            BatchRequest::from_wire(&BatchRequest::default().to_wire()).unwrap(),
            BatchRequest::default()
        );

        let reply = BatchReply {
            items: vec![
                BatchReplyItem {
                    session_id: 1,
                    outcome: BatchOutcome::Reply {
                        ciphertext: vec![9; 16],
                        endorsed: true,
                    },
                },
                BatchReplyItem {
                    session_id: 2,
                    outcome: BatchOutcome::Failed("no such session".to_string()),
                },
            ],
        };
        assert_eq!(BatchReply::from_wire(&reply.to_wire()).unwrap(), reply);
        assert!(BatchReplyItem::from_wire(&[0u8; 9]).is_err());
    }

    #[test]
    fn streamed_batch_encode_and_reusable_reply_decode_match_owned_paths() {
        let batch = BatchRequest {
            items: vec![
                BatchItem {
                    session_id: 3,
                    ciphertext: vec![0xCD; 40],
                },
                BatchItem {
                    session_id: 5,
                    ciphertext: vec![1, 2],
                },
            ],
        };
        // Streaming from an iterator produces byte-identical wire encoding,
        // and resetting means a dirty encoder can be reused directly.
        let mut enc = Encoder::new();
        enc.put_str("stale bytes from the previous sweep");
        BatchRequest::encode_items_into(&mut enc, batch.items.iter());
        assert_eq!(enc.as_slice(), batch.to_wire().as_slice());
        // Empty sweeps encode an empty batch.
        BatchRequest::encode_items_into(&mut enc, std::iter::empty());
        assert_eq!(enc.as_slice(), BatchRequest::default().to_wire().as_slice());

        let reply = BatchReply {
            items: vec![
                BatchReplyItem {
                    session_id: 3,
                    outcome: BatchOutcome::Reply {
                        ciphertext: vec![9; 16],
                        endorsed: true,
                    },
                },
                BatchReplyItem {
                    session_id: 5,
                    outcome: BatchOutcome::Failed("nope".to_string()),
                },
            ],
        };
        let wire = reply.to_wire();
        let mut items = vec![BatchReplyItem {
            session_id: 999,
            outcome: BatchOutcome::Failed("stale".to_string()),
        }];
        BatchReply::decode_items_into(&wire, &mut items).unwrap();
        assert_eq!(items, reply.items);
        // Trailing garbage is rejected with the same strictness as from_wire.
        let mut trailing = wire.clone();
        trailing.push(0xAA);
        assert_eq!(
            BatchReply::decode_items_into(&trailing, &mut items),
            Err(WireError::TrailingBytes(1))
        );
        // Truncation errors out rather than yielding a partial success.
        assert!(BatchReply::decode_items_into(&wire[..wire.len() - 3], &mut items).is_err());
    }

    #[test]
    fn batch_view_borrows_without_copying_and_agrees_with_owned_decode() {
        let batch = BatchRequest {
            items: vec![
                BatchItem {
                    session_id: 7,
                    ciphertext: vec![0xAB; 24],
                },
                BatchItem {
                    session_id: 9,
                    ciphertext: vec![],
                },
                BatchItem {
                    session_id: 7,
                    ciphertext: vec![1, 2, 3],
                },
            ],
        };
        let wire = batch.to_wire();
        let view = BatchRequestView::new(&wire).unwrap();
        assert_eq!(view.len(), 3);
        let items: Vec<BatchItemRef<'_>> = view.map(Result::unwrap).collect();
        // Same contents as the owned decode...
        assert_eq!(
            items.iter().map(BatchItemRef::to_owned).collect::<Vec<_>>(),
            BatchRequest::from_wire(&wire).unwrap().items
        );
        // ...and the ciphertexts alias the wire buffer (true zero-copy).
        let wire_range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
        for item in &items {
            if !item.ciphertext.is_empty() {
                assert!(wire_range.contains(&(item.ciphertext.as_ptr() as usize)));
            }
        }

        // A fully-consumed well-formed view passes the finish check.
        let mut view = BatchRequestView::new(&wire).unwrap();
        assert!(view.by_ref().all(|item| item.is_ok()));
        view.finish().unwrap();

        // Trailing garbage after the declared items is rejected, exactly as
        // the owned decode path rejects it.
        let mut trailing = wire.clone();
        trailing.push(0xEE);
        let mut view = BatchRequestView::new(&trailing).unwrap();
        assert!(view.by_ref().all(|item| item.is_ok()));
        assert_eq!(view.finish(), Err(WireError::TrailingBytes(1)));
        assert!(BatchRequest::from_wire(&trailing).is_err());

        // A truncated encoding yields an error item, then fuses.
        let mut view = BatchRequestView::new(&wire[..wire.len() - 2]).unwrap();
        assert!(view.next().unwrap().is_ok());
        assert!(view.next().unwrap().is_ok());
        assert!(view.next().unwrap().is_err());
        assert!(view.next().is_none());

        // Empty batches are empty views.
        assert!(BatchRequestView::new(&BatchRequest::default().to_wire())
            .unwrap()
            .is_empty());
        // Garbage input errors at open (count varint) rather than panicking.
        assert!(BatchRequestView::new(&[0x80u8; 11]).is_err());
    }

    #[test]
    fn blinded_vector_decoding() {
        let mut enc = Encoder::new();
        enc.put_u64_vec(&[5, 6, 7]);
        let endorsed = EndorsedContribution {
            app_id: "app".to_string(),
            client_id: 1,
            round: 2,
            released_payload: enc.into_bytes(),
            blinded: true,
            signature: vec![],
        };
        assert_eq!(endorsed.blinded_vector().unwrap(), vec![5, 6, 7]);
        let bad = EndorsedContribution {
            released_payload: vec![0xFF],
            ..endorsed
        };
        assert!(bad.blinded_vector().is_err());
    }
}
