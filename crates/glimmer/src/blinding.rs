//! The Blinding component and blinding service.
//!
//! Section 3: "Assume the existence of a trusted blinding service ... that
//! computes N random blinding values p_i such that Σ p_i = 0. It then seals
//! each p_i value to the Glimmer code, and encrypts one of the sealed values
//! to each of N clients' public keys ... The Blinding component then computes
//! the blinded user contribution y_i = x_i + p_i."
//!
//! The implementation works over fixed-point vectors (`glimmer-federated`'s
//! encoding) so that the zero-sum property holds exactly in wrapping `u64`
//! arithmetic. Two mask constructions are provided:
//!
//! * [`BlindingService::zero_sum_masks`] — the paper's construction: N
//!   independent random vectors with the last chosen so the element-wise sum
//!   is zero.
//! * [`BlindingService::pairwise_masks`] — the Bonawitz-style pairwise
//!   construction, included as an ablation (each pair of clients shares a
//!   seed; masks cancel pairwise), which tolerates an untrusted aggregator
//!   learning nothing extra from subsets that exclude at most one client.

use glimmer_crypto::drbg::Drbg;
use glimmer_crypto::hkdf::derive_key_32;
use glimmer_federated::fixed::{add_vectors, sub_vectors};

/// One client's blinding mask for one aggregation round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskShare {
    /// The round this mask is valid for.
    pub round: u64,
    /// The client it was issued to.
    pub client_id: u64,
    /// The additive mask (fixed-point, wrapping arithmetic).
    pub mask: Vec<u64>,
}

impl MaskShare {
    /// Applies the mask: `blinded = contribution + mask (mod 2^64)`.
    #[must_use]
    pub fn blind(&self, contribution: &[u64]) -> Vec<u64> {
        add_vectors(contribution, &self.mask)
    }

    /// Removes the mask (used in tests and by the pairwise ablation).
    #[must_use]
    pub fn unblind(&self, blinded: &[u64]) -> Vec<u64> {
        sub_vectors(blinded, &self.mask)
    }
}

/// The trusted blinding service.
///
/// "which could, itself, be implemented as a separate enclave on one of the
/// clients, or as a distinct trusted service" — in the reproduction it is a
/// deterministic value seeded per round, and the IoT/remote experiments run
/// it inside an enclave via `remote::RemoteGlimmerHost`.
#[derive(Debug, Clone)]
pub struct BlindingService {
    seed: [u8; 32],
}

impl BlindingService {
    /// Creates a service from a master seed.
    #[must_use]
    pub fn new(seed: [u8; 32]) -> Self {
        BlindingService { seed }
    }

    /// Generates zero-sum masks for `clients` participating clients and a
    /// `dimension`-parameter model in `round`.
    ///
    /// The element-wise sum of all returned masks is zero (mod 2^64), so the
    /// service recovers the exact sum of contributions when it adds all
    /// blinded vectors.
    #[must_use]
    pub fn zero_sum_masks(&self, round: u64, clients: &[u64], dimension: usize) -> Vec<MaskShare> {
        if clients.is_empty() {
            return Vec::new();
        }
        let mut rng = self.round_rng(round);
        let mut shares: Vec<MaskShare> = Vec::with_capacity(clients.len());
        let mut running_sum = vec![0u64; dimension];
        for (idx, &client_id) in clients.iter().enumerate() {
            if idx + 1 == clients.len() {
                // Last client gets the negation of the running sum.
                let mask: Vec<u64> = running_sum.iter().map(|v| v.wrapping_neg()).collect();
                shares.push(MaskShare {
                    round,
                    client_id,
                    mask,
                });
            } else {
                let mut mask = vec![0u64; dimension];
                for m in mask.iter_mut() {
                    *m = rng.next_u64();
                }
                running_sum = add_vectors(&running_sum, &mask);
                shares.push(MaskShare {
                    round,
                    client_id,
                    mask,
                });
            }
        }
        shares
    }

    /// Generates pairwise masks (Bonawitz-style): client `i` adds
    /// `PRG(seed_ij)` for every `j > i` and subtracts it for every `j < i`,
    /// so all masks cancel in the full sum.
    #[must_use]
    pub fn pairwise_masks(&self, round: u64, clients: &[u64], dimension: usize) -> Vec<MaskShare> {
        let n = clients.len();
        let mut masks: Vec<Vec<u64>> = vec![vec![0u64; dimension]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let pair_seed = derive_key_32(
                    &self.seed,
                    &format!("pair:{round}:{}:{}", clients[i], clients[j]),
                );
                let mut rng = Drbg::from_seed(pair_seed);
                let shared: Vec<u64> = (0..dimension).map(|_| rng.next_u64()).collect();
                masks[i] = add_vectors(&masks[i], &shared);
                masks[j] = sub_vectors(&masks[j], &shared);
            }
        }
        clients
            .iter()
            .zip(masks)
            .map(|(&client_id, mask)| MaskShare {
                round,
                client_id,
                mask,
            })
            .collect()
    }

    /// The additive correction the aggregator must apply when some of the
    /// round's clients dropped out (e.g., their contribution was rejected by
    /// their Glimmer), so that the surviving masks still cancel.
    ///
    /// The correction equals the element-wise sum of the missing clients'
    /// masks: `Σ_present (x_i + p_i) + correction = Σ_present x_i`.
    #[must_use]
    pub fn dropout_correction(
        &self,
        round: u64,
        clients: &[u64],
        dimension: usize,
        present: &[u64],
    ) -> Vec<u64> {
        let present: std::collections::HashSet<u64> = present.iter().copied().collect();
        let mut correction = vec![0u64; dimension];
        for share in self.zero_sum_masks(round, clients, dimension) {
            if !present.contains(&share.client_id) {
                correction = add_vectors(&correction, &share.mask);
            }
        }
        correction
    }

    /// The mask for a single client under the zero-sum construction, without
    /// materializing every other client's mask (the client list and order
    /// must match the service's).
    #[must_use]
    pub fn mask_for(
        &self,
        round: u64,
        clients: &[u64],
        dimension: usize,
        client_id: u64,
    ) -> Option<MaskShare> {
        self.zero_sum_masks(round, clients, dimension)
            .into_iter()
            .find(|m| m.client_id == client_id)
    }

    fn round_rng(&self, round: u64) -> Drbg {
        let seed = derive_key_32(&self.seed, &format!("round:{round}"));
        Drbg::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimmer_federated::fixed::{decode_weights, encode_weights};

    fn service() -> BlindingService {
        BlindingService::new([5u8; 32])
    }

    #[test]
    fn zero_sum_property() {
        let clients: Vec<u64> = (0..8).collect();
        let masks = service().zero_sum_masks(3, &clients, 16);
        assert_eq!(masks.len(), 8);
        let mut sum = vec![0u64; 16];
        for m in &masks {
            sum = add_vectors(&sum, &m.mask);
        }
        assert!(sum.iter().all(|&v| v == 0));
        // Masks are deterministic per round and differ across rounds.
        let again = service().zero_sum_masks(3, &clients, 16);
        assert_eq!(masks, again);
        let other_round = service().zero_sum_masks(4, &clients, 16);
        assert_ne!(masks, other_round);
    }

    #[test]
    fn pairwise_masks_cancel() {
        let clients: Vec<u64> = vec![10, 20, 30, 40, 50];
        let masks = service().pairwise_masks(1, &clients, 8);
        let mut sum = vec![0u64; 8];
        for m in &masks {
            sum = add_vectors(&sum, &m.mask);
        }
        assert!(sum.iter().all(|&v| v == 0));
        // Individual masks are not zero.
        assert!(masks.iter().all(|m| m.mask.iter().any(|&v| v != 0)));
    }

    #[test]
    fn blinded_aggregate_equals_plain_aggregate() {
        let clients: Vec<u64> = (0..5).collect();
        let dimension = 6;
        let contributions: Vec<Vec<f64>> = (0..5)
            .map(|i| {
                (0..dimension)
                    .map(|j| ((i + j) % 3) as f64 * 0.25)
                    .collect()
            })
            .collect();
        let encoded: Vec<Vec<u64>> = contributions.iter().map(|c| encode_weights(c)).collect();

        for masks in [
            service().zero_sum_masks(9, &clients, dimension),
            service().pairwise_masks(9, &clients, dimension),
        ] {
            let blinded: Vec<Vec<u64>> = encoded
                .iter()
                .zip(&masks)
                .map(|(c, m)| m.blind(c))
                .collect();
            // Individual blinded vectors differ from the raw ones.
            for (b, c) in blinded.iter().zip(&encoded) {
                assert_ne!(b, c);
            }
            // But the sums agree exactly.
            let mut blinded_sum = vec![0u64; dimension];
            let mut plain_sum = vec![0u64; dimension];
            for (b, c) in blinded.iter().zip(&encoded) {
                blinded_sum = add_vectors(&blinded_sum, b);
                plain_sum = add_vectors(&plain_sum, c);
            }
            assert_eq!(blinded_sum, plain_sum);
            let decoded = decode_weights(&blinded_sum);
            let expected: Vec<f64> = (0..dimension)
                .map(|j| contributions.iter().map(|c| c[j]).sum::<f64>())
                .collect();
            for (a, b) in decoded.iter().zip(expected.iter()) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn blind_unblind_round_trip() {
        let clients = vec![1, 2, 3];
        let masks = service().zero_sum_masks(0, &clients, 4);
        let contribution = encode_weights(&[0.1, 0.2, 0.3, 0.4]);
        let blinded = masks[0].blind(&contribution);
        assert_eq!(masks[0].unblind(&blinded), contribution);
    }

    #[test]
    fn mask_for_matches_batch_generation() {
        let clients = vec![7, 8, 9, 10];
        let all = service().zero_sum_masks(2, &clients, 3);
        for &c in &clients {
            let single = service().mask_for(2, &clients, 3, c).unwrap();
            assert_eq!(&single, all.iter().find(|m| m.client_id == c).unwrap());
        }
        assert!(service().mask_for(2, &clients, 3, 999).is_none());
    }

    #[test]
    fn dropout_correction_restores_the_sum() {
        let clients: Vec<u64> = vec![1, 2, 3, 4, 5];
        let dim = 4;
        let masks = service().zero_sum_masks(6, &clients, dim);
        let contributions: Vec<Vec<u64>> = (0..5)
            .map(|i| encode_weights(&vec![0.1 * (i + 1) as f64; dim]))
            .collect();
        // Clients 2 and 4 drop out.
        let present: Vec<u64> = vec![1, 3, 5];
        let mut sum = vec![0u64; dim];
        for (i, &c) in clients.iter().enumerate() {
            if present.contains(&c) {
                sum = add_vectors(&sum, &masks[i].blind(&contributions[i]));
            }
        }
        let correction = service().dropout_correction(6, &clients, dim, &present);
        sum = add_vectors(&sum, &correction);
        let decoded = decode_weights(&sum);
        // Expected plain sum over clients 1, 3, 5 (indices 0, 2, 4).
        let expected = 0.1 + 0.3 + 0.5;
        for v in decoded {
            assert!((v - expected).abs() < 1e-6, "{v}");
        }
        // No dropouts → zero correction.
        let none = service().dropout_correction(6, &clients, dim, &clients);
        assert!(none.iter().all(|&v| v == 0));
    }

    #[test]
    fn degenerate_cases() {
        assert!(service().zero_sum_masks(0, &[], 4).is_empty());
        // A single client gets the all-zero mask (sum of one mask must be zero).
        let single = service().zero_sum_masks(0, &[42], 4);
        assert_eq!(single.len(), 1);
        assert!(single[0].mask.iter().all(|&v| v == 0));
        // Zero-dimension masks are fine.
        let empty_dim = service().zero_sum_masks(0, &[1, 2], 0);
        assert!(empty_dim.iter().all(|m| m.mask.is_empty()));
    }
}
