//! Validation confidentiality (Section 4.1).
//!
//! "The web service may wish to hide the exact validation predicate from the
//! adversary ... Glimmers can provide validation confidentiality by accepting
//! encrypted code and data from the web service and decrypting and running
//! that code inside the enclave where the plain text code is protected from
//! observation by the hardware TEE."
//!
//! The "code" delivered here is a [`crate::validation::BotDetectorSpec`] — a
//! declarative detector the enclave instantiates — encrypted under the
//! service→Glimmer AEAD key of the attested channel. The result sent back to
//! the service is a [`BotVerdict`]: a challenge echo, exactly one bit, and a
//! MAC, which is what the runtime auditor (Section 4.1's second challenge)
//! checks before anything leaves the enclave.

use crate::protocol::frame_type;
use crate::validation::BotDetectorSpec;
use crate::{GlimmerError, Result};
use glimmer_crypto::aead::AeadKey;
use glimmer_crypto::hmac::{hmac_sha256, hmac_sha256_verify};
use glimmer_wire::{Decoder, Encoder, Frame, WireCodec, WireError};

/// Domain-separation label for predicate encryption.
const PREDICATE_AAD: &[u8] = b"glimmer-confidential-predicate-v1";

/// An encrypted validation predicate in transit from the service to the
/// Glimmer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptedPredicate {
    /// AEAD nonce.
    pub nonce: [u8; 12],
    /// AEAD ciphertext and tag over the serialized spec.
    pub ciphertext: Vec<u8>,
}

impl WireCodec for EncryptedPredicate {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_raw(&self.nonce);
        enc.put_bytes(&self.ciphertext);
    }

    fn decode(dec: &mut Decoder<'_>) -> core::result::Result<Self, WireError> {
        let raw = dec.get_raw(12)?;
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&raw);
        Ok(EncryptedPredicate {
            nonce,
            ciphertext: dec.get_bytes()?,
        })
    }
}

/// Service side: encrypts a detector spec for delivery over the channel.
#[must_use]
pub fn seal_predicate(
    spec: &BotDetectorSpec,
    key: &AeadKey,
    nonce: [u8; 12],
) -> EncryptedPredicate {
    EncryptedPredicate {
        nonce,
        ciphertext: key.seal(&nonce, PREDICATE_AAD, &spec.to_wire()),
    }
}

/// Glimmer side: decrypts and parses a detector spec received over the
/// channel.
pub fn open_predicate(encrypted: &EncryptedPredicate, key: &AeadKey) -> Result<BotDetectorSpec> {
    let plain = key
        .open(&encrypted.nonce, PREDICATE_AAD, &encrypted.ciphertext)
        .map_err(|_| GlimmerError::Channel("encrypted predicate failed to decrypt".to_string()))?;
    BotDetectorSpec::from_wire(&plain).map_err(GlimmerError::from)
}

/// The single-bit verdict the Glimmer releases to the web service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BotVerdict {
    /// The service-supplied challenge this verdict answers (prevents replay).
    pub challenge: [u8; 32],
    /// The one bit of information: human (`true`) or bot (`false`).
    pub human: bool,
    /// MAC over the challenge and bit, keyed by the channel MAC key.
    pub mac: [u8; 32],
}

impl BotVerdict {
    /// Creates and authenticates a verdict.
    #[must_use]
    pub fn new(challenge: [u8; 32], human: bool, mac_key: &[u8; 32]) -> Self {
        let mac = Self::compute_mac(&challenge, human, mac_key);
        BotVerdict {
            challenge,
            human,
            mac,
        }
    }

    fn compute_mac(challenge: &[u8; 32], human: bool, mac_key: &[u8; 32]) -> [u8; 32] {
        let mut msg = Vec::with_capacity(33 + 24);
        msg.extend_from_slice(b"glimmer-bot-verdict-v1");
        msg.extend_from_slice(challenge);
        msg.push(u8::from(human));
        hmac_sha256(mac_key, &msg)
    }

    /// Service side: verifies the verdict's MAC and challenge binding.
    #[must_use]
    pub fn verify(&self, expected_challenge: &[u8; 32], mac_key: &[u8; 32]) -> bool {
        if &self.challenge != expected_challenge {
            return false;
        }
        let mut msg = Vec::with_capacity(33 + 24);
        msg.extend_from_slice(b"glimmer-bot-verdict-v1");
        msg.extend_from_slice(&self.challenge);
        msg.push(u8::from(self.human));
        hmac_sha256_verify(mac_key, &msg, &self.mac)
    }

    /// Wraps the verdict in the public wire frame the auditor inspects.
    #[must_use]
    pub fn to_frame(&self) -> Frame {
        Frame::new(frame_type::BOT_VERDICT, self.to_wire())
    }
}

impl WireCodec for BotVerdict {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_array32(&self.challenge);
        enc.put_bool(self.human);
        enc.put_array32(&self.mac);
    }

    fn decode(dec: &mut Decoder<'_>) -> core::result::Result<Self, WireError> {
        Ok(BotVerdict {
            challenge: dec.get_array32()?,
            human: dec.get_bool()?,
            mac: dec.get_array32()?,
        })
    }
}

/// Exact serialized size of a [`BotVerdict`] payload; the auditor enforces it.
pub const BOT_VERDICT_WIRE_LEN: usize = 32 + 1 + 32;

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> AeadKey {
        AeadKey::from_master(&[6u8; 32])
    }

    #[test]
    fn predicate_round_trip_over_the_channel() {
        let spec = BotDetectorSpec::example();
        let encrypted = seal_predicate(&spec, &key(), [3u8; 12]);
        // Survives the wire.
        let encrypted = EncryptedPredicate::from_wire(&encrypted.to_wire()).unwrap();
        let opened = open_predicate(&encrypted, &key()).unwrap();
        assert_eq!(opened, spec);
    }

    #[test]
    fn predicate_is_opaque_without_the_key_and_tamper_proof() {
        let spec = BotDetectorSpec::example();
        let encrypted = seal_predicate(&spec, &key(), [3u8; 12]);
        // The ciphertext does not contain the plaintext spec bytes.
        let plain = spec.to_wire();
        assert_ne!(
            &encrypted.ciphertext[..plain.len().min(encrypted.ciphertext.len())],
            &plain[..plain.len().min(encrypted.ciphertext.len())]
        );

        let other_key = AeadKey::from_master(&[7u8; 32]);
        assert!(open_predicate(&encrypted, &other_key).is_err());

        let mut tampered = encrypted.clone();
        tampered.ciphertext[0] ^= 1;
        assert!(open_predicate(&tampered, &key()).is_err());

        assert!(EncryptedPredicate::from_wire(&[1, 2, 3]).is_err());
    }

    #[test]
    fn verdict_mac_and_challenge_binding() {
        let mac_key = [9u8; 32];
        let challenge = [0xAAu8; 32];
        let verdict = BotVerdict::new(challenge, true, &mac_key);
        assert!(verdict.verify(&challenge, &mac_key));

        // Wrong challenge (replay to a different session) fails.
        assert!(!verdict.verify(&[0xBBu8; 32], &mac_key));
        // Wrong key fails.
        assert!(!verdict.verify(&challenge, &[1u8; 32]));
        // Flipping the bit fails.
        let mut flipped = verdict.clone();
        flipped.human = false;
        assert!(!flipped.verify(&challenge, &mac_key));
    }

    #[test]
    fn verdict_wire_shape_is_fixed() {
        let verdict = BotVerdict::new([1u8; 32], false, &[2u8; 32]);
        let bytes = verdict.to_wire();
        assert_eq!(bytes.len(), BOT_VERDICT_WIRE_LEN);
        assert_eq!(BotVerdict::from_wire(&bytes).unwrap(), verdict);
        let frame = verdict.to_frame();
        assert_eq!(frame.msg_type, frame_type::BOT_VERDICT);
        assert_eq!(frame.payload.len(), BOT_VERDICT_WIRE_LEN);
    }
}
