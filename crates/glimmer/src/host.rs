//! The untrusted client-side host runtime.
//!
//! The host owns the simulated SGX platform, builds the Glimmer enclave from
//! its published descriptor, and shuttles wire-encoded requests in and out of
//! the enclave. It is *untrusted* in the paper's threat model: nothing in
//! this module can read enclave state, forge endorsements, or unseal the
//! service key — those guarantees come from `sgx-sim` and are exercised by
//! the integration tests.

use crate::blinding::MaskShare;
use crate::channel::{ChannelAccept, ChannelOffer};
use crate::confidential::EncryptedPredicate;
use crate::enclave_app::{
    ChannelReportReply, ConfidentialCheckRequest, GlimmerEnclaveProgram, GlimmerStatus,
    MaskDelivery, ProvisionRequest, GLIMMER_ISV_PROD_ID,
};
use crate::protocol::{
    ecall, BatchReply, BatchRequest, Contribution, PrivateData, ProcessRequest, ProcessResponse,
    SessionAcceptRequest, SessionMaskRequest, SessionOpenRequest,
};
use crate::validation::{BotDetectorSpec, PredicateKind, PredicateSpec};
use crate::{GlimmerError, Result};
use glimmer_crypto::drbg::Drbg;
use glimmer_wire::{Decoder, Encoder, Frame, WireCodec};
use sgx_sim::enclave::NoOcalls;
use sgx_sim::{
    AttestationService, CostReport, EnclaveAttributes, EnclaveId, EnclaveImage, Measurement,
    Platform, PlatformConfig, Report,
};

/// The published, vetted description of a Glimmer build.
///
/// The descriptor plays the role of the enclave binary on real hardware: it
/// is what gets measured into MRENCLAVE, published by the vetting
/// organization ("the hash of the Glimmer is published", Section 3), and
/// checked by the verifiability policy.
#[derive(Debug, Clone, PartialEq)]
pub struct GlimmerDescriptor {
    /// Human-readable name.
    pub name: String,
    /// Version number (bumping it changes the measurement).
    pub version: u32,
    /// The application/service this Glimmer serves.
    pub app_id: String,
    /// The validation predicates, in evaluation order.
    pub predicate_specs: Vec<PredicateSpec>,
    /// Predicate kinds (derived from the specs; listed separately for policy
    /// checks and TCB accounting).
    pub predicates: Vec<PredicateKind>,
    /// Secret inputs the Glimmer is allowed to consume.
    pub secret_inputs: Vec<String>,
    /// Declared declassification points (the only ways data may leave).
    pub declassifiers: Vec<String>,
    /// Whether all loops in the (conceptual) enclave code are bounded.
    pub bounded_loops: bool,
    /// Whether the enclave code uses function pointers / dynamic dispatch.
    pub uses_function_pointers: bool,
    /// Heap pages to reserve in the EPC.
    pub heap_pages: usize,
    /// Number of TCS threads.
    pub threads: usize,
    /// The service's identity verifying key, embedded so the Glimmer can
    /// authenticate channel handshakes (empty when the channel is unused).
    pub service_verifying_key: Vec<u8>,
    /// Verdict-bit budget enforced by the output auditor per session.
    pub verdict_bit_budget: u64,
    /// Name of the vetting organization that signs this Glimmer.
    pub vetting_org: String,
}

impl GlimmerDescriptor {
    /// The default Glimmer for the predictive-keyboard service (Figures 1–3):
    /// range check plus keyboard corroboration, blinding, signing.
    #[must_use]
    pub fn keyboard_default() -> Self {
        GlimmerDescriptor {
            name: "glimmer-keyboard".to_string(),
            version: 1,
            app_id: "nextwordpredictive.com".to_string(),
            predicate_specs: vec![
                PredicateSpec::RangeCheck { min: 0.0, max: 1.0 },
                PredicateSpec::Plausibility,
                PredicateSpec::KeyboardCorroboration {
                    tolerance: 0.05,
                    min_support: 0.8,
                },
            ],
            predicates: vec![
                PredicateKind::RangeCheck,
                PredicateKind::Plausibility,
                PredicateKind::KeyboardCorroboration,
            ],
            secret_inputs: vec!["keyboard-log".to_string(), "local-model".to_string()],
            declassifiers: vec!["blinding".to_string(), "endorsement-signature".to_string()],
            bounded_loops: true,
            uses_function_pointers: false,
            heap_pages: 16,
            threads: 1,
            service_verifying_key: Vec::new(),
            verdict_bit_budget: 64,
            vetting_org: "eff".to_string(),
        }
    }

    /// A keyboard Glimmer with only the range check (the weakest predicate in
    /// the spectrum; used by the E6 ablation).
    #[must_use]
    pub fn keyboard_range_only() -> Self {
        let mut d = Self::keyboard_default();
        d.name = "glimmer-keyboard-range-only".to_string();
        d.predicate_specs = vec![PredicateSpec::RangeCheck { min: 0.0, max: 1.0 }];
        d.predicates = vec![PredicateKind::RangeCheck];
        d
    }

    /// A keyboard Glimmer with the full retraining check (the strongest,
    /// costliest predicate).
    #[must_use]
    pub fn keyboard_retrain() -> Self {
        let mut d = Self::keyboard_default();
        d.name = "glimmer-keyboard-retrain".to_string();
        d.predicate_specs = vec![
            PredicateSpec::RangeCheck { min: 0.0, max: 1.0 },
            PredicateSpec::RetrainCheck { tolerance: 1e-9 },
        ];
        d.predicates = vec![PredicateKind::RangeCheck, PredicateKind::RetrainCheck];
        d
    }

    /// The Glimmer for the photos-for-maps service.
    #[must_use]
    pub fn maps_default(expected_camera: [u8; 32]) -> Self {
        GlimmerDescriptor {
            name: "glimmer-maps".to_string(),
            version: 1,
            app_id: "crowdmaps.example".to_string(),
            predicate_specs: vec![
                PredicateSpec::RangeCheck { min: 0.0, max: 1.0 },
                PredicateSpec::PhotoLocation {
                    max_distance_km: 0.5,
                    expected_camera,
                },
            ],
            predicates: vec![PredicateKind::RangeCheck, PredicateKind::PhotoLocation],
            secret_inputs: vec!["gps-track".to_string(), "camera-fingerprint".to_string()],
            declassifiers: vec!["endorsement-signature".to_string()],
            bounded_loops: true,
            uses_function_pointers: false,
            heap_pages: 16,
            threads: 1,
            service_verifying_key: Vec::new(),
            verdict_bit_budget: 64,
            vetting_org: "eff".to_string(),
        }
    }

    /// The bot-detection Glimmer of Section 4.1: the detector arrives
    /// encrypted at runtime, so the descriptor only embeds the service key and
    /// the auditor budget.
    #[must_use]
    pub fn bot_detection_default(service_verifying_key: Vec<u8>, verdict_bit_budget: u64) -> Self {
        GlimmerDescriptor {
            name: "glimmer-botcheck".to_string(),
            version: 1,
            app_id: "webservice.example".to_string(),
            predicate_specs: vec![PredicateSpec::BotDetector(BotDetectorSpec::example())],
            predicates: vec![PredicateKind::BotDetector],
            secret_inputs: vec!["bot-signals".to_string()],
            declassifiers: vec!["bot-verdict-bit".to_string()],
            bounded_loops: true,
            uses_function_pointers: false,
            heap_pages: 8,
            threads: 1,
            service_verifying_key,
            verdict_bit_budget,
            vetting_org: "eff".to_string(),
        }
    }

    /// The Glimmer hosted remotely for IoT devices (Section 4.2).
    #[must_use]
    pub fn iot_default(service_verifying_key: Vec<u8>) -> Self {
        GlimmerDescriptor {
            name: "glimmer-iot".to_string(),
            version: 1,
            app_id: "iot-telemetry.example".to_string(),
            predicate_specs: vec![
                PredicateSpec::RangeCheck { min: 0.0, max: 1.0 },
                PredicateSpec::Plausibility,
            ],
            predicates: vec![PredicateKind::RangeCheck, PredicateKind::Plausibility],
            secret_inputs: vec!["sensor-stream".to_string()],
            declassifiers: vec!["blinding".to_string(), "endorsement-signature".to_string()],
            bounded_loops: true,
            uses_function_pointers: false,
            heap_pages: 8,
            threads: 2,
            service_verifying_key,
            verdict_bit_budget: 64,
            vetting_org: "eff".to_string(),
        }
    }

    /// The canonical measured byte encoding of the descriptor (the stand-in
    /// for the enclave binary).
    #[must_use]
    pub fn to_measured_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_str("glimmer-descriptor-v1");
        enc.put_str(&self.name);
        enc.put_u32(self.version);
        enc.put_str(&self.app_id);
        enc.put_varint(self.predicate_specs.len() as u64);
        for spec in &self.predicate_specs {
            spec.encode(&mut enc);
        }
        enc.put_varint(self.secret_inputs.len() as u64);
        for s in &self.secret_inputs {
            enc.put_str(s);
        }
        enc.put_varint(self.declassifiers.len() as u64);
        for d in &self.declassifiers {
            enc.put_str(d);
        }
        enc.put_bool(self.bounded_loops);
        enc.put_bool(self.uses_function_pointers);
        enc.put_u64(self.heap_pages as u64);
        enc.put_u64(self.threads as u64);
        enc.put_bytes(&self.service_verifying_key);
        enc.put_u64(self.verdict_bit_budget);
        enc.put_str(&self.vetting_org);
        enc.into_bytes()
    }

    /// The vetting organization's signer identity.
    #[must_use]
    pub fn signer_measurement(&self) -> Measurement {
        Measurement::of_bytes(format!("vetting-org:{}", self.vetting_org).as_bytes())
    }

    /// Builds the enclave image for this descriptor.
    #[must_use]
    pub fn build_image(&self) -> EnclaveImage {
        EnclaveImage::from_code(
            &self.to_measured_bytes(),
            self.signer_measurement(),
            EnclaveAttributes {
                debug: false,
                isv_prod_id: GLIMMER_ISV_PROD_ID,
                isv_svn: self.version as u16,
            },
            self.heap_pages,
            self.threads,
        )
    }

    /// The published measurement users and services compare attestations
    /// against.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.build_image().measurement()
    }
}

/// The client-device runtime driving a Glimmer enclave.
pub struct GlimmerClient {
    platform: Platform,
    enclave: EnclaveId,
    descriptor: GlimmerDescriptor,
}

// A client owns its platform outright, so it can move to whichever thread
// serves it — the gateway runtime relies on this to hand pool slots to
// shard workers. Not `Sync`: ECALLs take `&mut self`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<GlimmerClient>();
};

impl GlimmerClient {
    /// Creates a fresh platform and instantiates the Glimmer on it.
    pub fn new(
        descriptor: GlimmerDescriptor,
        platform_config: PlatformConfig,
        rng: &mut Drbg,
    ) -> Result<Self> {
        let platform = Platform::new(platform_config, rng);
        Self::on_platform(descriptor, platform)
    }

    /// Instantiates the Glimmer on an existing platform.
    pub fn on_platform(descriptor: GlimmerDescriptor, mut platform: Platform) -> Result<Self> {
        let image = descriptor.build_image();
        let program = Box::new(GlimmerEnclaveProgram::new(&descriptor));
        let enclave = platform.create_enclave(&image, program)?;
        Ok(GlimmerClient {
            platform,
            enclave,
            descriptor,
        })
    }

    /// The Glimmer's published measurement.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.descriptor.measurement()
    }

    /// The descriptor this client was built from.
    #[must_use]
    pub fn descriptor(&self) -> &GlimmerDescriptor {
        &self.descriptor
    }

    /// The underlying platform (for inspection).
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Accumulated simulated cost of all enclave operations so far.
    #[must_use]
    pub fn cost_report(&self) -> CostReport {
        self.platform.cost_report()
    }

    /// Provisions the platform with the attestation service so quotes can be
    /// produced.
    pub fn provision_platform(&mut self, avs: &mut AttestationService) {
        self.platform.provision(avs);
    }

    fn ecall(&mut self, selector: u16, data: &[u8]) -> Result<Vec<u8>> {
        self.platform
            .ecall(self.enclave, selector, data, &mut NoOcalls)
            .map_err(|e| match e {
                // The enclave marks aborts caused by rejected sealed or
                // AEAD-protected input (real SGX reports these as a status
                // code, not free text); surface them as the typed unseal
                // rejection so callers — the gateway's restore and encrypted
                // mask paths — can fail closed without string matching.
                sgx_sim::SgxError::EnclaveAbort(msg)
                    if msg.contains(crate::enclave_app::SEALED_REJECTED_MARKER) =>
                {
                    GlimmerError::Sgx(sgx_sim::SgxError::UnsealDenied(
                        "enclave rejected sealed or encrypted input",
                    ))
                }
                other => GlimmerError::from(other),
            })
    }

    /// Installs fresh service signing-key material; returns the sealed blob
    /// the host should persist for restarts.
    pub fn install_service_key(&mut self, secret: &[u8]) -> Result<Vec<u8>> {
        self.ecall(
            ecall::PROVISION,
            &ProvisionRequest::FreshKey(secret.to_vec()).to_wire(),
        )
    }

    /// Restores the service signing key from a previously exported sealed
    /// blob.
    pub fn restore_service_key(&mut self, sealed: &[u8]) -> Result<()> {
        self.ecall(
            ecall::PROVISION,
            &ProvisionRequest::Sealed(sealed.to_vec()).to_wire(),
        )?;
        Ok(())
    }

    /// Exports the sealed service-key blob for persistence.
    pub fn export_sealed_key(&mut self) -> Result<Vec<u8>> {
        self.ecall(ecall::EXPORT_SEALED_KEY, &[])
    }

    /// Exports the enclave's full serving state (signing key, session
    /// channel keys, masks, replay nonces, auditor counters) as a sealed
    /// blob bound to `header` — the gateway's checkpoint path. Only
    /// byte-identical Glimmer code on this platform, presenting the same
    /// header, can import the result.
    pub fn export_state(&mut self, header: &[u8]) -> Result<Vec<u8>> {
        self.ecall(ecall::EXPORT_STATE, header)
    }

    /// The incremental-checkpoint variant of [`Self::export_state`]: asks
    /// the enclave for its current state epoch and a fresh sealed export
    /// only when the state mutated since `known_epoch` (pass `None` to
    /// force an export regardless). Returns `(state_epoch, sealed_blob)`;
    /// the blob is `None` exactly when the enclave skipped the seal — the
    /// caller's existing export for `known_epoch` is still current.
    pub fn export_state_if_newer(
        &mut self,
        header: &[u8],
        known_epoch: Option<u64>,
    ) -> Result<(u64, Option<Vec<u8>>)> {
        let mut enc = Encoder::new();
        enc.put_bytes(header);
        enc.put_bool(known_epoch.is_none());
        enc.put_u64(known_epoch.unwrap_or(0));
        let reply = self.ecall(ecall::EXPORT_STATE_IF_NEWER, enc.as_slice())?;
        let mut dec = Decoder::new(&reply);
        let state_epoch = dec.get_u64()?;
        let sealed = if dec.get_bool()? {
            Some(dec.get_bytes()?)
        } else {
            None
        };
        dec.finish()?;
        Ok((state_epoch, sealed))
    }

    /// Imports a sealed serving-state blob into this (freshly built)
    /// enclave — the gateway's restore path. A blob bound to a different
    /// snapshot header, sealed by a different measurement, or sealed on a
    /// different platform fails closed with
    /// [`sgx_sim::SgxError::UnsealDenied`].
    ///
    /// `live_sessions` is the authoritative set of session ids the caller
    /// still routes: the enclave keeps exactly those and erases any other
    /// session state the export carried (sessions closed concurrently with
    /// the checkpoint barrier are in the sealed state but not the captured
    /// table — without pruning their keys would persist forever).
    pub fn import_state(
        &mut self,
        header: &[u8],
        sealed_state: &[u8],
        live_sessions: &[u64],
    ) -> Result<()> {
        let mut enc = Encoder::new();
        enc.put_bytes(header);
        enc.put_bytes(sealed_state);
        enc.put_u64_vec(live_sessions);
        self.ecall(ecall::IMPORT_STATE, enc.as_slice())?;
        Ok(())
    }

    /// Installs a blinding mask share (plaintext delivery).
    pub fn install_mask(&mut self, mask: &MaskShare) -> Result<()> {
        self.ecall(ecall::INSTALL_MASK, &MaskDelivery::plain(mask).to_wire())?;
        Ok(())
    }

    /// Installs a blinding mask share delivered encrypted under the attested
    /// channel.
    pub fn install_mask_delivery(&mut self, delivery: &MaskDelivery) -> Result<()> {
        self.ecall(ecall::INSTALL_MASK, &delivery.to_wire())?;
        Ok(())
    }

    /// Runs the full Glimmer pipeline over one contribution.
    pub fn process(
        &mut self,
        contribution: Contribution,
        private_data: PrivateData,
    ) -> Result<ProcessResponse> {
        let request = ProcessRequest {
            contribution,
            private_data,
        };
        let reply = self.ecall(ecall::PROCESS_CONTRIBUTION, &request.to_wire())?;
        ProcessResponse::from_wire(&reply).map_err(GlimmerError::from)
    }

    /// Starts the attested channel handshake: returns the offer to send to
    /// the service. The platform must already be provisioned for attestation.
    pub fn start_channel(&mut self) -> Result<ChannelOffer> {
        let target = self.platform.quoting_enclave_target();
        let reply_bytes = self.ecall(ecall::CHANNEL_REPORT, target.measurement.as_bytes())?;
        let reply = ChannelReportReply::from_wire(&reply_bytes)?;
        let report = Report::from_bytes(&reply.report)?;
        let quote = self.platform.quote_report(&report)?;
        Ok(ChannelOffer {
            app_id: self.descriptor.app_id.clone(),
            glimmer_dh_public: reply.dh_public,
            quote: quote.to_bytes(),
        })
    }

    /// Completes the attested channel with the service's response.
    pub fn complete_channel(&mut self, accept: &ChannelAccept) -> Result<()> {
        self.ecall(ecall::CHANNEL_COMPLETE, &accept.to_wire())?;
        Ok(())
    }

    /// Installs an encrypted validation predicate received from the service.
    pub fn install_encrypted_predicate(&mut self, predicate: &EncryptedPredicate) -> Result<()> {
        self.ecall(ecall::INSTALL_PREDICATE, &predicate.to_wire())?;
        Ok(())
    }

    /// Forwards an encrypted `ProcessRequest` (glimmer-as-a-service) into the
    /// enclave and returns the encrypted response, both opaque to this host.
    pub fn process_encrypted(&mut self, request_ciphertext: &[u8]) -> Result<Vec<u8>> {
        self.ecall(ecall::PROCESS_ENCRYPTED, request_ciphertext)
    }

    /// Opens a session-scoped attested channel (multi-tenant serving): the
    /// enclave starts a handshake bound to `session_id` and the host quotes
    /// the resulting report into an offer for the connecting device.
    pub fn open_session(&mut self, session_id: u64) -> Result<ChannelOffer> {
        let target = self.platform.quoting_enclave_target();
        let request = SessionOpenRequest {
            session_id,
            qe_measurement: target.measurement.0,
        };
        let reply_bytes = self.ecall(ecall::SESSION_OPEN, &request.to_wire())?;
        let reply = ChannelReportReply::from_wire(&reply_bytes)?;
        let report = Report::from_bytes(&reply.report)?;
        let quote = self.platform.quote_report(&report)?;
        Ok(ChannelOffer {
            app_id: self.descriptor.app_id.clone(),
            glimmer_dh_public: reply.dh_public,
            quote: quote.to_bytes(),
        })
    }

    /// Completes a session-scoped handshake with the device's response.
    pub fn accept_session(&mut self, session_id: u64, accept: &ChannelAccept) -> Result<()> {
        let request = SessionAcceptRequest {
            session_id,
            accept: accept.to_wire(),
        };
        self.ecall(ecall::SESSION_ACCEPT, &request.to_wire())?;
        Ok(())
    }

    /// Installs a blinding mask bound to `session_id`, authorizing that
    /// session to contribute as the mask's client id (pooled serving path).
    pub fn install_session_mask(&mut self, session_id: u64, mask: &MaskShare) -> Result<()> {
        self.install_session_mask_delivery(session_id, &MaskDelivery::plain(mask))
    }

    /// Installs a session-bound mask from an arbitrary delivery — in
    /// particular [`MaskDelivery::Encrypted`], sealed under the tenant's
    /// attested channel so an untrusted pool host never sees mask values.
    pub fn install_session_mask_delivery(
        &mut self,
        session_id: u64,
        delivery: &MaskDelivery,
    ) -> Result<()> {
        let request = SessionMaskRequest {
            session_id,
            delivery: delivery.to_wire(),
        };
        self.ecall(ecall::SESSION_INSTALL_MASK, &request.to_wire())?;
        Ok(())
    }

    /// Tears down a session, erasing its channel keys inside the enclave.
    pub fn close_session(&mut self, session_id: u64) -> Result<()> {
        self.ecall(ecall::SESSION_CLOSE, &session_id.to_le_bytes())?;
        Ok(())
    }

    /// Drains a whole batch of encrypted requests through the enclave in a
    /// single ECALL transition, returning one outcome per item (in order).
    /// This is the gateway's amortized serving path: the per-transition cost
    /// is paid once per batch instead of once per contribution.
    pub fn process_batch(&mut self, batch: &BatchRequest) -> Result<BatchReply> {
        let mut items = Vec::new();
        self.process_batch_into(&batch.to_wire(), &mut items)?;
        Ok(BatchReply { items })
    }

    /// The scratch-reuse variant of [`GlimmerClient::process_batch`]: takes a
    /// request already encoded in the `BatchRequest` wire format (see
    /// [`BatchRequest::encode_items_into`]) and decodes the outcomes into a
    /// caller-owned vector that is cleared, not reallocated, between drains.
    /// The gateway's shard workers own both buffers and reuse them across
    /// sweeps, so the steady-state host side of a drain allocates nothing
    /// per request.
    pub fn process_batch_into(
        &mut self,
        request_wire: &[u8],
        replies: &mut Vec<crate::protocol::BatchReplyItem>,
    ) -> Result<()> {
        let reply_bytes = self.ecall(ecall::PROCESS_BATCH, request_wire)?;
        BatchReply::decode_items_into(&reply_bytes, replies).map_err(GlimmerError::from)
    }

    /// Runs the confidential bot check and returns the audited verdict frame
    /// ready to forward to the service.
    pub fn confidential_check(
        &mut self,
        challenge: [u8; 32],
        private: PrivateData,
    ) -> Result<Frame> {
        let request = ConfidentialCheckRequest { challenge, private };
        let reply = self.ecall(ecall::CONFIDENTIAL_CHECK, &request.to_wire())?;
        Frame::from_bytes(&reply).map_err(GlimmerError::from)
    }

    /// Reads the Glimmer's provisioning status.
    pub fn status(&mut self) -> Result<GlimmerStatus> {
        let reply = self.ecall(ecall::STATUS, &[])?;
        GlimmerStatus::from_wire(&reply).map_err(GlimmerError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ContributionPayload;
    use crate::signing::ServiceKeyMaterial;

    fn rng() -> Drbg {
        Drbg::from_seed([50u8; 32])
    }

    fn keyboard_client() -> GlimmerClient {
        GlimmerClient::new(
            GlimmerDescriptor::keyboard_default(),
            PlatformConfig::default(),
            &mut rng(),
        )
        .unwrap()
    }

    #[test]
    fn descriptor_measurement_is_stable_and_version_sensitive() {
        let a = GlimmerDescriptor::keyboard_default();
        let b = GlimmerDescriptor::keyboard_default();
        assert_eq!(a.measurement(), b.measurement());
        let mut c = GlimmerDescriptor::keyboard_default();
        c.version = 2;
        assert_ne!(a.measurement(), c.measurement());
        let mut d = GlimmerDescriptor::keyboard_default();
        d.predicate_specs.pop();
        assert_ne!(a.measurement(), d.measurement());
        // Different flavours have different measurements.
        assert_ne!(
            GlimmerDescriptor::keyboard_range_only().measurement(),
            GlimmerDescriptor::keyboard_retrain().measurement()
        );
        assert_ne!(
            GlimmerDescriptor::maps_default([0u8; 32]).measurement(),
            GlimmerDescriptor::iot_default(vec![]).measurement()
        );
    }

    #[test]
    fn status_reflects_provisioning_steps() {
        let mut client = keyboard_client();
        let status = client.status().unwrap();
        assert!(!status.signing_key);
        assert!(!status.channel);
        assert_eq!(status.masks, 0);

        let material = ServiceKeyMaterial::generate(&mut rng()).unwrap();
        let sealed = client
            .install_service_key(&material.secret_bytes())
            .unwrap();
        assert!(!sealed.is_empty());
        let status = client.status().unwrap();
        assert!(status.signing_key);

        client
            .install_mask(&MaskShare {
                round: 0,
                client_id: 1,
                mask: vec![0u64; 4],
            })
            .unwrap();
        assert_eq!(client.status().unwrap().masks, 1);
        assert!(client.cost_report().ecalls >= 4);
    }

    #[test]
    fn sealed_key_export_and_restore_on_same_platform() {
        let mut client = keyboard_client();
        let material = ServiceKeyMaterial::generate(&mut rng()).unwrap();
        client
            .install_service_key(&material.secret_bytes())
            .unwrap();
        let sealed = client.export_sealed_key().unwrap();

        // Simulate a restart: rebuild the enclave on the same platform... the
        // simplest faithful way is to restore into the same client (the blob
        // is bound to platform + measurement, both unchanged).
        client.restore_service_key(&sealed).unwrap();
        assert!(client.status().unwrap().signing_key);

        // A different platform (different fuse secrets) cannot restore the blob.
        let mut other = GlimmerClient::new(
            GlimmerDescriptor::keyboard_default(),
            PlatformConfig::default(),
            &mut Drbg::from_seed([51u8; 32]),
        )
        .unwrap();
        assert!(other.restore_service_key(&sealed).is_err());
    }

    #[test]
    fn state_export_imports_only_on_the_same_platform_with_the_same_header() {
        use sgx_sim::SgxError;
        let seed = [52u8; 32];
        let mut client = GlimmerClient::new(
            GlimmerDescriptor::keyboard_default(),
            PlatformConfig::default(),
            &mut Drbg::from_seed(seed),
        )
        .unwrap();
        let material = ServiceKeyMaterial::generate(&mut rng()).unwrap();
        client
            .install_service_key(&material.secret_bytes())
            .unwrap();
        client
            .install_mask(&MaskShare {
                round: 2,
                client_id: 9,
                mask: vec![1, 2, 3, 4],
            })
            .unwrap();
        let header = b"snapshot-header-epoch-1";
        let sealed = client.export_state(header).unwrap();

        // "Reboot the machine": the identical host rng stream reproduces the
        // platform (same simulated fuse secrets), and the enclave is rebuilt
        // empty — then refilled from the sealed export in one ECALL.
        let mut restored = GlimmerClient::new(
            GlimmerDescriptor::keyboard_default(),
            PlatformConfig::default(),
            &mut Drbg::from_seed(seed),
        )
        .unwrap();
        restored.import_state(header, &sealed, &[]).unwrap();
        let status = restored.status().unwrap();
        assert!(status.signing_key);
        assert_eq!(status.masks, 1);
        // The restored signing key still works end to end.
        assert!(restored.export_sealed_key().is_ok());

        // A different snapshot header fails closed, typed.
        let mut wrong_header = GlimmerClient::new(
            GlimmerDescriptor::keyboard_default(),
            PlatformConfig::default(),
            &mut Drbg::from_seed(seed),
        )
        .unwrap();
        assert!(matches!(
            wrong_header.import_state(b"snapshot-header-epoch-2", &sealed, &[]),
            Err(GlimmerError::Sgx(SgxError::UnsealDenied(_)))
        ));

        // A different platform (different fuse secrets) fails closed, typed.
        let mut other_platform = GlimmerClient::new(
            GlimmerDescriptor::keyboard_default(),
            PlatformConfig::default(),
            &mut Drbg::from_seed([53u8; 32]),
        )
        .unwrap();
        assert!(matches!(
            other_platform.import_state(header, &sealed, &[]),
            Err(GlimmerError::Sgx(SgxError::UnsealDenied(_)))
        ));

        // A different measurement (v2 of the Glimmer) fails closed, typed.
        let mut v2_descriptor = GlimmerDescriptor::keyboard_default();
        v2_descriptor.version = 2;
        let mut other_code = GlimmerClient::new(
            v2_descriptor,
            PlatformConfig::default(),
            &mut Drbg::from_seed(seed),
        )
        .unwrap();
        assert!(matches!(
            other_code.import_state(header, &sealed, &[]),
            Err(GlimmerError::Sgx(SgxError::UnsealDenied(_)))
        ));

        // Import into an already-provisioned enclave is refused (it could
        // roll replay-nonce state backwards).
        assert!(restored.import_state(header, &sealed, &[]).is_err());
    }

    #[test]
    fn export_if_newer_skips_idle_state_and_resumes_across_restores() {
        let seed = [57u8; 32];
        let mut client = GlimmerClient::new(
            GlimmerDescriptor::keyboard_default(),
            PlatformConfig::default(),
            &mut Drbg::from_seed(seed),
        )
        .unwrap();
        let material = ServiceKeyMaterial::generate(&mut rng()).unwrap();
        client
            .install_service_key(&material.secret_bytes())
            .unwrap();

        // A forced export always seals, and reports the current epoch.
        let header = b"base-header";
        let (epoch, sealed) = client.export_state_if_newer(header, None).unwrap();
        let sealed = sealed.expect("forced export must seal");
        assert!(epoch > 0, "provisioning must have bumped the state epoch");

        // Nothing mutated since: the enclave skips the seal entirely.
        let (epoch2, skipped) = client.export_state_if_newer(header, Some(epoch)).unwrap();
        assert_eq!(epoch2, epoch);
        assert!(skipped.is_none());

        // A mutation (even this mask install) advances the epoch, so the
        // same handshake now produces a fresh sealed export.
        client
            .install_mask(&MaskShare {
                round: 1,
                client_id: 4,
                mask: vec![9, 9],
            })
            .unwrap();
        let (epoch3, resealed) = client.export_state_if_newer(header, Some(epoch)).unwrap();
        assert!(epoch3 > epoch);
        assert!(resealed.is_some());

        // A restored enclave continues the exporting incarnation's epoch:
        // the first post-restore delta can still skip idle state.
        let mut restored = GlimmerClient::new(
            GlimmerDescriptor::keyboard_default(),
            PlatformConfig::default(),
            &mut Drbg::from_seed(seed),
        )
        .unwrap();
        restored.import_state(header, &sealed, &[]).unwrap();
        let (epoch4, skipped) = restored.export_state_if_newer(header, Some(epoch)).unwrap();
        assert_eq!(epoch4, epoch);
        assert!(skipped.is_none());
    }

    #[test]
    fn import_keeps_exactly_the_live_session_set() {
        use crate::remote::IotDeviceSession;
        let seed = [54u8; 32];
        let mut avs = AttestationService::new([55u8; 32]);
        let mut client = GlimmerClient::new(
            GlimmerDescriptor::iot_default(Vec::new()),
            PlatformConfig::default(),
            &mut Drbg::from_seed(seed),
        )
        .unwrap();
        client.provision_platform(&mut avs);
        let material = ServiceKeyMaterial::generate(&mut rng()).unwrap();
        client
            .install_service_key(&material.secret_bytes())
            .unwrap();
        let approved = client.measurement();
        let mut dev_rng = Drbg::from_seed([56u8; 32]);
        for sid in [1u64, 2] {
            let offer = client.open_session(sid).unwrap();
            let (accept, _session) =
                IotDeviceSession::connect(&offer, &avs, &approved, &mut dev_rng).unwrap();
            client.accept_session(sid, &accept).unwrap();
        }
        assert_eq!(client.status().unwrap().sessions, 2);
        let header = b"snapshot-header";
        let sealed = client.export_state(header).unwrap();

        // A session can be closed concurrently with a gateway checkpoint
        // barrier: present in the sealed export, absent from the captured
        // table. Import keeps exactly the caller's live set and erases the
        // orphan's keys instead of carrying them across restarts forever.
        let mut restored = GlimmerClient::new(
            GlimmerDescriptor::iot_default(Vec::new()),
            PlatformConfig::default(),
            &mut Drbg::from_seed(seed),
        )
        .unwrap();
        restored.import_state(header, &sealed, &[2]).unwrap();
        assert_eq!(restored.status().unwrap().sessions, 1);
        assert!(restored.status().unwrap().signing_key);
    }

    #[test]
    fn processing_without_key_or_mask_is_refused() {
        let mut client = keyboard_client();
        let contribution = Contribution {
            app_id: "nextwordpredictive.com".to_string(),
            client_id: 3,
            round: 0,
            payload: ContributionPayload::ModelUpdate {
                weights: vec![0.0; 4],
            },
        };
        // Without a blinding mask the Glimmer refuses to release private data.
        let material = ServiceKeyMaterial::generate(&mut rng()).unwrap();
        client
            .install_service_key(&material.secret_bytes())
            .unwrap();
        let response = client
            .process(
                contribution.clone(),
                PrivateData::KeyboardLog { sentences: vec![] },
            )
            .unwrap();
        assert!(
            matches!(response, ProcessResponse::Rejected { ref reason } if reason.contains("mask"))
        );

        // Without a signing key processing aborts.
        let mut unprovisioned = keyboard_client();
        unprovisioned
            .install_mask(&MaskShare {
                round: 0,
                client_id: 3,
                mask: vec![0u64; 4],
            })
            .unwrap();
        let err =
            unprovisioned.process(contribution, PrivateData::KeyboardLog { sentences: vec![] });
        assert!(err.is_err());
    }
}
