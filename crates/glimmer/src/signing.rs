//! The Signing component: service key provisioning and endorsement
//! verification.
//!
//! Section 3: "If validation passed, the Signing component signs the
//! user-contributed input and returns it to the client for transmission to
//! the service. The signing key used can be provided by the service, and
//! sealed (using the SGX sealing facility) to the Glimmer code, so that it is
//! only available to instances of Glimmer enclaves."
//!
//! The service generates a Schnorr key pair, hands the secret half to the
//! Glimmer over the attested channel (or out of band at enrollment), and
//! keeps the public half to verify endorsements. Inside the enclave, the
//! secret is sealed under the `MrEnclave` policy, so only the approved
//! Glimmer measurement on that platform can ever use it again.

use crate::protocol::EndorsedContribution;
use crate::{GlimmerError, Result};
use glimmer_crypto::dh::DhGroup;
use glimmer_crypto::drbg::Drbg;
use glimmer_crypto::schnorr::{Signature, SigningKey, VerifyingKey};

/// The key material a service provisions into Glimmers for one application.
pub struct ServiceKeyMaterial {
    signing_key: SigningKey,
}

impl ServiceKeyMaterial {
    /// Generates fresh key material for an application.
    pub fn generate(rng: &mut Drbg) -> Result<Self> {
        let signing_key = SigningKey::generate(DhGroup::default_group(), rng)?;
        Ok(ServiceKeyMaterial { signing_key })
    }

    /// The secret bytes to deliver to (and seal inside) the Glimmer.
    #[must_use]
    pub fn secret_bytes(&self) -> Vec<u8> {
        self.signing_key.secret_bytes()
    }

    /// The verifier the service keeps for itself.
    #[must_use]
    pub fn verifier(&self) -> EndorsementVerifier {
        EndorsementVerifier {
            key: self.signing_key.verifying_key().clone(),
        }
    }
}

/// Signs an endorsement over the released payload, binding app, client,
/// round, and blinding flag. Used inside the enclave.
pub fn sign_endorsement(
    signing_key: &SigningKey,
    endorsement: &EndorsedContribution,
) -> Result<Vec<u8>> {
    let signature = signing_key.sign(&endorsement.signed_bytes())?;
    Ok(signature.to_bytes(signing_key.group()))
}

/// Restores a signing key from the secret bytes the service provisioned (and
/// the Glimmer unsealed).
pub fn signing_key_from_secret(secret: &[u8]) -> Result<SigningKey> {
    SigningKey::from_secret_bytes(DhGroup::default_group(), secret).map_err(GlimmerError::from)
}

/// The service-side verifier for Glimmer endorsements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EndorsementVerifier {
    key: VerifyingKey,
}

impl EndorsementVerifier {
    /// Constructs a verifier from serialized verifying-key bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        Ok(EndorsementVerifier {
            key: VerifyingKey::from_bytes(bytes)?,
        })
    }

    /// Serializes the verifying key.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.key.to_bytes()
    }

    /// Verifies an endorsed contribution's signature.
    ///
    /// Returns `Ok(())` when the endorsement is genuine; any tampering with
    /// the payload, metadata, or signature fails.
    pub fn verify(&self, endorsement: &EndorsedContribution) -> Result<()> {
        let (_, signature) = Signature::from_bytes(&endorsement.signature)?;
        self.key
            .verify(&endorsement.signed_bytes(), &signature)
            .map_err(GlimmerError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endorsement(payload: Vec<u8>) -> EndorsedContribution {
        EndorsedContribution {
            app_id: "keyboard".to_string(),
            client_id: 11,
            round: 4,
            released_payload: payload,
            blinded: true,
            signature: Vec::new(),
        }
    }

    #[test]
    fn provision_sign_verify_round_trip() {
        let mut rng = Drbg::from_seed([3u8; 32]);
        let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        let verifier = material.verifier();

        // The Glimmer receives the secret bytes and restores the key.
        let key = signing_key_from_secret(&material.secret_bytes()).unwrap();
        let mut endorsed = endorsement(vec![1, 2, 3, 4]);
        endorsed.signature = sign_endorsement(&key, &endorsed).unwrap();

        assert!(verifier.verify(&endorsed).is_ok());

        // Verifier round-trips through serialization.
        let restored = EndorsementVerifier::from_bytes(&verifier.to_bytes()).unwrap();
        assert_eq!(restored, verifier);
        assert!(restored.verify(&endorsed).is_ok());
    }

    #[test]
    fn tampering_is_detected() {
        let mut rng = Drbg::from_seed([3u8; 32]);
        let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        let key = signing_key_from_secret(&material.secret_bytes()).unwrap();
        let verifier = material.verifier();

        let mut endorsed = endorsement(vec![9, 9, 9]);
        endorsed.signature = sign_endorsement(&key, &endorsed).unwrap();

        // Payload tampering (e.g., the service or a network attacker changes
        // the blinded vector) invalidates the endorsement.
        let mut payload_tampered = endorsed.clone();
        payload_tampered.released_payload[0] ^= 1;
        assert!(verifier.verify(&payload_tampered).is_err());

        // Replaying under a different round fails.
        let mut round_tampered = endorsed.clone();
        round_tampered.round += 1;
        assert!(verifier.verify(&round_tampered).is_err());

        // Claiming it was blinded when it was not fails.
        let mut flag_tampered = endorsed.clone();
        flag_tampered.blinded = false;
        assert!(verifier.verify(&flag_tampered).is_err());

        // Garbage signature bytes fail cleanly.
        let mut garbage = endorsed.clone();
        garbage.signature = vec![0u8; 7];
        assert!(verifier.verify(&garbage).is_err());
    }

    #[test]
    fn endorsements_from_an_unapproved_key_fail() {
        let mut rng = Drbg::from_seed([3u8; 32]);
        let service_material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        let verifier = service_material.verifier();

        // A malicious client signs with its own key instead of the sealed
        // service key (it never had the real one).
        let rogue_material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        let rogue_key = signing_key_from_secret(&rogue_material.secret_bytes()).unwrap();
        let mut endorsed = endorsement(vec![5, 5, 5]);
        endorsed.signature = sign_endorsement(&rogue_key, &endorsed).unwrap();
        assert!(verifier.verify(&endorsed).is_err());
    }

    #[test]
    fn invalid_verifier_bytes_are_rejected() {
        assert!(EndorsementVerifier::from_bytes(&[]).is_err());
        assert!(EndorsementVerifier::from_bytes(&[1, 2, 3]).is_err());
        assert!(signing_key_from_secret(&[0u8; 8]).is_err());
    }
}
