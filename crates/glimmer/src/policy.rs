//! Verifiability policy and TCB accounting.
//!
//! Section 3 argues that "because the Glimmer is, necessarily, small and
//! limited in its external interactions, it is amenable to formal
//! verification", provided it is written with "relatively low-complexity
//! idioms (e.g., bounded loops, no function pointers, etc.), explicitly
//! marking secret inputs, explicitly marking declassification functions".
//! Running an external prover is out of scope for this reproduction (see
//! DESIGN.md), but the *architecture* that makes verification plausible is
//! reproduced and checked here:
//!
//! * every Glimmer build carries a [`crate::host::GlimmerDescriptor`]
//!   declaring its components, secret inputs, and declassifiers;
//! * [`check_verifiability`] enforces the structural rules the paper lists;
//! * [`TcbReport`] quantifies the trusted computing base (descriptor bytes,
//!   enclave pages, predicate inventory) for Experiment E10.

use crate::host::GlimmerDescriptor;
use crate::validation::PredicateKind;
use sgx_sim::{EnclaveImage, PAGE_SIZE};

/// A structural violation of the verifiability policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyViolation {
    /// The descriptor does not declare any declassifier, so no output could
    /// legitimately leave the Glimmer.
    NoDeclassifiers,
    /// The descriptor admits unbounded loops.
    UnboundedLoops,
    /// The descriptor admits function pointers / dynamic dispatch in the
    /// measured predicate code.
    FunctionPointers,
    /// A secret input is consumed but never listed as secret.
    UndeclaredSecret(String),
    /// The enclave heap is larger than the policy allows (keeps the TCB and
    /// attack surface small).
    HeapTooLarge {
        /// Pages requested by the descriptor.
        pages: usize,
        /// Maximum allowed by policy.
        limit: usize,
    },
    /// The Glimmer bundles more predicates than the policy allows in one
    /// enclave (each predicate increases the verification burden).
    TooManyPredicates {
        /// Number of predicates declared.
        count: usize,
        /// Maximum allowed by policy.
        limit: usize,
    },
}

impl core::fmt::Display for PolicyViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PolicyViolation::NoDeclassifiers => write!(f, "no declassifiers declared"),
            PolicyViolation::UnboundedLoops => write!(f, "unbounded loops admitted"),
            PolicyViolation::FunctionPointers => write!(f, "function pointers admitted"),
            PolicyViolation::UndeclaredSecret(s) => write!(f, "undeclared secret input: {s}"),
            PolicyViolation::HeapTooLarge { pages, limit } => {
                write!(f, "heap of {pages} pages exceeds limit of {limit}")
            }
            PolicyViolation::TooManyPredicates { count, limit } => {
                write!(f, "{count} predicates exceed limit of {limit}")
            }
        }
    }
}

/// Limits enforced by [`check_verifiability`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyLimits {
    /// Maximum heap pages a verifiable Glimmer may request.
    pub max_heap_pages: usize,
    /// Maximum number of predicates bundled into one enclave.
    pub max_predicates: usize,
}

impl Default for PolicyLimits {
    fn default() -> Self {
        PolicyLimits {
            max_heap_pages: 64,
            max_predicates: 4,
        }
    }
}

/// Checks the structural verifiability rules against a Glimmer descriptor.
#[must_use]
pub fn check_verifiability(
    descriptor: &GlimmerDescriptor,
    limits: PolicyLimits,
) -> Vec<PolicyViolation> {
    let mut violations = Vec::new();
    if descriptor.declassifiers.is_empty() {
        violations.push(PolicyViolation::NoDeclassifiers);
    }
    if !descriptor.bounded_loops {
        violations.push(PolicyViolation::UnboundedLoops);
    }
    if descriptor.uses_function_pointers {
        violations.push(PolicyViolation::FunctionPointers);
    }
    // Every predicate that consumes private data must have that data declared
    // as a secret input.
    for kind in &descriptor.predicates {
        let needed = match kind {
            PredicateKind::KeyboardCorroboration | PredicateKind::RetrainCheck => {
                Some("keyboard-log")
            }
            PredicateKind::PhotoLocation => Some("gps-track"),
            PredicateKind::BotDetector => Some("bot-signals"),
            PredicateKind::RangeCheck | PredicateKind::Plausibility | PredicateKind::AllOf => None,
        };
        if let Some(secret) = needed {
            if !descriptor.secret_inputs.iter().any(|s| s == secret) {
                violations.push(PolicyViolation::UndeclaredSecret(secret.to_string()));
            }
        }
    }
    if descriptor.heap_pages > limits.max_heap_pages {
        violations.push(PolicyViolation::HeapTooLarge {
            pages: descriptor.heap_pages,
            limit: limits.max_heap_pages,
        });
    }
    if descriptor.predicates.len() > limits.max_predicates {
        violations.push(PolicyViolation::TooManyPredicates {
            count: descriptor.predicates.len(),
            limit: limits.max_predicates,
        });
    }
    violations
}

/// Trusted-computing-base accounting for one Glimmer build (Experiment E10).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcbReport {
    /// Size of the measured descriptor in bytes (the stand-in for enclave
    /// binary size).
    pub descriptor_bytes: usize,
    /// Measured pages in the enclave image.
    pub measured_pages: usize,
    /// Total EPC pages including heap.
    pub total_pages: usize,
    /// Total EPC footprint in bytes.
    pub epc_bytes: usize,
    /// Number of validation predicates in the TCB.
    pub predicates: usize,
    /// Number of declared declassification points.
    pub declassifiers: usize,
    /// Whether the structural verifiability policy passed.
    pub verifiable: bool,
}

impl TcbReport {
    /// Builds a report from a descriptor and the enclave image built from it.
    #[must_use]
    pub fn from_build(descriptor: &GlimmerDescriptor, image: &EnclaveImage) -> Self {
        let violations = check_verifiability(descriptor, PolicyLimits::default());
        TcbReport {
            descriptor_bytes: descriptor.to_measured_bytes().len(),
            measured_pages: image.pages().len(),
            total_pages: image.total_pages(),
            epc_bytes: image.total_pages() * PAGE_SIZE,
            predicates: descriptor.predicates.len(),
            declassifiers: descriptor.declassifiers.len(),
            verifiable: violations.is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::GlimmerDescriptor;
    use crate::validation::PredicateSpec;

    fn keyboard_descriptor() -> GlimmerDescriptor {
        GlimmerDescriptor::keyboard_default()
    }

    #[test]
    fn default_keyboard_glimmer_is_verifiable() {
        let violations = check_verifiability(&keyboard_descriptor(), PolicyLimits::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn violations_are_detected() {
        let mut d = keyboard_descriptor();
        d.declassifiers.clear();
        d.bounded_loops = false;
        d.uses_function_pointers = true;
        d.secret_inputs.clear();
        d.heap_pages = 1000;
        d.predicates = vec![PredicateKind::KeyboardCorroboration; 10];
        let violations = check_verifiability(&d, PolicyLimits::default());
        assert!(violations.contains(&PolicyViolation::NoDeclassifiers));
        assert!(violations.contains(&PolicyViolation::UnboundedLoops));
        assert!(violations.contains(&PolicyViolation::FunctionPointers));
        assert!(violations
            .iter()
            .any(|v| matches!(v, PolicyViolation::UndeclaredSecret(_))));
        assert!(violations
            .iter()
            .any(|v| matches!(v, PolicyViolation::HeapTooLarge { .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, PolicyViolation::TooManyPredicates { .. })));
        for v in violations {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn secret_input_requirements_follow_predicates() {
        let mut d = keyboard_descriptor();
        d.predicates = vec![PredicateKind::PhotoLocation];
        d.secret_inputs = vec!["keyboard-log".to_string()];
        let violations = check_verifiability(&d, PolicyLimits::default());
        assert_eq!(
            violations,
            vec![PolicyViolation::UndeclaredSecret("gps-track".to_string())]
        );

        d.secret_inputs.push("gps-track".to_string());
        assert!(check_verifiability(&d, PolicyLimits::default()).is_empty());

        // Context-free predicates need no secrets.
        d.predicates = vec![PredicateKind::RangeCheck, PredicateKind::Plausibility];
        d.secret_inputs.clear();
        assert!(check_verifiability(&d, PolicyLimits::default()).is_empty());
    }

    #[test]
    fn tcb_report_reflects_descriptor_size() {
        let d = keyboard_descriptor();
        let image = d.build_image();
        let report = TcbReport::from_build(&d, &image);
        assert!(report.verifiable);
        assert_eq!(report.predicates, d.predicates.len());
        assert!(report.descriptor_bytes > 0);
        assert!(report.measured_pages >= 2);
        assert!(report.total_pages >= report.measured_pages);
        assert_eq!(report.epc_bytes, report.total_pages * PAGE_SIZE);

        // A Glimmer with more predicates has a strictly larger measured TCB.
        let mut bigger = d.clone();
        bigger
            .predicate_specs
            .push(PredicateSpec::RetrainCheck { tolerance: 1e-9 });
        bigger.predicates.push(PredicateKind::RetrainCheck);
        let bigger_report = TcbReport::from_build(&bigger, &bigger.build_image());
        assert!(bigger_report.descriptor_bytes > report.descriptor_bytes);
    }
}
