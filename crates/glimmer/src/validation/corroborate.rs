//! Corroboration predicates: checking the submitted model against the user's
//! actual keyboard activity.
//!
//! "A more sophisticated validator might instead observe actual keyboard
//! behavior (a la NAB) to match keyboard events to reported model weights; or
//! even observe CPU branches to identify a plausible execution of the
//! model-construction code that produced contributed partial results"
//! (Section 2). Two levels are implemented:
//!
//! * [`KeyboardCorroboration`] — tolerant, statistical: recomputes bigram
//!   frequencies from the private keyboard log and requires the submitted
//!   weights to be close and supported.
//! * [`RetrainCheck`] — the most invasive point on the spectrum: re-runs the
//!   exact training procedure on the private log and requires the submitted
//!   weights to match to within a tight tolerance, standing in for the
//!   execution-trace verification the paper cites.

use crate::protocol::{Contribution, ContributionPayload, PrivateData, ValidationVerdict};
use crate::validation::{PredicateKind, ValidationPredicate};
use glimmer_federated::trainer::train_local_model;
use glimmer_federated::{ModelSchema, Vocabulary};
use std::collections::HashMap;

/// Reconstructs the parameter space the submitted weights claim to describe.
///
/// The schema used for corroboration only needs a consistent indexing of the
/// submitted dimension; the Glimmer derives it from the contribution size so
/// that corroboration does not depend on shipping the full service schema
/// into the enclave. The service and client agree on the real schema; the
/// Glimmer checks internal consistency between the weights and the private
/// trace using bigram counts keyed by the same indices.
fn bigram_frequencies(sentences: &[Vec<u32>]) -> (HashMap<(u32, u32), f64>, usize) {
    let mut counts: HashMap<(u32, u32), u32> = HashMap::new();
    let mut prev_totals: HashMap<u32, u32> = HashMap::new();
    let mut bigrams = 0usize;
    for s in sentences {
        for w in s.windows(2) {
            *counts.entry((w[0], w[1])).or_insert(0) += 1;
            *prev_totals.entry(w[0]).or_insert(0) += 1;
            bigrams += 1;
        }
    }
    let freqs = counts
        .into_iter()
        .map(|((p, n), c)| {
            let total = prev_totals.get(&p).copied().unwrap_or(1).max(1);
            ((p, n), f64::from(c) / f64::from(total))
        })
        .collect();
    (freqs, bigrams)
}

/// Statistical corroboration of submitted weights against the keyboard log.
///
/// The check is deliberately schema-agnostic: it verifies that (a) the user
/// actually typed enough text to have produced a model at all, and (b) the
/// *distribution* of submitted non-zero weights is consistent with the
/// empirical bigram frequencies in the log (each submitted non-zero weight
/// must be within `tolerance` of some observed frequency, and at least
/// `min_support` of them must be matched).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyboardCorroboration {
    /// Maximum tolerated absolute error when matching a submitted weight to
    /// an observed frequency.
    pub tolerance: f64,
    /// Minimum fraction of non-zero submitted weights that must match some
    /// observed frequency.
    pub min_support: f64,
}

impl Default for KeyboardCorroboration {
    fn default() -> Self {
        KeyboardCorroboration {
            tolerance: 0.05,
            min_support: 0.8,
        }
    }
}

impl ValidationPredicate for KeyboardCorroboration {
    fn kind(&self) -> PredicateKind {
        PredicateKind::KeyboardCorroboration
    }

    fn cost_estimate(&self, contribution: &Contribution, private: &PrivateData) -> u64 {
        let dim = match &contribution.payload {
            ContributionPayload::ModelUpdate { weights } => weights.len() as u64,
            _ => 1,
        };
        let log = match private {
            PrivateData::KeyboardLog { sentences } => {
                sentences.iter().map(|s| s.len() as u64).sum::<u64>()
            }
            _ => 0,
        };
        200 * dim + 50 * log
    }

    fn validate(&self, contribution: &Contribution, private: &PrivateData) -> ValidationVerdict {
        let ContributionPayload::ModelUpdate { weights } = &contribution.payload else {
            return ValidationVerdict::fail("keyboard corroboration requires a model update");
        };
        let PrivateData::KeyboardLog { sentences } = private else {
            return ValidationVerdict::fail("keyboard corroboration requires the keyboard log");
        };
        let (frequencies, bigrams) = bigram_frequencies(sentences);
        let nonzero: Vec<f64> = weights.iter().copied().filter(|w| *w > 0.0).collect();

        if nonzero.is_empty() {
            // An all-zero contribution is trivially consistent.
            return ValidationVerdict::with_confidence(true, 0.5, "empty model");
        }
        if bigrams == 0 {
            return ValidationVerdict::fail(
                "model claims typing activity but the keyboard log is empty",
            );
        }
        if nonzero.len() > bigrams {
            return ValidationVerdict::fail(format!(
                "model has {} non-zero weights but only {} bigrams were typed",
                nonzero.len(),
                bigrams
            ));
        }
        let observed: Vec<f64> = frequencies.values().copied().collect();
        let mut supported = 0usize;
        for w in &nonzero {
            if observed.iter().any(|f| (f - w).abs() <= self.tolerance) {
                supported += 1;
            }
        }
        let support = supported as f64 / nonzero.len() as f64;
        if support < self.min_support {
            ValidationVerdict::with_confidence(
                false,
                1.0 - support,
                format!(
                    "only {:.0}% of submitted weights are corroborated by keyboard activity",
                    support * 100.0
                ),
            )
        } else {
            ValidationVerdict::with_confidence(true, support, "")
        }
    }
}

/// The most invasive validator: re-run the training code on the private log
/// and require the submission to match the honest result.
///
/// This stands in for the execution-trace verification the paper cites
/// (XTrec / online-game cheat detection): the Glimmer convinces itself that a
/// plausible execution of the model-construction code produced these weights
/// — by actually executing it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrainCheck {
    /// Maximum tolerated absolute per-parameter deviation.
    pub tolerance: f64,
}

impl Default for RetrainCheck {
    fn default() -> Self {
        RetrainCheck { tolerance: 1e-9 }
    }
}

impl ValidationPredicate for RetrainCheck {
    fn kind(&self) -> PredicateKind {
        PredicateKind::RetrainCheck
    }

    fn cost_estimate(&self, contribution: &Contribution, private: &PrivateData) -> u64 {
        let dim = match &contribution.payload {
            ContributionPayload::ModelUpdate { weights } => weights.len() as u64,
            _ => 1,
        };
        let log = match private {
            PrivateData::KeyboardLog { sentences } => {
                sentences.iter().map(|s| s.len() as u64).sum::<u64>()
            }
            _ => 0,
        };
        // Full retraining touches every token and every parameter several times.
        2_000 * dim + 1_000 * log
    }

    fn validate(&self, contribution: &Contribution, private: &PrivateData) -> ValidationVerdict {
        let ContributionPayload::ModelUpdate { weights } = &contribution.payload else {
            return ValidationVerdict::fail("retrain check requires a model update");
        };
        let PrivateData::KeyboardLog { sentences } = private else {
            return ValidationVerdict::fail("retrain check requires the keyboard log");
        };

        // Rebuild a schema over exactly the word ids that appear in the log,
        // in a deterministic order, matching how the honest client trained.
        let max_id = sentences
            .iter()
            .flat_map(|s| s.iter())
            .copied()
            .max()
            .unwrap_or(0);
        let vocab_words: Vec<String> = (0..=max_id).map(|i| format!("w{i}")).collect();
        let vocab = Vocabulary::new(vocab_words.iter().map(String::as_str));
        // Word ids in the log map 1:1 onto this synthetic vocabulary shifted
        // by one (id 0 is OOV); remap the sentences accordingly.
        let remapped: Vec<Vec<u32>> = sentences
            .iter()
            .map(|s| s.iter().map(|w| w + 1).collect())
            .collect();
        let ids: Vec<u32> = (1..=max_id + 1).collect();
        let slots: Vec<(u32, u32)> = ids
            .iter()
            .flat_map(|&p| ids.iter().map(move |&n| (p, n)))
            .filter(|(p, n)| p != n)
            .collect();
        let schema = ModelSchema::from_slots(vocab, slots);
        let Ok((retrained, _)) = train_local_model(&schema, &remapped) else {
            return ValidationVerdict::fail("retraining failed");
        };

        // Compare distributions: every non-zero submitted weight must appear
        // among the retrained weights (within tolerance) and the counts of
        // non-zero entries must match.
        let mut submitted: Vec<f64> = weights.iter().copied().filter(|w| *w > 0.0).collect();
        let mut reference: Vec<f64> = retrained
            .weights
            .iter()
            .copied()
            .filter(|w| *w > 0.0)
            .collect();
        submitted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
        reference.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
        if submitted.len() != reference.len() {
            return ValidationVerdict::fail(format!(
                "submission has {} non-zero weights; honest training of the log yields {}",
                submitted.len(),
                reference.len()
            ));
        }
        for (s, r) in submitted.iter().zip(reference.iter()) {
            if (s - r).abs() > self.tolerance {
                return ValidationVerdict::fail(format!(
                    "weight {s} does not match any honestly-trained weight (closest {r})"
                ));
            }
        }
        ValidationVerdict::pass()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimmer_federated::attacks::{apply_poison, PoisonStrategy};

    fn service_schema() -> ModelSchema {
        let vocab = Vocabulary::new(["i'm", "voting", "for", "donald", "trump", "don't", "like"]);
        ModelSchema::dense(
            vocab,
            &["i'm", "voting", "for", "donald", "trump", "don't", "like"],
        )
    }

    fn honest_setup() -> (ModelSchema, Vec<Vec<u32>>, Vec<f64>) {
        let schema = service_schema();
        let sentences = vec![
            schema.vocab().tokenize("i'm voting for donald trump"),
            schema.vocab().tokenize("i'm voting for donald trump"),
            schema.vocab().tokenize("don't like donald voting"),
        ];
        let (model, _) = train_local_model(&schema, &sentences).unwrap();
        (schema, sentences, model.weights)
    }

    fn contribution(weights: Vec<f64>) -> Contribution {
        Contribution {
            app_id: "keyboard".into(),
            client_id: 9,
            round: 1,
            payload: ContributionPayload::ModelUpdate { weights },
        }
    }

    #[test]
    fn corroboration_accepts_honest_contributions() {
        let (_, sentences, weights) = honest_setup();
        let predicate = KeyboardCorroboration::default();
        let verdict = predicate.validate(
            &contribution(weights),
            &PrivateData::KeyboardLog { sentences },
        );
        assert!(verdict.passed, "{}", verdict.reason);
        assert!(verdict.confidence > 0.7);
    }

    #[test]
    fn corroboration_rejects_fabricated_weights() {
        let (schema, sentences, honest_weights) = honest_setup();
        let predicate = KeyboardCorroboration::default();

        // Fabricated: claims activity the log does not support.
        let fabricated = vec![0.77; schema.dimension()];
        let verdict = predicate.validate(
            &contribution(fabricated),
            &PrivateData::KeyboardLog {
                sentences: sentences.clone(),
            },
        );
        assert!(!verdict.passed);

        // Claims a model but the log is empty.
        let verdict = predicate.validate(
            &contribution(honest_weights),
            &PrivateData::KeyboardLog { sentences: vec![] },
        );
        assert!(!verdict.passed);
        assert!(verdict.reason.contains("empty"));

        // Missing private data entirely.
        let verdict = predicate.validate(&contribution(vec![0.5]), &PrivateData::None);
        assert!(!verdict.passed);
    }

    #[test]
    fn corroboration_accepts_empty_model_with_low_confidence() {
        let predicate = KeyboardCorroboration::default();
        let verdict = predicate.validate(
            &contribution(vec![0.0; 10]),
            &PrivateData::KeyboardLog { sentences: vec![] },
        );
        assert!(verdict.passed);
        assert!(verdict.confidence < 1.0);
    }

    #[test]
    fn retrain_check_accepts_honest_and_rejects_biased() {
        let (schema, sentences, honest_weights) = honest_setup();
        let predicate = RetrainCheck::default();
        let private = PrivateData::KeyboardLog {
            sentences: sentences.clone(),
        };

        let verdict = predicate.validate(&contribution(honest_weights.clone()), &private);
        assert!(verdict.passed, "{}", verdict.reason);

        // The in-range bias attack survives a range check but not retraining.
        let honest_model = glimmer_federated::LocalModel {
            weights: honest_weights,
        };
        let slot = schema.slot_of_words("donald", "trump").unwrap();
        let biased = apply_poison(
            &schema,
            &honest_model,
            &PoisonStrategy::InRangeBias { slot },
        );
        let verdict = predicate.validate(&contribution(biased.weights), &private);
        assert!(!verdict.passed);

        // Wrong private data type.
        assert!(
            !predicate
                .validate(&contribution(vec![0.5]), &PrivateData::None)
                .passed
        );
    }

    #[test]
    fn cost_estimates_rank_by_invasiveness() {
        let (_, sentences, weights) = honest_setup();
        let c = contribution(weights);
        let private = PrivateData::KeyboardLog { sentences };
        let range = crate::validation::RangeCheck::default().cost_estimate(&c, &private);
        let corroborate = KeyboardCorroboration::default().cost_estimate(&c, &private);
        let retrain = RetrainCheck::default().cost_estimate(&c, &private);
        assert!(range < corroborate);
        assert!(corroborate < retrain);
        assert_eq!(
            KeyboardCorroboration::default().kind(),
            PredicateKind::KeyboardCorroboration
        );
        assert_eq!(RetrainCheck::default().kind(), PredicateKind::RetrainCheck);
    }
}
