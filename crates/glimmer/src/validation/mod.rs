//! Validation predicates.
//!
//! "We use the term validation loosely here to capture any validity predicate
//! entrusted upon the trusted third party; different validation predicates
//! may trade-off computational complexity for result accuracy" (Section 2).
//! This module provides that spectrum, from the cheap range check of the
//! paper's running example to NAB-style keyboard corroboration and full
//! retraining of the claimed model from the private trace:
//!
//! | Predicate | Private data needed | Cost | Catches |
//! |-----------|--------------------|------|---------|
//! | [`RangeCheck`] | none | trivial | out-of-range values (the "538" attack) |
//! | [`Plausibility`] | none | cheap | degenerate/fabricated distributions |
//! | [`KeyboardCorroboration`] | keyboard log | moderate | weights inconsistent with actual typing |
//! | [`RetrainCheck`] | keyboard log | high | any deviation from honest training |
//! | [`PhotoLocation`] | GPS track + camera id | moderate | photos not taken where claimed |
//! | [`BotDetector`] | interaction signals | moderate | bots (Section 4.1) |

pub mod bot;
pub mod corroborate;
pub mod location;

use crate::protocol::{Contribution, ContributionPayload, PrivateData, ValidationVerdict};
use glimmer_wire::{Decoder, Encoder, WireCodec, WireError};

pub use bot::{BotDetector, BotDetectorSpec};
pub use corroborate::{KeyboardCorroboration, RetrainCheck};
pub use location::PhotoLocation;

/// Identifies a predicate family (used in experiment output and TCB
/// accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredicateKind {
    /// Per-parameter range check.
    RangeCheck,
    /// Distribution plausibility check.
    Plausibility,
    /// NAB-style corroboration against the private keyboard log.
    KeyboardCorroboration,
    /// Full retraining from the private keyboard log.
    RetrainCheck,
    /// Photo location corroboration against the private GPS track.
    PhotoLocation,
    /// Bot-vs-human classification over private interaction signals.
    BotDetector,
    /// Conjunction of other predicates.
    AllOf,
}

impl PredicateKind {
    /// A short stable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PredicateKind::RangeCheck => "range-check",
            PredicateKind::Plausibility => "plausibility",
            PredicateKind::KeyboardCorroboration => "keyboard-corroboration",
            PredicateKind::RetrainCheck => "retrain-check",
            PredicateKind::PhotoLocation => "photo-location",
            PredicateKind::BotDetector => "bot-detector",
            PredicateKind::AllOf => "all-of",
        }
    }
}

/// A validity predicate run inside the Glimmer.
pub trait ValidationPredicate: Send {
    /// The predicate family.
    fn kind(&self) -> PredicateKind;

    /// A rough per-invocation cost estimate in simulated cycles, used by the
    /// validation-spectrum experiment (E6).
    fn cost_estimate(&self, contribution: &Contribution, private: &PrivateData) -> u64;

    /// Runs the predicate.
    fn validate(&self, contribution: &Contribution, private: &PrivateData) -> ValidationVerdict;
}

/// The serializable configuration of a predicate, from which the enclave
/// instantiates the runtime object. This is what the service publishes (or
/// ships encrypted, Section 4.1) and what is measured into the Glimmer
/// descriptor.
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateSpec {
    /// Range check with inclusive bounds.
    RangeCheck {
        /// Minimum legal parameter value.
        min: f64,
        /// Maximum legal parameter value.
        max: f64,
    },
    /// Plausibility check.
    Plausibility,
    /// Keyboard corroboration with a tolerance on absolute weight error.
    KeyboardCorroboration {
        /// Maximum tolerated absolute error per parameter.
        tolerance: f64,
        /// Minimum fraction of non-zero submitted weights that must be
        /// supported by the private log.
        min_support: f64,
    },
    /// Exact retraining check with a (tight) tolerance.
    RetrainCheck {
        /// Maximum tolerated absolute error per parameter.
        tolerance: f64,
    },
    /// Photo-location corroboration.
    PhotoLocation {
        /// Maximum distance (kilometres) between the claimed location and the
        /// nearest GPS-track point.
        max_distance_km: f64,
        /// Expected camera fingerprint registered with the service.
        expected_camera: [u8; 32],
    },
    /// Bot detection with a linear scorer.
    BotDetector(BotDetectorSpec),
    /// Conjunction: every inner predicate must pass.
    AllOf(Vec<PredicateSpec>),
}

impl PredicateSpec {
    /// Instantiates the runtime predicate.
    #[must_use]
    pub fn instantiate(&self) -> Box<dyn ValidationPredicate> {
        match self {
            PredicateSpec::RangeCheck { min, max } => Box::new(RangeCheck {
                min: *min,
                max: *max,
            }),
            PredicateSpec::Plausibility => Box::new(Plausibility),
            PredicateSpec::KeyboardCorroboration {
                tolerance,
                min_support,
            } => Box::new(KeyboardCorroboration {
                tolerance: *tolerance,
                min_support: *min_support,
            }),
            PredicateSpec::RetrainCheck { tolerance } => Box::new(RetrainCheck {
                tolerance: *tolerance,
            }),
            PredicateSpec::PhotoLocation {
                max_distance_km,
                expected_camera,
            } => Box::new(PhotoLocation {
                max_distance_km: *max_distance_km,
                expected_camera: *expected_camera,
            }),
            PredicateSpec::BotDetector(spec) => Box::new(BotDetector::new(spec.clone())),
            PredicateSpec::AllOf(specs) => Box::new(AllOf {
                inner: specs.iter().map(PredicateSpec::instantiate).collect(),
            }),
        }
    }

    /// The kind of the predicate this spec instantiates.
    #[must_use]
    pub fn kind(&self) -> PredicateKind {
        match self {
            PredicateSpec::RangeCheck { .. } => PredicateKind::RangeCheck,
            PredicateSpec::Plausibility => PredicateKind::Plausibility,
            PredicateSpec::KeyboardCorroboration { .. } => PredicateKind::KeyboardCorroboration,
            PredicateSpec::RetrainCheck { .. } => PredicateKind::RetrainCheck,
            PredicateSpec::PhotoLocation { .. } => PredicateKind::PhotoLocation,
            PredicateSpec::BotDetector(_) => PredicateKind::BotDetector,
            PredicateSpec::AllOf(_) => PredicateKind::AllOf,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            PredicateSpec::RangeCheck { .. } => 1,
            PredicateSpec::Plausibility => 2,
            PredicateSpec::KeyboardCorroboration { .. } => 3,
            PredicateSpec::RetrainCheck { .. } => 4,
            PredicateSpec::PhotoLocation { .. } => 5,
            PredicateSpec::BotDetector(_) => 6,
            PredicateSpec::AllOf(_) => 7,
        }
    }
}

impl WireCodec for PredicateSpec {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.tag());
        match self {
            PredicateSpec::RangeCheck { min, max } => {
                enc.put_f64(*min);
                enc.put_f64(*max);
            }
            PredicateSpec::Plausibility => {}
            PredicateSpec::KeyboardCorroboration {
                tolerance,
                min_support,
            } => {
                enc.put_f64(*tolerance);
                enc.put_f64(*min_support);
            }
            PredicateSpec::RetrainCheck { tolerance } => enc.put_f64(*tolerance),
            PredicateSpec::PhotoLocation {
                max_distance_km,
                expected_camera,
            } => {
                enc.put_f64(*max_distance_km);
                enc.put_array32(expected_camera);
            }
            PredicateSpec::BotDetector(spec) => spec.encode(enc),
            PredicateSpec::AllOf(specs) => {
                enc.put_varint(specs.len() as u64);
                for s in specs {
                    s.encode(enc);
                }
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.get_u8()? {
            1 => Ok(PredicateSpec::RangeCheck {
                min: dec.get_f64()?,
                max: dec.get_f64()?,
            }),
            2 => Ok(PredicateSpec::Plausibility),
            3 => Ok(PredicateSpec::KeyboardCorroboration {
                tolerance: dec.get_f64()?,
                min_support: dec.get_f64()?,
            }),
            4 => Ok(PredicateSpec::RetrainCheck {
                tolerance: dec.get_f64()?,
            }),
            5 => Ok(PredicateSpec::PhotoLocation {
                max_distance_km: dec.get_f64()?,
                expected_camera: dec.get_array32()?,
            }),
            6 => Ok(PredicateSpec::BotDetector(BotDetectorSpec::decode(dec)?)),
            7 => {
                let n = dec.get_varint()? as usize;
                let mut specs = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    specs.push(PredicateSpec::decode(dec)?);
                }
                Ok(PredicateSpec::AllOf(specs))
            }
            other => Err(WireError::InvalidBool(other)),
        }
    }
}

/// The paper's running example: every model parameter must lie in a range
/// ("Alice cannot send a user contribution of 538 when a value between 0 and
/// 1 is expected").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeCheck {
    /// Minimum legal value (inclusive).
    pub min: f64,
    /// Maximum legal value (inclusive).
    pub max: f64,
}

impl Default for RangeCheck {
    fn default() -> Self {
        RangeCheck { min: 0.0, max: 1.0 }
    }
}

impl ValidationPredicate for RangeCheck {
    fn kind(&self) -> PredicateKind {
        PredicateKind::RangeCheck
    }

    fn cost_estimate(&self, contribution: &Contribution, _private: &PrivateData) -> u64 {
        match &contribution.payload {
            ContributionPayload::ModelUpdate { weights } => 10 * weights.len() as u64,
            ContributionPayload::IotReadings { samples } => 10 * samples.len() as u64,
            ContributionPayload::Photo { .. } => 10,
        }
    }

    fn validate(&self, contribution: &Contribution, _private: &PrivateData) -> ValidationVerdict {
        let values: &[f64] = match &contribution.payload {
            ContributionPayload::ModelUpdate { weights } => weights,
            ContributionPayload::IotReadings { samples } => samples,
            ContributionPayload::Photo {
                claimed_lat,
                claimed_lon,
                ..
            } => {
                if (-90.0..=90.0).contains(claimed_lat) && (-180.0..=180.0).contains(claimed_lon) {
                    return ValidationVerdict::pass();
                }
                return ValidationVerdict::fail("claimed coordinates outside valid ranges");
            }
        };
        for (i, v) in values.iter().enumerate() {
            if !v.is_finite() || *v < self.min || *v > self.max {
                return ValidationVerdict::fail(format!(
                    "parameter {i} = {v} outside [{}, {}]",
                    self.min, self.max
                ));
            }
        }
        ValidationVerdict::pass()
    }
}

/// A cheap distribution-shape check that catches fabricated contributions a
/// range check would accept: all-identical weights, or per-prev-word mass
/// exceeding 1 (impossible for honest conditional frequencies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Plausibility;

impl ValidationPredicate for Plausibility {
    fn kind(&self) -> PredicateKind {
        PredicateKind::Plausibility
    }

    fn cost_estimate(&self, contribution: &Contribution, _private: &PrivateData) -> u64 {
        match &contribution.payload {
            ContributionPayload::ModelUpdate { weights } => 25 * weights.len() as u64,
            _ => 25,
        }
    }

    fn validate(&self, contribution: &Contribution, _private: &PrivateData) -> ValidationVerdict {
        let ContributionPayload::ModelUpdate { weights } = &contribution.payload else {
            return ValidationVerdict::pass();
        };
        if weights.is_empty() {
            return ValidationVerdict::fail("empty model update");
        }
        let nonzero: Vec<f64> = weights.iter().copied().filter(|w| *w != 0.0).collect();
        if nonzero.len() >= 4 {
            let first = nonzero[0];
            // A constant weight of exactly 1.0 is the natural shape of a small
            // honest trace (every observed bigram was deterministic), so only
            // other constants are treated as fabricated.
            if (first - 1.0).abs() > 1e-12 && nonzero.iter().all(|w| (*w - first).abs() < 1e-12) {
                return ValidationVerdict::with_confidence(
                    false,
                    0.9,
                    "all non-zero weights identical: looks fabricated",
                );
            }
        }
        let total: f64 = weights.iter().sum();
        if total > weights.len() as f64 {
            return ValidationVerdict::fail("total probability mass implausibly high");
        }
        ValidationVerdict::pass()
    }
}

/// Conjunction of predicates: all must pass; the first failure is reported.
pub struct AllOf {
    /// The inner predicates, evaluated in order.
    pub inner: Vec<Box<dyn ValidationPredicate>>,
}

impl ValidationPredicate for AllOf {
    fn kind(&self) -> PredicateKind {
        PredicateKind::AllOf
    }

    fn cost_estimate(&self, contribution: &Contribution, private: &PrivateData) -> u64 {
        self.inner
            .iter()
            .map(|p| p.cost_estimate(contribution, private))
            .sum()
    }

    fn validate(&self, contribution: &Contribution, private: &PrivateData) -> ValidationVerdict {
        let mut min_confidence = 1.0f64;
        for p in &self.inner {
            let verdict = p.validate(contribution, private);
            if !verdict.passed {
                return verdict;
            }
            min_confidence = min_confidence.min(verdict.confidence);
        }
        ValidationVerdict::with_confidence(true, min_confidence, "")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_contribution(weights: Vec<f64>) -> Contribution {
        Contribution {
            app_id: "keyboard".to_string(),
            client_id: 1,
            round: 0,
            payload: ContributionPayload::ModelUpdate { weights },
        }
    }

    #[test]
    fn range_check_catches_the_538_attack() {
        let predicate = RangeCheck::default();
        let honest = model_contribution(vec![0.0, 0.5, 1.0]);
        assert!(predicate.validate(&honest, &PrivateData::None).passed);

        let poisoned = model_contribution(vec![0.1, 538.0]);
        let verdict = predicate.validate(&poisoned, &PrivateData::None);
        assert!(!verdict.passed);
        assert!(verdict.reason.contains("538"));

        let negative = model_contribution(vec![-0.01]);
        assert!(!predicate.validate(&negative, &PrivateData::None).passed);
        let nan = model_contribution(vec![f64::NAN]);
        assert!(!predicate.validate(&nan, &PrivateData::None).passed);
        assert_eq!(predicate.kind(), PredicateKind::RangeCheck);
        assert!(predicate.cost_estimate(&honest, &PrivateData::None) > 0);
    }

    #[test]
    fn range_check_on_photos_and_iot() {
        let predicate = RangeCheck::default();
        let good_photo = Contribution {
            app_id: "maps".into(),
            client_id: 2,
            round: 0,
            payload: ContributionPayload::Photo {
                photo_hash: [1u8; 32],
                claimed_lat: 43.6,
                claimed_lon: -79.4,
            },
        };
        assert!(predicate.validate(&good_photo, &PrivateData::None).passed);
        let bad_photo = Contribution {
            payload: ContributionPayload::Photo {
                photo_hash: [1u8; 32],
                claimed_lat: 120.0,
                claimed_lon: 0.0,
            },
            ..good_photo.clone()
        };
        assert!(!predicate.validate(&bad_photo, &PrivateData::None).passed);

        let iot = Contribution {
            app_id: "iot".into(),
            client_id: 3,
            round: 0,
            payload: ContributionPayload::IotReadings {
                samples: vec![0.2, 0.8],
            },
        };
        assert!(predicate.validate(&iot, &PrivateData::None).passed);
    }

    #[test]
    fn plausibility_catches_fabricated_contributions() {
        let predicate = Plausibility;
        // All non-zero weights identical across many slots: fabricated.
        let fabricated = model_contribution(vec![0.9; 10]);
        let verdict = predicate.validate(&fabricated, &PrivateData::None);
        assert!(!verdict.passed);
        assert!(verdict.confidence <= 1.0);

        // An honest-looking distribution passes.
        let honest = model_contribution(vec![0.5, 0.25, 0.25, 0.0, 0.7, 0.3]);
        assert!(predicate.validate(&honest, &PrivateData::None).passed);

        // A small trace where every observed bigram is deterministic (all
        // weights exactly 1.0) is honest, not fabricated.
        let deterministic = model_contribution(vec![1.0, 1.0, 0.0, 1.0, 1.0, 1.0]);
        assert!(
            predicate
                .validate(&deterministic, &PrivateData::None)
                .passed
        );

        // Empty update fails.
        assert!(
            !predicate
                .validate(&model_contribution(vec![]), &PrivateData::None)
                .passed
        );

        // Non-model payloads pass trivially.
        let photo = Contribution {
            app_id: "maps".into(),
            client_id: 1,
            round: 0,
            payload: ContributionPayload::Photo {
                photo_hash: [0u8; 32],
                claimed_lat: 0.0,
                claimed_lon: 0.0,
            },
        };
        assert!(predicate.validate(&photo, &PrivateData::None).passed);
        assert_eq!(predicate.kind(), PredicateKind::Plausibility);
    }

    #[test]
    fn all_of_composition() {
        let spec = PredicateSpec::AllOf(vec![
            PredicateSpec::RangeCheck { min: 0.0, max: 1.0 },
            PredicateSpec::Plausibility,
        ]);
        let predicate = spec.instantiate();
        assert_eq!(predicate.kind(), PredicateKind::AllOf);

        let ok = model_contribution(vec![0.5, 0.2, 0.0, 0.1]);
        assert!(predicate.validate(&ok, &PrivateData::None).passed);

        // Fails range check.
        let out_of_range = model_contribution(vec![0.5, 538.0]);
        assert!(!predicate.validate(&out_of_range, &PrivateData::None).passed);

        // Passes range check but fails plausibility.
        let fabricated = model_contribution(vec![0.9; 10]);
        assert!(!predicate.validate(&fabricated, &PrivateData::None).passed);

        let cost = predicate.cost_estimate(&ok, &PrivateData::None);
        assert!(cost > RangeCheck::default().cost_estimate(&ok, &PrivateData::None));
    }

    #[test]
    fn spec_round_trips_and_kinds() {
        let specs = vec![
            PredicateSpec::RangeCheck { min: 0.0, max: 1.0 },
            PredicateSpec::Plausibility,
            PredicateSpec::KeyboardCorroboration {
                tolerance: 0.05,
                min_support: 0.8,
            },
            PredicateSpec::RetrainCheck { tolerance: 1e-9 },
            PredicateSpec::PhotoLocation {
                max_distance_km: 0.5,
                expected_camera: [7u8; 32],
            },
            PredicateSpec::BotDetector(BotDetectorSpec::example()),
            PredicateSpec::AllOf(vec![
                PredicateSpec::Plausibility,
                PredicateSpec::RangeCheck { min: 0.0, max: 1.0 },
            ]),
        ];
        for spec in specs {
            let bytes = spec.to_wire();
            let decoded = PredicateSpec::from_wire(&bytes).unwrap();
            assert_eq!(decoded, spec);
            assert_eq!(decoded.kind(), spec.kind());
            assert!(!spec.kind().label().is_empty());
            let _ = spec.instantiate();
        }
        assert!(PredicateSpec::from_wire(&[0xFE]).is_err());
    }
}
