//! Photo-location corroboration.
//!
//! The paper's second worked example (Sections 1 and 3): crowd-sourced photos
//! for a mapping service are not themselves private, but validating that "the
//! user did go to a claimed location" requires access to "location tracking
//! through GPS and ambient WiFi", a fingerprint of the camera hardware, and
//! other private context. The Glimmer inspects that private data locally and
//! endorses the photo only if the claim checks out.

use crate::protocol::{Contribution, ContributionPayload, PrivateData, ValidationVerdict};
use crate::validation::{PredicateKind, ValidationPredicate};
use glimmer_crypto::ct::ct_eq;

/// Great-circle distance between two points in kilometres (haversine).
#[must_use]
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    const EARTH_RADIUS_KM: f64 = 6371.0;
    let d_lat = (lat2 - lat1).to_radians();
    let d_lon = (lon2 - lon1).to_radians();
    let a = (d_lat / 2.0).sin().powi(2)
        + lat1.to_radians().cos() * lat2.to_radians().cos() * (d_lon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * a.sqrt().atan2((1.0 - a).sqrt())
}

/// Validates that the claimed photo location is corroborated by the private
/// GPS track and that the photo came from the expected camera hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhotoLocation {
    /// Maximum distance (km) between the claimed location and the nearest
    /// track point.
    pub max_distance_km: f64,
    /// The camera fingerprint the service registered for this device.
    pub expected_camera: [u8; 32],
}

impl ValidationPredicate for PhotoLocation {
    fn kind(&self) -> PredicateKind {
        PredicateKind::PhotoLocation
    }

    fn cost_estimate(&self, _contribution: &Contribution, private: &PrivateData) -> u64 {
        let points = match private {
            PrivateData::GpsTrack { points, .. } => points.len() as u64,
            _ => 0,
        };
        500 + 100 * points
    }

    fn validate(&self, contribution: &Contribution, private: &PrivateData) -> ValidationVerdict {
        let ContributionPayload::Photo {
            claimed_lat,
            claimed_lon,
            ..
        } = &contribution.payload
        else {
            return ValidationVerdict::fail("photo-location predicate requires a photo payload");
        };
        let PrivateData::GpsTrack {
            points,
            camera_fingerprint,
        } = private
        else {
            return ValidationVerdict::fail("photo-location predicate requires the GPS track");
        };
        if !ct_eq(camera_fingerprint, &self.expected_camera) {
            return ValidationVerdict::fail("photo not captured by the registered camera");
        }
        if points.is_empty() {
            return ValidationVerdict::fail("no location history to corroborate the claim");
        }
        let nearest = points
            .iter()
            .map(|(lat, lon, _)| haversine_km(*claimed_lat, *claimed_lon, *lat, *lon))
            .fold(f64::INFINITY, f64::min);
        if nearest <= self.max_distance_km {
            // Confidence decays with distance from the nearest track point.
            let confidence = 1.0 - (nearest / self.max_distance_km).clamp(0.0, 1.0) * 0.5;
            ValidationVerdict::with_confidence(true, confidence, "")
        } else {
            ValidationVerdict::fail(format!(
                "claimed location is {nearest:.2} km from the nearest visited point (limit {} km)",
                self.max_distance_km
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CN_TOWER: (f64, f64) = (43.6426, -79.3871);
    const UNION_STATION: (f64, f64) = (43.6453, -79.3806);
    const EIFFEL_TOWER: (f64, f64) = (48.8584, 2.2945);

    fn photo(lat: f64, lon: f64) -> Contribution {
        Contribution {
            app_id: "maps".into(),
            client_id: 5,
            round: 0,
            payload: ContributionPayload::Photo {
                photo_hash: [8u8; 32],
                claimed_lat: lat,
                claimed_lon: lon,
            },
        }
    }

    fn track_near_cn_tower(camera: [u8; 32]) -> PrivateData {
        PrivateData::GpsTrack {
            points: vec![
                (UNION_STATION.0, UNION_STATION.1, 1_700_000_000),
                (CN_TOWER.0 + 0.0005, CN_TOWER.1 - 0.0005, 1_700_000_600),
            ],
            camera_fingerprint: camera,
        }
    }

    fn predicate() -> PhotoLocation {
        PhotoLocation {
            max_distance_km: 0.5,
            expected_camera: [8u8; 32],
        }
    }

    #[test]
    fn haversine_sanity() {
        assert!(haversine_km(CN_TOWER.0, CN_TOWER.1, CN_TOWER.0, CN_TOWER.1) < 1e-9);
        let cn_to_union = haversine_km(CN_TOWER.0, CN_TOWER.1, UNION_STATION.0, UNION_STATION.1);
        assert!(cn_to_union > 0.3 && cn_to_union < 1.0, "{cn_to_union}");
        let toronto_to_paris = haversine_km(CN_TOWER.0, CN_TOWER.1, EIFFEL_TOWER.0, EIFFEL_TOWER.1);
        assert!(
            toronto_to_paris > 5500.0 && toronto_to_paris < 6500.0,
            "{toronto_to_paris}"
        );
    }

    #[test]
    fn genuine_photo_is_endorsed() {
        let verdict = predicate().validate(
            &photo(CN_TOWER.0, CN_TOWER.1),
            &track_near_cn_tower([8u8; 32]),
        );
        assert!(verdict.passed, "{}", verdict.reason);
        assert!(verdict.confidence > 0.5);
    }

    #[test]
    fn photo_from_unvisited_location_is_rejected() {
        let verdict = predicate().validate(
            &photo(EIFFEL_TOWER.0, EIFFEL_TOWER.1),
            &track_near_cn_tower([8u8; 32]),
        );
        assert!(!verdict.passed);
        assert!(verdict.reason.contains("km"));
    }

    #[test]
    fn wrong_camera_or_missing_track_is_rejected() {
        let verdict = predicate().validate(
            &photo(CN_TOWER.0, CN_TOWER.1),
            &track_near_cn_tower([9u8; 32]),
        );
        assert!(!verdict.passed);
        assert!(verdict.reason.contains("camera"));

        let empty_track = PrivateData::GpsTrack {
            points: vec![],
            camera_fingerprint: [8u8; 32],
        };
        assert!(
            !predicate()
                .validate(&photo(CN_TOWER.0, CN_TOWER.1), &empty_track)
                .passed
        );

        assert!(
            !predicate()
                .validate(&photo(CN_TOWER.0, CN_TOWER.1), &PrivateData::None)
                .passed
        );
    }

    #[test]
    fn wrong_payload_type_is_rejected() {
        let model = Contribution {
            app_id: "maps".into(),
            client_id: 5,
            round: 0,
            payload: ContributionPayload::ModelUpdate { weights: vec![0.5] },
        };
        assert!(
            !predicate()
                .validate(&model, &track_near_cn_tower([8u8; 32]))
                .passed
        );
        assert_eq!(predicate().kind(), PredicateKind::PhotoLocation);
        assert!(predicate().cost_estimate(&model, &track_near_cn_tower([8u8; 32])) > 500);
    }
}
