//! Bot detection over private interaction signals (Section 4.1).
//!
//! "An alternative solution is embedding a Javascript 'detector' in the web
//! page that heuristically detects whether a bot or a human is present. Such
//! solutions collect a large set of signals ... However, these signals often
//! contain private information". The detector here is a linear scorer over
//! named signals — rich enough to express the heuristics the paper cites
//! (timing entropy, JS fidelity, focus changes, cookie-derived features)
//! while staying auditable. The same spec is used in the clear for the
//! baseline and encrypted for the validation-confidentiality path.

use crate::protocol::{Contribution, PrivateData, ValidationVerdict};
use crate::validation::{PredicateKind, ValidationPredicate};
use glimmer_wire::{Decoder, Encoder, WireCodec, WireError};

/// Serializable configuration of the bot detector: a linear model over named
/// signals plus a decision threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct BotDetectorSpec {
    /// `(signal name, weight)` pairs.
    pub weights: Vec<(String, f64)>,
    /// Additive bias applied before thresholding.
    pub bias: f64,
    /// Scores above the threshold are classified as human.
    pub threshold: f64,
    /// Signals that must be present for the verdict to be confident; missing
    /// ones reduce confidence.
    pub required_signals: Vec<String>,
}

impl BotDetectorSpec {
    /// A reasonable example detector used in tests, docs, and the experiments.
    #[must_use]
    pub fn example() -> Self {
        BotDetectorSpec {
            weights: vec![
                ("mouse_entropy".to_string(), 2.0),
                ("keystroke_variance".to_string(), 1.5),
                ("js_fidelity".to_string(), 1.0),
                ("focus_changes".to_string(), 0.5),
                ("request_rate".to_string(), -1.5),
                ("headless_markers".to_string(), -3.0),
            ],
            bias: -1.0,
            threshold: 0.5,
            required_signals: vec!["mouse_entropy".to_string(), "js_fidelity".to_string()],
        }
    }

    /// Scores a signal map; higher means more human-like.
    #[must_use]
    pub fn score(&self, signals: &[(String, f64)]) -> f64 {
        let mut score = self.bias;
        for (name, weight) in &self.weights {
            if let Some((_, value)) = signals.iter().find(|(n, _)| n == name) {
                score += weight * value;
            }
        }
        score
    }
}

impl WireCodec for BotDetectorSpec {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.weights.len() as u64);
        for (name, w) in &self.weights {
            enc.put_str(name);
            enc.put_f64(*w);
        }
        enc.put_f64(self.bias);
        enc.put_f64(self.threshold);
        enc.put_varint(self.required_signals.len() as u64);
        for s in &self.required_signals {
            enc.put_str(s);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let n = dec.get_varint()? as usize;
        let mut weights = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            weights.push((dec.get_str()?, dec.get_f64()?));
        }
        let bias = dec.get_f64()?;
        let threshold = dec.get_f64()?;
        let m = dec.get_varint()? as usize;
        let mut required_signals = Vec::with_capacity(m.min(1024));
        for _ in 0..m {
            required_signals.push(dec.get_str()?);
        }
        Ok(BotDetectorSpec {
            weights,
            bias,
            threshold,
            required_signals,
        })
    }
}

/// The runtime bot detector.
#[derive(Debug, Clone, PartialEq)]
pub struct BotDetector {
    spec: BotDetectorSpec,
}

impl BotDetector {
    /// Creates a detector from its spec.
    #[must_use]
    pub fn new(spec: BotDetectorSpec) -> Self {
        BotDetector { spec }
    }

    /// The underlying spec.
    #[must_use]
    pub fn spec(&self) -> &BotDetectorSpec {
        &self.spec
    }

    /// Classifies a signal map directly: `true` means human.
    #[must_use]
    pub fn is_human(&self, signals: &[(String, f64)]) -> bool {
        self.spec.score(signals) > self.spec.threshold
    }
}

impl ValidationPredicate for BotDetector {
    fn kind(&self) -> PredicateKind {
        PredicateKind::BotDetector
    }

    fn cost_estimate(&self, _contribution: &Contribution, private: &PrivateData) -> u64 {
        let signals = match private {
            PrivateData::BotSignals { signals } => signals.len() as u64,
            _ => 0,
        };
        100 + 50 * signals * self.spec.weights.len() as u64
    }

    fn validate(&self, _contribution: &Contribution, private: &PrivateData) -> ValidationVerdict {
        let PrivateData::BotSignals { signals } = private else {
            return ValidationVerdict::fail("bot detector requires interaction signals");
        };
        let missing = self
            .spec
            .required_signals
            .iter()
            .filter(|r| !signals.iter().any(|(n, _)| n == *r))
            .count();
        let confidence = if self.spec.required_signals.is_empty() {
            1.0
        } else {
            1.0 - missing as f64 / self.spec.required_signals.len() as f64
        };
        let human = self.spec.score(signals) > self.spec.threshold;
        if human {
            ValidationVerdict::with_confidence(true, confidence, "")
        } else {
            ValidationVerdict::with_confidence(false, confidence, "classified as bot")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ContributionPayload;

    fn contribution() -> Contribution {
        Contribution {
            app_id: "web".into(),
            client_id: 1,
            round: 0,
            payload: ContributionPayload::IotReadings { samples: vec![] },
        }
    }

    fn human_signals() -> Vec<(String, f64)> {
        vec![
            ("mouse_entropy".to_string(), 0.9),
            ("keystroke_variance".to_string(), 0.7),
            ("js_fidelity".to_string(), 1.0),
            ("focus_changes".to_string(), 0.4),
            ("request_rate".to_string(), 0.1),
            ("headless_markers".to_string(), 0.0),
        ]
    }

    fn bot_signals() -> Vec<(String, f64)> {
        vec![
            ("mouse_entropy".to_string(), 0.02),
            ("keystroke_variance".to_string(), 0.01),
            ("js_fidelity".to_string(), 0.4),
            ("focus_changes".to_string(), 0.0),
            ("request_rate".to_string(), 0.95),
            ("headless_markers".to_string(), 1.0),
        ]
    }

    #[test]
    fn classifies_humans_and_bots() {
        let detector = BotDetector::new(BotDetectorSpec::example());
        assert!(detector.is_human(&human_signals()));
        assert!(!detector.is_human(&bot_signals()));

        let verdict = detector.validate(
            &contribution(),
            &PrivateData::BotSignals {
                signals: human_signals(),
            },
        );
        assert!(verdict.passed);
        assert_eq!(verdict.confidence, 1.0);

        let verdict = detector.validate(
            &contribution(),
            &PrivateData::BotSignals {
                signals: bot_signals(),
            },
        );
        assert!(!verdict.passed);
        assert!(verdict.reason.contains("bot"));
    }

    #[test]
    fn missing_required_signals_lower_confidence() {
        let detector = BotDetector::new(BotDetectorSpec::example());
        let partial = vec![("keystroke_variance".to_string(), 0.9)];
        let verdict = detector.validate(
            &contribution(),
            &PrivateData::BotSignals { signals: partial },
        );
        assert!(verdict.confidence < 1.0);
    }

    #[test]
    fn requires_bot_signals_private_data() {
        let detector = BotDetector::new(BotDetectorSpec::example());
        assert!(
            !detector
                .validate(&contribution(), &PrivateData::None)
                .passed
        );
        assert_eq!(detector.kind(), PredicateKind::BotDetector);
        assert!(detector.cost_estimate(&contribution(), &PrivateData::None) > 0);
    }

    #[test]
    fn spec_round_trip_and_scoring() {
        let spec = BotDetectorSpec::example();
        let decoded = BotDetectorSpec::from_wire(&spec.to_wire()).unwrap();
        assert_eq!(decoded, spec);
        assert!(spec.score(&human_signals()) > spec.score(&bot_signals()));
        // Unknown signals are ignored.
        let with_extra = {
            let mut s = human_signals();
            s.push(("unknown_signal".to_string(), 100.0));
            s
        };
        assert!((spec.score(&with_extra) - spec.score(&human_signals())).abs() < 1e-12);
        assert_eq!(BotDetector::new(spec.clone()).spec(), &spec);
    }
}
