//! Property-based tests for the cryptographic substrate.

use glimmer_crypto::aead::AeadKey;
use glimmer_crypto::bignum::BigUint;
use glimmer_crypto::chacha20::ChaCha20;
use glimmer_crypto::ct::ct_eq;
use glimmer_crypto::drbg::Drbg;
use glimmer_crypto::hkdf::hkdf_expand;
use glimmer_crypto::hmac::hmac_sha256;
use glimmer_crypto::sha256::{sha256, Sha256};
use proptest::prelude::*;

fn big_from(v: u128) -> BigUint {
    BigUint::from_bytes_be(&v.to_be_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sha256_incremental_equals_one_shot(data in proptest::collection::vec(any::<u8>(), 0..2048), split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn hmac_is_deterministic_and_key_sensitive(
        key in proptest::collection::vec(any::<u8>(), 0..100),
        msg in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let a = hmac_sha256(&key, &msg);
        let b = hmac_sha256(&key, &msg);
        prop_assert_eq!(a, b);
        let mut key2 = key.clone();
        key2.push(0x55);
        prop_assert_ne!(hmac_sha256(&key2, &msg), a);
    }

    #[test]
    fn hkdf_prefix_consistency(prk in proptest::collection::vec(any::<u8>(), 32..33), info in proptest::collection::vec(any::<u8>(), 0..32), short in 1usize..64, extra in 0usize..64) {
        let long = hkdf_expand(&prk, &info, short + extra);
        let shorter = hkdf_expand(&prk, &info, short);
        prop_assert_eq!(&long[..short], &shorter[..]);
    }

    #[test]
    fn chacha20_round_trip(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(), data in proptest::collection::vec(any::<u8>(), 0..512), counter in any::<u32>()) {
        let mut buf = data.clone();
        ChaCha20::new(&key, &nonce).apply(&mut buf, counter);
        ChaCha20::new(&key, &nonce).apply(&mut buf, counter);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn aead_round_trip_and_tamper(master in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(), aad in proptest::collection::vec(any::<u8>(), 0..64), pt in proptest::collection::vec(any::<u8>(), 0..256), flip in any::<usize>()) {
        let key = AeadKey::from_master(&master);
        let ct = key.seal(&nonce, &aad, &pt);
        prop_assert_eq!(key.open(&nonce, &aad, &ct).unwrap(), pt);
        let mut bad = ct.clone();
        let idx = flip % bad.len();
        bad[idx] ^= 1;
        prop_assert!(key.open(&nonce, &aad, &bad).is_err());
    }

    #[test]
    fn ct_eq_matches_eq(a in proptest::collection::vec(any::<u8>(), 0..64), b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    #[test]
    fn bignum_add_sub_inverse(a in any::<u128>(), b in any::<u128>()) {
        let ba = big_from(a);
        let bb = big_from(b);
        let sum = ba.add(&bb);
        prop_assert_eq!(sum.checked_sub(&bb).unwrap(), ba.clone());
        prop_assert_eq!(sum.checked_sub(&ba).unwrap(), bb);
    }

    #[test]
    fn bignum_mul_div_identity(a in any::<u128>(), b in 1u128..) {
        let ba = big_from(a);
        let bb = big_from(b);
        let (q, r) = ba.div_rem(&bb).unwrap();
        prop_assert!(r < bb);
        prop_assert_eq!(q.mul(&bb).add(&r), ba);
    }

    #[test]
    fn bignum_mul_commutes_and_distributes(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let ba = BigUint::from_u64(a);
        let bb = BigUint::from_u64(b);
        let bc = BigUint::from_u64(c);
        prop_assert_eq!(ba.mul(&bb), bb.mul(&ba));
        prop_assert_eq!(ba.mul(&bb.add(&bc)), ba.mul(&bb).add(&ba.mul(&bc)));
    }

    #[test]
    fn bignum_bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let v = BigUint::from_bytes_be(&bytes);
        let round = BigUint::from_bytes_be(&v.to_bytes_be());
        prop_assert_eq!(round, v);
    }

    #[test]
    fn bignum_shift_round_trip(a in any::<u128>(), shift in 0usize..200) {
        let ba = big_from(a);
        prop_assert_eq!(ba.shl(shift).shr(shift), ba);
    }

    #[test]
    fn mod_exp_homomorphism(a in 2u64..1_000_000, e1 in 0u64..64, e2 in 0u64..64) {
        // a^(e1+e2) == a^e1 * a^e2 (mod m) for an odd modulus.
        let m = BigUint::from_u64(0xFFFF_FFFF_FFFF_FFC5); // odd 64-bit value
        let base = BigUint::from_u64(a);
        let lhs = base.mod_exp(&BigUint::from_u64(e1 + e2), &m).unwrap();
        let rhs = base
            .mod_exp(&BigUint::from_u64(e1), &m)
            .unwrap()
            .mod_mul(&base.mod_exp(&BigUint::from_u64(e2), &m).unwrap(), &m)
            .unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn drbg_streams_deterministic(seed in any::<[u8; 32]>(), len in 0usize..256) {
        let mut a = Drbg::from_seed(seed);
        let mut b = Drbg::from_seed(seed);
        prop_assert_eq!(a.bytes(len), b.bytes(len));
    }
}
