//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! HMAC is used for sealed-storage integrity, simulated platform attestation
//! signatures (standing in for EPID, see `sgx-sim`), and as the MAC half of the
//! encrypt-then-MAC AEAD.

use crate::ct::ct_eq;
use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA-256.
///
/// # Examples
///
/// ```
/// use glimmer_crypto::hmac::{hmac_sha256, HmacSha256};
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"message");
/// assert_eq!(mac.finalize(), hmac_sha256(b"key", b"message"));
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC instance keyed with `key` (any length).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte tag.
    #[must_use]
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Verifies a tag in constant time.
    #[must_use]
    pub fn verify(self, expected: &[u8]) -> bool {
        ct_eq(&self.finalize(), expected)
    }
}

/// One-shot HMAC-SHA-256.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Verifies an HMAC-SHA-256 tag in constant time.
#[must_use]
pub fn hmac_sha256_verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    ct_eq(&hmac_sha256(key, message), tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(hmac_sha256_verify(b"k", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!hmac_sha256_verify(b"k", b"m", &bad));
        assert!(!hmac_sha256_verify(b"k2", b"m", &tag));
        assert!(!hmac_sha256_verify(b"k", b"m2", &tag));
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut mac = HmacSha256::new(b"key material");
        mac.update(b"part one ");
        mac.update(b"part two");
        assert_eq!(
            mac.finalize(),
            hmac_sha256(b"key material", b"part one part two")
        );
    }
}
