//! HKDF (RFC 5869) built on HMAC-SHA-256.
//!
//! Key derivation is used everywhere keys must be bound to context: sealing
//! keys derived from platform secrets and enclave measurements, per-session
//! channel keys derived from Diffie-Hellman shared secrets, and per-parameter
//! blinding streams derived from pairwise seeds.

use crate::hmac::hmac_sha256;
use crate::sha256::DIGEST_LEN;

/// HKDF-Extract: compresses input keying material into a pseudo-random key.
#[must_use]
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: expands a pseudo-random key into `len` bytes of output keyed
/// material, bound to `info`.
///
/// `len` may be at most `255 * 32` bytes as per RFC 5869; larger requests are
/// truncated to that maximum.
#[must_use]
pub fn hkdf_expand(prk: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let len = len.min(255 * DIGEST_LEN);
    let mut out = Vec::with_capacity(len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut block_input = Vec::with_capacity(previous.len() + info.len() + 1);
        block_input.extend_from_slice(&previous);
        block_input.extend_from_slice(info);
        block_input.push(counter);
        let block = hmac_sha256(prk, &block_input);
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&block[..take]);
        previous = block.to_vec();
        counter = counter.wrapping_add(1);
    }
    out
}

/// One-shot HKDF (extract then expand).
///
/// # Examples
///
/// ```
/// let okm = glimmer_crypto::hkdf(b"salt", b"input key material", b"glimmer seal", 64);
/// assert_eq!(okm.len(), 64);
/// ```
#[must_use]
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, len)
}

/// Derives a fixed 32-byte key bound to a domain-separation label.
#[must_use]
pub fn derive_key_32(ikm: &[u8], label: &str) -> [u8; 32] {
    let okm = hkdf(b"glimmers-kdf-v1", ikm, label.as_bytes(), 32);
    let mut out = [0u8; 32];
    out.copy_from_slice(&okm);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0bu8; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_lengths() {
        let prk = hkdf_extract(b"salt", b"ikm");
        for len in [0usize, 1, 31, 32, 33, 64, 100, 255 * 32] {
            assert_eq!(hkdf_expand(&prk, b"info", len).len(), len);
        }
        // Requests beyond the RFC limit are clamped.
        assert_eq!(hkdf_expand(&prk, b"info", 255 * 32 + 100).len(), 255 * 32);
    }

    #[test]
    fn different_info_gives_different_keys() {
        let a = derive_key_32(b"secret", "seal");
        let b = derive_key_32(b"secret", "sign");
        assert_ne!(a, b);
        let a2 = derive_key_32(b"secret", "seal");
        assert_eq!(a, a2);
    }

    #[test]
    fn prefix_consistency() {
        // Expanding to a longer length must produce the shorter output as a prefix.
        let prk = hkdf_extract(b"s", b"k");
        let long = hkdf_expand(&prk, b"ctx", 96);
        let short = hkdf_expand(&prk, b"ctx", 40);
        assert_eq!(&long[..40], &short[..]);
    }
}
