//! Constant-time helpers.
//!
//! The Glimmer signing and sealing paths compare MACs and signatures produced
//! over attacker-influenced data; a naive early-exit comparison would leak the
//! position of the first mismatching byte through timing. [`ct_eq`] compares
//! two byte slices in time that depends only on their length.

/// Compares two byte slices in constant time (for equal-length inputs).
///
/// Returns `false` immediately if the lengths differ; the length of a MAC or
/// signature is public, so this early exit does not leak secret data.
///
/// # Examples
///
/// ```
/// use glimmer_crypto::ct::ct_eq;
/// assert!(ct_eq(b"abc", b"abc"));
/// assert!(!ct_eq(b"abc", b"abd"));
/// assert!(!ct_eq(b"abc", b"abcd"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Selects `a` if `choice` is 1 and `b` if `choice` is 0, without branching.
///
/// `choice` must be 0 or 1; any other value produces an unspecified mix of the
/// two inputs (but never panics).
#[must_use]
pub fn ct_select_u64(choice: u8, a: u64, b: u64) -> u64 {
    let mask = (choice as u64).wrapping_neg();
    (a & mask) | (b & !mask)
}

/// Zeroes a buffer.
///
/// Rust has no portable guarantee that the compiler will not elide the writes,
/// but using a volatile-style loop through `core::hint::black_box` makes
/// elision unlikely. Sealing keys and blinding values are wiped with this
/// after use.
pub fn wipe(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        *b = 0;
    }
    core::hint::black_box(&buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2]));
    }

    #[test]
    fn select_picks_correct_value() {
        assert_eq!(ct_select_u64(1, 7, 9), 7);
        assert_eq!(ct_select_u64(0, 7, 9), 9);
    }

    #[test]
    fn wipe_zeroes() {
        let mut buf = [0xAAu8; 16];
        wipe(&mut buf);
        assert_eq!(buf, [0u8; 16]);
    }
}
