//! Deterministic random bit generator (DRBG) built on ChaCha20.
//!
//! The reproduction needs two kinds of randomness:
//!
//! * **Reproducible randomness** for workloads, blinding values, and
//!   simulated platform secrets, so that every experiment in EXPERIMENTS.md
//!   can be regenerated from a seed.
//! * **Fresh randomness** for key generation in examples, obtained by seeding
//!   a DRBG from the operating system via the `rand` crate.
//!
//! The DRBG is a simple counter-mode construction: the 32-byte seed keys a
//! ChaCha20 instance whose keystream (over an incrementing block counter and
//! a 96-bit stream id) is the output. A fast-key-erasure style reseed is
//! available via [`Drbg::fork`].

use crate::chacha20::{ChaCha20, BLOCK_LEN, KEY_LEN, NONCE_LEN};
use crate::hkdf::derive_key_32;

/// A deterministic, seekable random bit generator.
///
/// # Examples
///
/// ```
/// use glimmer_crypto::drbg::Drbg;
/// let mut a = Drbg::from_seed([1u8; 32]);
/// let mut b = Drbg::from_seed([1u8; 32]);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone)]
pub struct Drbg {
    cipher: ChaCha20,
    counter: u32,
    buffer: [u8; BLOCK_LEN],
    used: usize,
}

impl Drbg {
    /// Creates a generator from a 32-byte seed.
    #[must_use]
    pub fn from_seed(seed: [u8; KEY_LEN]) -> Self {
        Self::with_stream(seed, 0)
    }

    /// Creates a generator from an arbitrary-length seed by hashing it.
    #[must_use]
    pub fn from_material(material: &[u8]) -> Self {
        Self::from_seed(derive_key_32(material, "drbg-seed"))
    }

    /// Creates a generator seeded from ambient process entropy.
    ///
    /// Gathers wall-clock time, a monotonic instant, the process id, the
    /// per-process `RandomState` keys, and fresh allocation addresses, and
    /// hashes them into a seed. This is *not* a substitute for an OS CSPRNG
    /// in production cryptography, but the simulator only needs distinct,
    /// unpredictable-enough streams per process — and the build environment
    /// offers no `rand`/`getrandom` crate to do better with.
    #[must_use]
    pub fn from_os_entropy() -> Self {
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};
        use std::time::{Instant, SystemTime, UNIX_EPOCH};

        let mut material = Vec::with_capacity(64);
        if let Ok(elapsed) = SystemTime::now().duration_since(UNIX_EPOCH) {
            material.extend_from_slice(&elapsed.as_nanos().to_le_bytes());
        }
        let instant = Instant::now();
        material.extend_from_slice(&std::process::id().to_le_bytes());
        // RandomState seeds itself from OS entropy once per process.
        for _ in 0..4 {
            let mut hasher = RandomState::new().build_hasher();
            hasher.write(&material);
            material.extend_from_slice(&hasher.finish().to_le_bytes());
        }
        let probe = Box::new(0u8);
        material.extend_from_slice(&(std::ptr::addr_of!(*probe) as usize).to_le_bytes());
        material.extend_from_slice(&instant.elapsed().subsec_nanos().to_le_bytes());
        Self::from_material(&material)
    }

    /// Creates a generator with an explicit stream identifier, so that many
    /// independent streams can be derived from one seed.
    #[must_use]
    pub fn with_stream(seed: [u8; KEY_LEN], stream: u64) -> Self {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[..8].copy_from_slice(&stream.to_le_bytes());
        Drbg {
            cipher: ChaCha20::new(&seed, &nonce),
            counter: 0,
            buffer: [0u8; BLOCK_LEN],
            used: BLOCK_LEN,
        }
    }

    /// Derives an independent child generator labelled by `label`.
    ///
    /// Forking is how per-client, per-round, and per-parameter streams are
    /// produced from one experiment seed without correlation.
    #[must_use]
    pub fn fork(&mut self, label: &str) -> Drbg {
        let mut child_seed = [0u8; KEY_LEN];
        self.fill_bytes(&mut child_seed);
        let mut material = Vec::with_capacity(KEY_LEN + label.len());
        material.extend_from_slice(&child_seed);
        material.extend_from_slice(label.as_bytes());
        Drbg::from_seed(derive_key_32(&material, "drbg-fork"))
    }

    /// Fills `dest` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for byte in dest.iter_mut() {
            if self.used == BLOCK_LEN {
                self.buffer = self.cipher.block(self.counter);
                self.counter = self.counter.wrapping_add(1);
                self.used = 0;
            }
            *byte = self.buffer[self.used];
            self.used += 1;
        }
    }

    /// Returns the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.fill_bytes(&mut buf);
        u64::from_le_bytes(buf)
    }

    /// Returns the next pseudo-random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.fill_bytes(&mut buf);
        u32::from_le_bytes(buf)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses rejection sampling to avoid modulo bias. Returns 0 if `bound` is 0.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Largest multiple of `bound` that fits in a u64.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a standard-normal sample (Box-Muller).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = loop {
            let v = self.next_f64();
            if v > 0.0 {
                break v;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Returns a vector of `n` pseudo-random bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.fill_bytes(&mut out);
        out
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.gen_range((i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_range(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = Drbg::from_seed([5u8; 32]);
        let mut b = Drbg::from_seed([5u8; 32]);
        assert_eq!(a.bytes(100), b.bytes(100));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Drbg::from_seed([5u8; 32]);
        let mut b = Drbg::from_seed([6u8; 32]);
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Drbg::with_stream([5u8; 32], 0);
        let mut b = Drbg::with_stream([5u8; 32], 1);
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn fork_produces_independent_children() {
        let mut parent = Drbg::from_seed([7u8; 32]);
        let mut c1 = parent.fork("client-1");
        let mut c2 = parent.fork("client-2");
        assert_ne!(c1.bytes(32), c2.bytes(32));

        // Forking is deterministic given the same parent state and label order.
        let mut parent2 = Drbg::from_seed([7u8; 32]);
        let mut c1b = parent2.fork("client-1");
        // `c1` already produced 32 bytes above; reproduce that prefix first.
        assert_eq!(
            c1b.bytes(32),
            Drbg::from_seed([7u8; 32]).fork("client-1").bytes(32)
        );
        let _ = c1b.bytes(0);
        assert_eq!(c1.bytes(16), {
            let mut fresh = Drbg::from_seed([7u8; 32]).fork("client-1");
            let _ = fresh.bytes(32);
            fresh.bytes(16)
        });
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = Drbg::from_seed([9u8; 32]);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
        assert_eq!(rng.gen_range(0), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Drbg::from_seed([11u8; 32]);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean should be roughly 0.5.
        let mean = sum / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean was {mean}");
    }

    #[test]
    fn gaussian_has_reasonable_moments() {
        let mut rng = Drbg::from_seed([13u8; 32]);
        let n = 5000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Drbg::from_seed([17u8; 32]);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_from_slices() {
        let mut rng = Drbg::from_seed([19u8; 32]);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let items = [1, 2, 3];
        for _ in 0..20 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
    }

    #[test]
    fn os_entropy_generators_differ() {
        let mut a = Drbg::from_os_entropy();
        let mut b = Drbg::from_os_entropy();
        // Overwhelming probability of being different.
        assert_ne!(a.bytes(32), b.bytes(32));
    }
}
