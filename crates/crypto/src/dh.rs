//! Finite-field Diffie-Hellman key agreement.
//!
//! Section 4.1 of the paper establishes a secure channel between the service
//! and the Glimmer by binding Diffie-Hellman handshake values to an SGX
//! attestation. This module provides the group arithmetic and key agreement;
//! the attestation binding lives in `glimmer-core::channel`.
//!
//! Groups are the well-known MODP groups (RFC 2409 group 2 and RFC 3526
//! group 14). Both primes are safe primes `p = 2q + 1`; the generator used
//! here is `4 = 2^2`, a quadratic residue, so it generates the prime-order-`q`
//! subgroup, which is what the Schnorr signatures in [`crate::schnorr`]
//! require.

use crate::bignum::BigUint;
use crate::drbg::Drbg;
use crate::hkdf::hkdf;
use crate::CryptoError;

/// RFC 2409 (Oakley group 2) 1024-bit prime, in hex.
const MODP_1024_HEX: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
     020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
     4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
     EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF";

/// RFC 3526 (group 14) 2048-bit prime, in hex.
const MODP_2048_HEX: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
     020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
     4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
     EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
     98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
     9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
     E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
     3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

/// A named Diffie-Hellman group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupId {
    /// 1024-bit MODP group (RFC 2409 group 2). Fast; used by default in
    /// tests and simulations.
    Modp1024,
    /// 2048-bit MODP group (RFC 3526 group 14).
    Modp2048,
}

impl GroupId {
    /// Stable one-byte tag used in hashes and wire messages.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            GroupId::Modp1024 => 1,
            GroupId::Modp2048 => 2,
        }
    }

    /// Parses a tag back into a group id.
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(GroupId::Modp1024),
            2 => Some(GroupId::Modp2048),
            _ => None,
        }
    }
}

/// Group parameters: a safe prime `p`, the subgroup order `q = (p-1)/2`, and
/// the generator `g = 4` of the order-`q` subgroup.
#[derive(Clone)]
pub struct DhGroup {
    id: GroupId,
    p: BigUint,
    q: BigUint,
    g: BigUint,
}

impl DhGroup {
    /// Returns the group with the given id.
    #[must_use]
    pub fn new(id: GroupId) -> Self {
        let p = match id {
            GroupId::Modp1024 => BigUint::from_hex(MODP_1024_HEX),
            GroupId::Modp2048 => BigUint::from_hex(MODP_2048_HEX),
        }
        .expect("built-in group constants are valid hex");
        let q = p.sub(&BigUint::one()).shr(1);
        DhGroup {
            id,
            p,
            q,
            g: BigUint::from_u64(4),
        }
    }

    /// The default group used across the reproduction (1024-bit; fast enough
    /// for simulation while exercising the full code path).
    #[must_use]
    pub fn default_group() -> Self {
        Self::new(GroupId::Modp1024)
    }

    /// Group identifier.
    #[must_use]
    pub fn id(&self) -> GroupId {
        self.id
    }

    /// The prime modulus `p`.
    #[must_use]
    pub fn prime(&self) -> &BigUint {
        &self.p
    }

    /// The subgroup order `q`.
    #[must_use]
    pub fn order(&self) -> &BigUint {
        &self.q
    }

    /// The generator `g`.
    #[must_use]
    pub fn generator(&self) -> &BigUint {
        &self.g
    }

    /// Size of a serialized group element in bytes.
    #[must_use]
    pub fn element_len(&self) -> usize {
        self.p.bit_len().div_ceil(8)
    }

    /// Computes `g^exponent mod p`.
    pub fn pow_g(&self, exponent: &BigUint) -> Result<BigUint, CryptoError> {
        self.g.mod_exp(exponent, &self.p)
    }

    /// Computes `base^exponent mod p`.
    pub fn pow(&self, base: &BigUint, exponent: &BigUint) -> Result<BigUint, CryptoError> {
        base.mod_exp(exponent, &self.p)
    }

    /// Checks that an element is in the valid range `(1, p-1)`.
    ///
    /// With `strict` set, additionally verifies membership in the order-`q`
    /// subgroup (one extra exponentiation).
    pub fn check_element(&self, element: &BigUint, strict: bool) -> Result<(), CryptoError> {
        let p_minus_1 = self.p.sub(&BigUint::one());
        if element <= &BigUint::one() || element >= &p_minus_1 {
            return Err(CryptoError::OutOfRange("DH element outside (1, p-1)"));
        }
        if strict {
            let check = element.mod_exp(&self.q, &self.p)?;
            if check != BigUint::one() {
                return Err(CryptoError::OutOfRange(
                    "DH element not in prime-order subgroup",
                ));
            }
        }
        Ok(())
    }

    /// Samples a uniform scalar in `[1, q)`.
    #[must_use]
    pub fn random_scalar(&self, rng: &mut Drbg) -> BigUint {
        BigUint::random_nonzero_below(rng, &self.q)
    }

    /// Reduces arbitrary bytes into a scalar modulo `q`.
    pub fn scalar_from_bytes(&self, bytes: &[u8]) -> Result<BigUint, CryptoError> {
        BigUint::from_bytes_be(bytes).rem(&self.q)
    }
}

impl core::fmt::Debug for DhGroup {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DhGroup")
            .field("id", &self.id)
            .field("bits", &self.p.bit_len())
            .finish()
    }
}

/// A Diffie-Hellman secret exponent.
#[derive(Clone)]
pub struct DhSecret {
    scalar: BigUint,
}

impl DhSecret {
    /// Access the raw scalar (used by the Schnorr module and tests).
    #[must_use]
    pub fn scalar(&self) -> &BigUint {
        &self.scalar
    }
}

/// A Diffie-Hellman public value `g^x mod p`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DhPublic {
    element: BigUint,
}

impl DhPublic {
    /// Serializes the public value as fixed-width big-endian bytes.
    #[must_use]
    pub fn to_bytes(&self, group: &DhGroup) -> Vec<u8> {
        self.element.to_bytes_be_padded(group.element_len())
    }

    /// Parses a public value, checking it is in range for the group.
    pub fn from_bytes(group: &DhGroup, bytes: &[u8]) -> Result<Self, CryptoError> {
        let element = BigUint::from_bytes_be(bytes);
        group.check_element(&element, false)?;
        Ok(DhPublic { element })
    }

    /// Access the raw group element.
    #[must_use]
    pub fn element(&self) -> &BigUint {
        &self.element
    }
}

/// An ephemeral or static Diffie-Hellman key pair.
pub struct DhKeyPair {
    group: DhGroup,
    secret: DhSecret,
    public: DhPublic,
}

impl DhKeyPair {
    /// Generates a key pair in `group` using `rng`.
    pub fn generate(group: DhGroup, rng: &mut Drbg) -> Result<Self, CryptoError> {
        let scalar = group.random_scalar(rng);
        let element = group.pow_g(&scalar)?;
        Ok(DhKeyPair {
            group,
            secret: DhSecret { scalar },
            public: DhPublic { element },
        })
    }

    /// The group this key pair belongs to.
    #[must_use]
    pub fn group(&self) -> &DhGroup {
        &self.group
    }

    /// The public half.
    #[must_use]
    pub fn public(&self) -> &DhPublic {
        &self.public
    }

    /// The secret half.
    #[must_use]
    pub fn secret(&self) -> &DhSecret {
        &self.secret
    }

    /// Computes the raw shared group element with a peer public value.
    pub fn shared_element(&self, peer: &DhPublic) -> Result<BigUint, CryptoError> {
        self.group.check_element(&peer.element, false)?;
        self.group.pow(&peer.element, &self.secret.scalar)
    }

    /// Derives `len` bytes of shared key material bound to `context`.
    ///
    /// Both sides of the handshake derive identical output when they use the
    /// same context string.
    pub fn derive_shared_key(
        &self,
        peer: &DhPublic,
        context: &[u8],
        len: usize,
    ) -> Result<Vec<u8>, CryptoError> {
        let shared = self.shared_element(peer)?;
        let ikm = shared.to_bytes_be_padded(self.group.element_len());
        Ok(hkdf(b"glimmers-dh-v1", &ikm, context, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Drbg {
        Drbg::from_seed([33u8; 32])
    }

    #[test]
    fn group_parameters_are_consistent() {
        for id in [GroupId::Modp1024, GroupId::Modp2048] {
            let group = DhGroup::new(id);
            assert_eq!(group.id(), id);
            // p = 2q + 1.
            assert_eq!(
                group.order().shl(1).add(&BigUint::one()),
                group.prime().clone()
            );
            // The generator is in the prime-order subgroup.
            assert!(group.check_element(group.generator(), true).is_ok());
            assert_eq!(GroupId::from_tag(id.tag()), Some(id));
        }
        assert_eq!(DhGroup::new(GroupId::Modp1024).prime().bit_len(), 1024);
        assert_eq!(DhGroup::new(GroupId::Modp2048).prime().bit_len(), 2048);
        assert_eq!(GroupId::from_tag(99), None);
    }

    #[test]
    fn key_agreement_matches() {
        let group = DhGroup::default_group();
        let mut r = rng();
        let alice = DhKeyPair::generate(group.clone(), &mut r).unwrap();
        let bob = DhKeyPair::generate(group.clone(), &mut r).unwrap();

        let k_ab = alice.derive_shared_key(bob.public(), b"ctx", 32).unwrap();
        let k_ba = bob.derive_shared_key(alice.public(), b"ctx", 32).unwrap();
        assert_eq!(k_ab, k_ba);
        assert_eq!(k_ab.len(), 32);

        // Different context gives a different key.
        let k_other = alice.derive_shared_key(bob.public(), b"other", 32).unwrap();
        assert_ne!(k_ab, k_other);

        // A third party derives a different key.
        let eve = DhKeyPair::generate(group, &mut r).unwrap();
        let k_eve = eve.derive_shared_key(alice.public(), b"ctx", 32).unwrap();
        assert_ne!(k_ab, k_eve);
    }

    #[test]
    fn public_value_round_trip() {
        let group = DhGroup::default_group();
        let mut r = rng();
        let kp = DhKeyPair::generate(group.clone(), &mut r).unwrap();
        let bytes = kp.public().to_bytes(&group);
        assert_eq!(bytes.len(), group.element_len());
        let parsed = DhPublic::from_bytes(&group, &bytes).unwrap();
        assert_eq!(&parsed, kp.public());
    }

    #[test]
    fn invalid_elements_rejected() {
        let group = DhGroup::default_group();
        // 0, 1, p-1, and p are all invalid.
        assert!(group.check_element(&BigUint::zero(), false).is_err());
        assert!(group.check_element(&BigUint::one(), false).is_err());
        let p_minus_1 = group.prime().sub(&BigUint::one());
        assert!(group.check_element(&p_minus_1, false).is_err());
        assert!(group.check_element(group.prime(), false).is_err());
        // 2 generates the full group (order 2q), not the prime-order subgroup,
        // when 2 is a non-residue; strict check still accepts it if it happens
        // to be a residue, so instead check a known non-member: g * (p-1)
        // which equals -g and has order 2q.
        let minus_g = group
            .prime()
            .sub(&BigUint::one())
            .mod_mul(group.generator(), group.prime())
            .unwrap();
        assert!(group.check_element(&minus_g, true).is_err());
        assert!(group.check_element(&minus_g, false).is_ok());
        // Parsing rejects out-of-range bytes.
        assert!(DhPublic::from_bytes(&group, &[0u8]).is_err());
    }

    #[test]
    fn scalars_are_in_range() {
        let group = DhGroup::default_group();
        let mut r = rng();
        for _ in 0..10 {
            let s = group.random_scalar(&mut r);
            assert!(!s.is_zero());
            assert!(&s < group.order());
        }
        let reduced = group.scalar_from_bytes(&[0xFFu8; 200]).unwrap();
        assert!(&reduced < group.order());
    }

    #[test]
    fn deterministic_generation() {
        let group = DhGroup::default_group();
        let a = DhKeyPair::generate(group.clone(), &mut Drbg::from_seed([1u8; 32])).unwrap();
        let b = DhKeyPair::generate(group, &mut Drbg::from_seed([1u8; 32])).unwrap();
        assert_eq!(a.public(), b.public());
    }
}
