//! The ChaCha20 stream cipher (RFC 8439, block function and XOR keystream).
//!
//! ChaCha20 encrypts the confidential validation predicates of Section 4.1
//! (the service ships an encrypted detector to the Glimmer) and drives the
//! deterministic random bit generator in [`crate::drbg`].

/// Key size in bytes.
pub const KEY_LEN: usize = 32;

/// Nonce size in bytes.
pub const NONCE_LEN: usize = 12;

/// Size of one keystream block.
pub const BLOCK_LEN: usize = 64;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha20 cipher instance bound to a key and nonce.
///
/// The instance is a keystream generator; [`ChaCha20::apply`] XORs the
/// keystream into a buffer, which both encrypts and decrypts.
///
/// # Examples
///
/// ```
/// use glimmer_crypto::chacha20::ChaCha20;
/// let key = [7u8; 32];
/// let nonce = [9u8; 12];
/// let mut buf = b"secret predicate bytecode".to_vec();
/// ChaCha20::new(&key, &nonce).apply(&mut buf, 0);
/// assert_ne!(&buf, b"secret predicate bytecode");
/// ChaCha20::new(&key, &nonce).apply(&mut buf, 0);
/// assert_eq!(&buf, b"secret predicate bytecode");
/// ```
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

impl ChaCha20 {
    /// Creates a cipher for the given 256-bit key and 96-bit nonce.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        let mut k = [0u32; 8];
        for (i, item) in k.iter_mut().enumerate() {
            *item =
                u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        let mut n = [0u32; 3];
        for (i, item) in n.iter_mut().enumerate() {
            *item = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 { key: k, nonce: n }
    }

    /// Produces the 64-byte keystream block for the given counter value.
    #[must_use]
    pub fn block(&self, counter: u32) -> [u8; BLOCK_LEN] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);

        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }

        let mut out = [0u8; BLOCK_LEN];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream (starting at block `initial_counter`) into `data`.
    ///
    /// Applying the same operation twice with the same parameters restores the
    /// original data, so this method serves as both encrypt and decrypt.
    pub fn apply(&self, data: &mut [u8], initial_counter: u32) {
        let mut counter = initial_counter;
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let ks = self.block(counter);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] ^= state[a];
    state[d] = state[d].rotate_left(16);

    state[c] = state[c].wrapping_add(state[d]);
    state[b] ^= state[c];
    state[b] = state[b].rotate_left(12);

    state[a] = state[a].wrapping_add(state[b]);
    state[d] ^= state[a];
    state[d] = state[d].rotate_left(8);

    state[c] = state[c].wrapping_add(state[d]);
    state[b] ^= state[c];
    state[b] = state[b].rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 8439 section 2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; 32];
        for (i, item) in key.iter_mut().enumerate() {
            *item = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = ChaCha20::new(&key, &nonce).block(1);
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 8439 section 2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let mut key = [0u8; 32];
        for (i, item) in key.iter_mut().enumerate() {
            *item = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut buf = plaintext.to_vec();
        ChaCha20::new(&key, &nonce).apply(&mut buf, 1);
        assert_eq!(
            hex(&buf[..64]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
        );
        // Round trip.
        ChaCha20::new(&key, &nonce).apply(&mut buf, 1);
        assert_eq!(&buf, plaintext);
    }

    #[test]
    fn distinct_nonces_give_distinct_streams() {
        let key = [1u8; 32];
        let a = ChaCha20::new(&key, &[0u8; 12]).block(0);
        let b = ChaCha20::new(&key, &[1u8; 12]).block(0);
        assert_ne!(a, b);
    }

    #[test]
    fn partial_block_round_trip() {
        let key = [3u8; 32];
        let nonce = [5u8; 12];
        for len in [0usize, 1, 63, 64, 65, 200] {
            let original: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let mut buf = original.clone();
            ChaCha20::new(&key, &nonce).apply(&mut buf, 7);
            ChaCha20::new(&key, &nonce).apply(&mut buf, 7);
            assert_eq!(buf, original, "len {len}");
        }
    }
}
