//! Schnorr signatures over the MODP prime-order subgroups of [`crate::dh`].
//!
//! The Glimmer's Signing component endorses validated contributions with a
//! key provided by the service and sealed to the Glimmer's measurement
//! (Section 3). The service then verifies the endorsement before accepting a
//! contribution into the aggregate. Signatures are also used by the service
//! to authenticate its Diffie-Hellman handshake values in Section 4.1.
//!
//! The scheme is classic Schnorr over a subgroup of prime order `q`:
//!
//! * keygen: secret `x` uniform in `[1, q)`, public `y = g^x mod p`
//! * sign: nonce `k`, commitment `r = g^k`, challenge `e = H(id || r || m) mod q`,
//!   response `s = k + x·e mod q`; the signature is `(e, s)`
//! * verify: recompute `r' = g^s · y^{-e}` and accept iff `H(id || r' || m) ≡ e`
//!
//! The nonce is derived deterministically from the secret key and message
//! (RFC 6979 style) so that enclave code does not need an entropy source at
//! signing time and can never reuse a nonce across different messages.

use crate::bignum::BigUint;
use crate::dh::{DhGroup, GroupId};
use crate::drbg::Drbg;
use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;
use crate::CryptoError;

/// A Schnorr signature: the challenge `e` and response `s`, both scalars
/// modulo the group order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    e: BigUint,
    s: BigUint,
}

impl Signature {
    /// Serializes as `group_tag || e || s` with fixed-width scalars.
    #[must_use]
    pub fn to_bytes(&self, group: &DhGroup) -> Vec<u8> {
        let scalar_len = group.element_len();
        let mut out = Vec::with_capacity(1 + 2 * scalar_len);
        out.push(group.id().tag());
        out.extend_from_slice(&self.e.to_bytes_be_padded(scalar_len));
        out.extend_from_slice(&self.s.to_bytes_be_padded(scalar_len));
        out
    }

    /// Parses a signature serialized by [`Signature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<(GroupId, Self), CryptoError> {
        if bytes.is_empty() {
            return Err(CryptoError::InvalidLength {
                got: 0,
                expected: 1,
            });
        }
        let id = GroupId::from_tag(bytes[0])
            .ok_or(CryptoError::OutOfRange("unknown signature group tag"))?;
        let group = DhGroup::new(id);
        let scalar_len = group.element_len();
        let expected = 1 + 2 * scalar_len;
        if bytes.len() != expected {
            return Err(CryptoError::InvalidLength {
                got: bytes.len(),
                expected,
            });
        }
        let e = BigUint::from_bytes_be(&bytes[1..1 + scalar_len]);
        let s = BigUint::from_bytes_be(&bytes[1 + scalar_len..]);
        Ok((id, Signature { e, s }))
    }
}

/// A Schnorr signing key.
pub struct SigningKey {
    group: DhGroup,
    x: BigUint,
    public: VerifyingKey,
}

/// A Schnorr verification (public) key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyingKey {
    group_id: GroupId,
    y: BigUint,
}

impl SigningKey {
    /// Generates a fresh signing key in `group`.
    pub fn generate(group: DhGroup, rng: &mut Drbg) -> Result<Self, CryptoError> {
        let x = group.random_scalar(rng);
        Self::from_scalar(group, x)
    }

    /// Reconstructs a signing key from its secret scalar bytes (big-endian).
    ///
    /// This is how a Glimmer enclave restores the service-provided signing key
    /// after unsealing it from sealed storage.
    pub fn from_secret_bytes(group: DhGroup, bytes: &[u8]) -> Result<Self, CryptoError> {
        let x = BigUint::from_bytes_be(bytes).rem(group.order())?;
        if x.is_zero() {
            return Err(CryptoError::OutOfRange("signing key scalar is zero"));
        }
        Self::from_scalar(group, x)
    }

    fn from_scalar(group: DhGroup, x: BigUint) -> Result<Self, CryptoError> {
        let y = group.pow_g(&x)?;
        let public = VerifyingKey {
            group_id: group.id(),
            y,
        };
        Ok(SigningKey { group, x, public })
    }

    /// The secret scalar as fixed-width bytes (for sealing).
    #[must_use]
    pub fn secret_bytes(&self) -> Vec<u8> {
        self.x.to_bytes_be_padded(self.group.element_len())
    }

    /// The corresponding verification key.
    #[must_use]
    pub fn verifying_key(&self) -> &VerifyingKey {
        &self.public
    }

    /// The group of this key.
    #[must_use]
    pub fn group(&self) -> &DhGroup {
        &self.group
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Result<Signature, CryptoError> {
        // Deterministic nonce: k = HMAC(x, message || counter) reduced mod q,
        // retried if zero. The counter only advances on the (astronomically
        // unlikely) zero case.
        let key_bytes = self.secret_bytes();
        let mut counter = 0u8;
        let k = loop {
            let mut input = Vec::with_capacity(message.len() + 1);
            input.extend_from_slice(message);
            input.push(counter);
            let digest = hmac_sha256(&key_bytes, &input);
            // Widen the nonce beyond 256 bits by expanding twice, so the
            // reduction mod q is statistically close to uniform.
            let digest2 = hmac_sha256(&key_bytes, &digest);
            let mut wide = Vec::with_capacity(64);
            wide.extend_from_slice(&digest);
            wide.extend_from_slice(&digest2);
            let candidate = BigUint::from_bytes_be(&wide).rem(self.group.order())?;
            if !candidate.is_zero() {
                break candidate;
            }
            counter = counter.wrapping_add(1);
        };

        let r = self.group.pow_g(&k)?;
        let e = challenge(&self.group, &r, message)?;
        // s = k + x * e mod q.
        let xe = self.x.mod_mul(&e, self.group.order())?;
        let s = k.mod_add(&xe, self.group.order())?;
        Ok(Signature { e, s })
    }
}

impl VerifyingKey {
    /// The group this key belongs to.
    #[must_use]
    pub fn group(&self) -> DhGroup {
        DhGroup::new(self.group_id)
    }

    /// Serializes as `group_tag || y` with a fixed-width element.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let group = self.group();
        let mut out = Vec::with_capacity(1 + group.element_len());
        out.push(self.group_id.tag());
        out.extend_from_slice(&self.y.to_bytes_be_padded(group.element_len()));
        out
    }

    /// Parses a verification key serialized by [`VerifyingKey::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.is_empty() {
            return Err(CryptoError::InvalidLength {
                got: 0,
                expected: 1,
            });
        }
        let group_id = GroupId::from_tag(bytes[0])
            .ok_or(CryptoError::OutOfRange("unknown verifying key group tag"))?;
        let group = DhGroup::new(group_id);
        if bytes.len() != 1 + group.element_len() {
            return Err(CryptoError::InvalidLength {
                got: bytes.len(),
                expected: 1 + group.element_len(),
            });
        }
        let y = BigUint::from_bytes_be(&bytes[1..]);
        group.check_element(&y, false)?;
        Ok(VerifyingKey { group_id, y })
    }

    /// Verifies `signature` over `message`.
    ///
    /// Returns `Ok(())` on success and [`CryptoError::VerificationFailed`]
    /// otherwise.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        let group = self.group();
        let q = group.order();
        if &signature.e >= q || &signature.s >= q {
            return Err(CryptoError::VerificationFailed);
        }
        // r' = g^s * y^(q - e) mod p  (y has order q, so y^(q-e) = y^{-e}).
        let neg_e = q.sub(&signature.e);
        let gs = group.pow_g(&signature.s)?;
        let y_neg_e = group.pow(&self.y, &neg_e)?;
        let r_prime = gs.mod_mul(&y_neg_e, group.prime())?;
        let e_prime = challenge(&group, &r_prime, message)?;
        if e_prime == signature.e {
            Ok(())
        } else {
            Err(CryptoError::VerificationFailed)
        }
    }
}

/// Fiat-Shamir challenge: `H(group_tag || r || message) mod q`.
fn challenge(group: &DhGroup, r: &BigUint, message: &[u8]) -> Result<BigUint, CryptoError> {
    let mut h = Sha256::new();
    h.update(&[group.id().tag()]);
    h.update(&r.to_bytes_be_padded(group.element_len()));
    h.update(message);
    let digest = h.finalize();
    BigUint::from_bytes_be(&digest).rem(group.order())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Drbg {
        Drbg::from_seed([41u8; 32])
    }

    fn test_key() -> SigningKey {
        SigningKey::generate(DhGroup::default_group(), &mut rng()).unwrap()
    }

    #[test]
    fn sign_verify_round_trip() {
        let key = test_key();
        let msg = b"validated contribution bytes";
        let sig = key.sign(msg).unwrap();
        assert!(key.verifying_key().verify(msg, &sig).is_ok());
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let key = test_key();
        let sig = key.sign(b"message A").unwrap();
        assert_eq!(
            key.verifying_key().verify(b"message B", &sig),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let key = test_key();
        let other =
            SigningKey::generate(DhGroup::default_group(), &mut Drbg::from_seed([99u8; 32]))
                .unwrap();
        let sig = key.sign(b"msg").unwrap();
        assert!(other.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let key = test_key();
        let sig = key.sign(b"msg").unwrap();
        let tampered = Signature {
            e: sig.e.clone(),
            s: sig.s.add(&BigUint::one()).rem(key.group().order()).unwrap(),
        };
        assert!(key.verifying_key().verify(b"msg", &tampered).is_err());
        // Out-of-range scalars are rejected outright.
        let oversized = Signature {
            e: key.group().order().clone(),
            s: sig.s,
        };
        assert!(key.verifying_key().verify(b"msg", &oversized).is_err());
    }

    #[test]
    fn signature_serialization_round_trip() {
        let key = test_key();
        let sig = key.sign(b"serialize me").unwrap();
        let bytes = sig.to_bytes(key.group());
        let (id, parsed) = Signature::from_bytes(&bytes).unwrap();
        assert_eq!(id, GroupId::Modp1024);
        assert_eq!(parsed, sig);
        assert!(Signature::from_bytes(&[]).is_err());
        assert!(Signature::from_bytes(&[9u8; 10]).is_err());
        assert!(Signature::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn verifying_key_serialization_round_trip() {
        let key = test_key();
        let bytes = key.verifying_key().to_bytes();
        let parsed = VerifyingKey::from_bytes(&bytes).unwrap();
        assert_eq!(&parsed, key.verifying_key());
        let sig = key.sign(b"endorse").unwrap();
        assert!(parsed.verify(b"endorse", &sig).is_ok());
        assert!(VerifyingKey::from_bytes(&[]).is_err());
        assert!(VerifyingKey::from_bytes(&[7u8; 3]).is_err());
    }

    #[test]
    fn key_restore_from_sealed_bytes() {
        let key = test_key();
        let secret = key.secret_bytes();
        let restored = SigningKey::from_secret_bytes(DhGroup::default_group(), &secret).unwrap();
        assert_eq!(restored.verifying_key(), key.verifying_key());
        let sig = restored.sign(b"resealed").unwrap();
        assert!(key.verifying_key().verify(b"resealed", &sig).is_ok());
        // A zero scalar is rejected.
        assert!(SigningKey::from_secret_bytes(DhGroup::default_group(), &[0u8; 16]).is_err());
    }

    #[test]
    fn deterministic_signatures() {
        let key = test_key();
        let s1 = key.sign(b"same message").unwrap();
        let s2 = key.sign(b"same message").unwrap();
        assert_eq!(s1, s2);
        let s3 = key.sign(b"different message").unwrap();
        assert_ne!(s1, s3);
    }

    #[test]
    fn cross_group_signatures() {
        // Signing in the 2048-bit group also works (slower; single case).
        let group = DhGroup::new(GroupId::Modp2048);
        let key = SigningKey::generate(group, &mut rng()).unwrap();
        let sig = key.sign(b"big group").unwrap();
        assert!(key.verifying_key().verify(b"big group", &sig).is_ok());
        let bytes = sig.to_bytes(key.group());
        let (id, parsed) = Signature::from_bytes(&bytes).unwrap();
        assert_eq!(id, GroupId::Modp2048);
        assert_eq!(parsed, sig);
    }
}
