//! Cryptographic substrate for the Glimmers reproduction.
//!
//! The Glimmer architecture (Lie & Maniatis, HotOS 2017) relies on a small set
//! of cryptographic building blocks: hashing for enclave measurement, MACs and
//! key derivation for sealed storage, a stream cipher for confidential
//! predicate delivery, additive blinding for secure aggregation,
//! Diffie-Hellman for the attested channel of Section 4.1, and digital
//! signatures for contribution endorsement. All of those primitives are
//! implemented from scratch in this crate so that the reproduction has no
//! external cryptographic dependencies.
//!
//! # Security disclaimer
//!
//! This code is written for a research reproduction. It favours clarity and
//! portability over side-channel hardening; only [`ct::ct_eq`] makes a
//! constant-time claim. Do not use it to protect real data.
//!
//! # Module map
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256.
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104).
//! * [`mod@hkdf`] — HKDF extract/expand (RFC 5869).
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439, without Poly1305).
//! * [`aead`] — encrypt-then-MAC authenticated encryption built from
//!   ChaCha20 + HMAC-SHA-256.
//! * [`drbg`] — a deterministic random bit generator built on ChaCha20.
//! * [`bignum`] — arbitrary-precision unsigned integers.
//! * [`dh`] — finite-field Diffie-Hellman over RFC 3526 / RFC 2409 groups.
//! * [`schnorr`] — Schnorr signatures over the same prime-order subgroups.
//! * [`ct`] — constant-time helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod bignum;
pub mod chacha20;
pub mod ct;
pub mod dh;
pub mod drbg;
pub mod hkdf;
pub mod hmac;
pub mod schnorr;
pub mod sha256;

pub use aead::{open, seal, AeadError, AeadKey};
pub use bignum::BigUint;
pub use chacha20::ChaCha20;
pub use dh::{DhGroup, DhKeyPair, DhPublic, DhSecret};
pub use drbg::Drbg;
pub use hkdf::{hkdf, hkdf_expand, hkdf_extract};
pub use hmac::{hmac_sha256, HmacSha256};
pub use schnorr::{Signature, SigningKey, VerifyingKey};
pub use sha256::{sha256, Sha256};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A MAC or signature failed to verify.
    VerificationFailed,
    /// An input had an invalid length for the requested operation.
    InvalidLength {
        /// What the caller supplied.
        got: usize,
        /// What the primitive expected.
        expected: usize,
    },
    /// A scalar or group element was outside its valid range.
    OutOfRange(&'static str),
    /// Division by zero or modulus of zero in bignum arithmetic.
    DivisionByZero,
}

impl core::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CryptoError::VerificationFailed => write!(f, "verification failed"),
            CryptoError::InvalidLength { got, expected } => {
                write!(f, "invalid length: got {got}, expected {expected}")
            }
            CryptoError::OutOfRange(what) => write!(f, "value out of range: {what}"),
            CryptoError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = core::result::Result<T, CryptoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = CryptoError::InvalidLength {
            got: 3,
            expected: 32,
        };
        assert!(e.to_string().contains("32"));
        assert!(CryptoError::VerificationFailed
            .to_string()
            .contains("verification"));
        assert!(CryptoError::OutOfRange("scalar")
            .to_string()
            .contains("scalar"));
        assert!(CryptoError::DivisionByZero.to_string().contains("zero"));
    }
}
