//! Arbitrary-precision unsigned integers.
//!
//! The finite-field Diffie-Hellman handshake of Section 4.1 and the Schnorr
//! endorsement signatures need 1024/2048-bit modular arithmetic. This module
//! provides a small, dependency-free big-integer type with schoolbook
//! multiplication, binary long division, and Montgomery-based modular
//! exponentiation (the hot path).
//!
//! Limbs are `u64`, stored little-endian (least-significant limb first), and
//! values are kept normalized (no trailing zero limbs).

use crate::drbg::Drbg;
use crate::CryptoError;

/// An arbitrary-precision unsigned integer.
///
/// # Examples
///
/// ```
/// use glimmer_crypto::bignum::BigUint;
/// let a = BigUint::from_u64(1u64 << 40);
/// let b = BigUint::from_u64(1u64 << 30);
/// let product = a.mul(&b);
/// assert_eq!(product.bit_len(), 71);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zeros (the value 0 has no limbs).
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    #[must_use]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    #[must_use]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs a value from a `u64`.
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Constructs a value from big-endian bytes.
    #[must_use]
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut current: u64 = 0;
        let mut shift = 0u32;
        for &byte in bytes.iter().rev() {
            current |= (byte as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(current);
                current = 0;
                shift = 0;
            }
        }
        if current != 0 {
            limbs.push(current);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Constructs a value from a big-endian hex string (whitespace ignored).
    ///
    /// Returns `None` if the string contains non-hex characters.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Self> {
        let cleaned: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        if cleaned.is_empty() {
            return Some(Self::zero());
        }
        let mut bytes = Vec::with_capacity(cleaned.len() / 2 + 1);
        let padded = if cleaned.len() % 2 == 1 {
            format!("0{cleaned}")
        } else {
            cleaned
        };
        for i in (0..padded.len()).step_by(2) {
            bytes.push(u8::from_str_radix(&padded[i..i + 2], 16).ok()?);
        }
        Some(Self::from_bytes_be(&bytes))
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    #[must_use]
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        // Strip leading zero bytes.
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.drain(..first_nonzero);
        out
    }

    /// Serializes to big-endian bytes left-padded to `len` (truncating from the
    /// left if the value does not fit).
    #[must_use]
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        if raw.len() >= len {
            raw[raw.len() - len..].to_vec()
        } else {
            let mut out = vec![0u8; len - raw.len()];
            out.extend_from_slice(&raw);
            out
        }
    }

    /// Returns a lowercase hex representation ("0" for zero).
    #[must_use]
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        self.to_bytes_be()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect::<String>()
            .trim_start_matches('0')
            .to_string()
    }

    /// True if the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is odd.
    #[must_use]
    pub fn is_odd(&self) -> bool {
        self.limbs.first().map(|l| l & 1 == 1).unwrap_or(false)
    }

    /// Number of significant bits (0 for zero).
    #[must_use]
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let offset = i % 64;
        self.limbs
            .get(limb)
            .map(|l| (l >> offset) & 1 == 1)
            .unwrap_or(false)
    }

    /// Returns the low 64 bits of the value.
    #[must_use]
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Addition.
    #[must_use]
    pub fn add(&self, other: &BigUint) -> BigUint {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let sum = a as u128 + b as u128 + carry as u128;
            out.push(sum as u64);
            carry = (sum >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Subtraction; returns `None` if `other > self`.
    #[must_use]
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.normalize();
        Some(r)
    }

    /// Subtraction that panics on underflow (for internal use where the caller
    /// has already established ordering).
    #[must_use]
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint::sub underflow; use checked_sub")
    }

    /// Schoolbook multiplication.
    #[must_use]
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry as u128;
                out[i + j] = cur as u64;
                carry = (cur >> 64) as u64;
            }
            out[i + other.limbs.len()] = out[i + other.limbs.len()].wrapping_add(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Multiplication by a `u64`.
    #[must_use]
    pub fn mul_u64(&self, other: u64) -> BigUint {
        self.mul(&BigUint::from_u64(other))
    }

    /// Left shift by `bits`.
    #[must_use]
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            let mut c = self.clone();
            c.normalize();
            return c;
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `bits`.
    #[must_use]
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            for i in limb_shift..self.limbs.len() {
                let mut limb = self.limbs[i] >> bit_shift;
                if i + 1 < self.limbs.len() {
                    limb |= self.limbs[i + 1] << (64 - bit_shift);
                }
                out.push(limb);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Division with remainder: returns `(quotient, remainder)`.
    ///
    /// Uses binary long division; adequate for the occasional scalar
    /// reduction, while the modular-exponentiation hot path uses Montgomery
    /// arithmetic instead.
    pub fn div_rem(&self, divisor: &BigUint) -> Result<(BigUint, BigUint), CryptoError> {
        if divisor.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if self < divisor {
            return Ok((BigUint::zero(), self.clone()));
        }
        let shift = self.bit_len() - divisor.bit_len();
        let mut remainder = self.clone();
        let mut quotient = BigUint::zero();
        let mut shifted = divisor.shl(shift);
        for i in (0..=shift).rev() {
            if remainder >= shifted {
                remainder = remainder.sub(&shifted);
                quotient = quotient.set_bit(i);
            }
            shifted = shifted.shr(1);
        }
        Ok((quotient, remainder))
    }

    /// Remainder.
    pub fn rem(&self, modulus: &BigUint) -> Result<BigUint, CryptoError> {
        Ok(self.div_rem(modulus)?.1)
    }

    fn set_bit(mut self, i: usize) -> BigUint {
        let limb = i / 64;
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 64);
        self
    }

    /// Modular addition: `(self + other) mod modulus`.
    ///
    /// Both operands must already be reduced modulo `modulus`.
    pub fn mod_add(&self, other: &BigUint, modulus: &BigUint) -> Result<BigUint, CryptoError> {
        if modulus.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        let sum = self.add(other);
        if &sum >= modulus {
            Ok(sum.sub(modulus))
        } else {
            Ok(sum)
        }
    }

    /// Modular subtraction: `(self - other) mod modulus`.
    ///
    /// Both operands must already be reduced modulo `modulus`.
    pub fn mod_sub(&self, other: &BigUint, modulus: &BigUint) -> Result<BigUint, CryptoError> {
        if modulus.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if self >= other {
            Ok(self.sub(other))
        } else {
            Ok(self.add(modulus).sub(other))
        }
    }

    /// Modular multiplication via full product and reduction.
    pub fn mod_mul(&self, other: &BigUint, modulus: &BigUint) -> Result<BigUint, CryptoError> {
        self.mul(other).rem(modulus)
    }

    /// Modular exponentiation: `self^exponent mod modulus`.
    ///
    /// Uses Montgomery arithmetic when the modulus is odd (the common case for
    /// the prime moduli used here), falling back to multiply-and-reduce for
    /// even moduli.
    pub fn mod_exp(&self, exponent: &BigUint, modulus: &BigUint) -> Result<BigUint, CryptoError> {
        if modulus.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if modulus == &BigUint::one() {
            return Ok(BigUint::zero());
        }
        if modulus.is_odd() {
            let ctx = MontgomeryCtx::new(modulus)?;
            return ctx.mod_exp(self, exponent);
        }
        // Generic square-and-multiply for even moduli (rare; used only in tests).
        let mut base = self.rem(modulus)?;
        let mut result = BigUint::one();
        for i in 0..exponent.bit_len() {
            if exponent.bit(i) {
                result = result.mod_mul(&base, modulus)?;
            }
            base = base.mod_mul(&base, modulus)?;
        }
        Ok(result)
    }

    /// Modular inverse via the extended Euclidean algorithm.
    ///
    /// Returns [`CryptoError::OutOfRange`] if the inverse does not exist.
    pub fn mod_inverse(&self, modulus: &BigUint) -> Result<BigUint, CryptoError> {
        if modulus.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        // Extended Euclid on (a, m) tracking coefficients as (sign, magnitude).
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus)?;
        // Coefficients of `self` in the Bezout identity, with explicit signs.
        let mut t0 = (false, BigUint::zero()); // 0
        let mut t1 = (false, BigUint::one()); // 1
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1)?;
            // t2 = t0 - q * t1 with sign tracking.
            let q_t1 = (t1.0, q.mul(&t1.1));
            let t2 = signed_sub(&t0, &q_t1);
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if r0 != BigUint::one() {
            return Err(CryptoError::OutOfRange("no modular inverse"));
        }
        // Normalize t0 into [0, modulus).
        let mag = t0.1.rem(modulus)?;
        if t0.0 && !mag.is_zero() {
            Ok(modulus.sub(&mag))
        } else {
            Ok(mag)
        }
    }

    /// Samples a uniform value in `[0, bound)` using rejection sampling.
    ///
    /// Returns zero for a zero bound.
    #[must_use]
    pub fn random_below(rng: &mut Drbg, bound: &BigUint) -> BigUint {
        if bound.is_zero() {
            return BigUint::zero();
        }
        let byte_len = bound.bit_len().div_ceil(8);
        let top_bits = bound.bit_len() % 8;
        loop {
            let mut bytes = rng.bytes(byte_len);
            // Mask the top byte so the candidate has at most bit_len bits,
            // which makes rejection cheap (acceptance probability > 1/2).
            if top_bits != 0 {
                bytes[0] &= (1u8 << top_bits) - 1;
            }
            let candidate = BigUint::from_bytes_be(&bytes);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Samples a uniform value in `[1, bound)`.
    #[must_use]
    pub fn random_nonzero_below(rng: &mut Drbg, bound: &BigUint) -> BigUint {
        loop {
            let candidate = Self::random_below(rng, bound);
            if !candidate.is_zero() {
                return candidate;
            }
        }
    }
}

/// Signed subtraction helper for the extended Euclidean algorithm:
/// computes `a - b` where each operand is a `(negative, magnitude)` pair.
fn signed_sub(a: &(bool, BigUint), b: &(bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - b with both non-negative.
        (false, false) => {
            if a.1 >= b.1 {
                (false, a.1.sub(&b.1))
            } else {
                (true, b.1.sub(&a.1))
            }
        }
        // (-a) - (-b) = b - a.
        (true, true) => {
            if b.1 >= a.1 {
                (false, b.1.sub(&a.1))
            } else {
                (true, a.1.sub(&b.1))
            }
        }
        // a - (-b) = a + b.
        (false, true) => (false, a.1.add(&b.1)),
        // (-a) - b = -(a + b).
        (true, false) => (true, a.1.add(&b.1)),
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            core::cmp::Ordering::Equal => {}
            ord => return ord,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                core::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        core::cmp::Ordering::Equal
    }
}

/// Montgomery multiplication context for a fixed odd modulus.
///
/// Precomputes the limb count, `-n^{-1} mod 2^64`, and `R^2 mod n`, and
/// exposes modular exponentiation in the Montgomery domain.
pub struct MontgomeryCtx {
    modulus: Vec<u64>,
    n0_inv: u64,
    r2: Vec<u64>,
    modulus_big: BigUint,
}

impl MontgomeryCtx {
    /// Creates a context; the modulus must be odd and greater than one.
    pub fn new(modulus: &BigUint) -> Result<Self, CryptoError> {
        if modulus.is_zero() || !modulus.is_odd() || modulus == &BigUint::one() {
            return Err(CryptoError::OutOfRange(
                "Montgomery modulus must be odd and > 1",
            ));
        }
        let n = modulus.limbs.clone();
        let s = n.len();

        // n0_inv = -n[0]^{-1} mod 2^64 via Newton iteration.
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg();

        // R^2 mod n where R = 2^(64 * s).
        let r2_big = BigUint::one().shl(128 * s).rem(modulus)?;
        let mut r2 = r2_big.limbs.clone();
        r2.resize(s, 0);

        Ok(MontgomeryCtx {
            modulus: n,
            n0_inv,
            r2,
            modulus_big: modulus.clone(),
        })
    }

    fn limbs(&self) -> usize {
        self.modulus.len()
    }

    /// CIOS Montgomery multiplication: returns `a * b * R^{-1} mod n`.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let s = self.limbs();
        let mut t = vec![0u64; s + 2];
        #[allow(clippy::needless_range_loop)]
        for i in 0..s {
            // t += a * b[i]
            let mut carry: u64 = 0;
            for j in 0..s {
                let sum = t[j] as u128 + (a[j] as u128) * (b[i] as u128) + carry as u128;
                t[j] = sum as u64;
                carry = (sum >> 64) as u64;
            }
            let sum = t[s] as u128 + carry as u128;
            t[s] = sum as u64;
            t[s + 1] = (sum >> 64) as u64;

            // Reduce: add m * n and shift one limb.
            let m = t[0].wrapping_mul(self.n0_inv);
            let sum = t[0] as u128 + (m as u128) * (self.modulus[0] as u128);
            let mut carry = (sum >> 64) as u64;
            for j in 1..s {
                let sum = t[j] as u128 + (m as u128) * (self.modulus[j] as u128) + carry as u128;
                t[j - 1] = sum as u64;
                carry = (sum >> 64) as u64;
            }
            let sum = t[s] as u128 + carry as u128;
            t[s - 1] = sum as u64;
            t[s] = t[s + 1].wrapping_add((sum >> 64) as u64);
            t[s + 1] = 0;
        }

        let mut result = t[..s].to_vec();
        // Conditional final subtraction.
        if t[s] != 0 || ge(&result, &self.modulus) {
            sub_in_place(&mut result, &self.modulus);
        }
        result
    }

    /// Modular exponentiation `base^exp mod n`.
    pub fn mod_exp(&self, base: &BigUint, exp: &BigUint) -> Result<BigUint, CryptoError> {
        let s = self.limbs();
        let base_red = base.rem(&self.modulus_big)?;
        let mut base_limbs = base_red.limbs.clone();
        base_limbs.resize(s, 0);

        // Convert base into the Montgomery domain.
        let base_mont = self.mont_mul(&base_limbs, &self.r2);

        // one in Montgomery domain = R mod n = mont_mul(1, R^2).
        let mut one_limbs = vec![0u64; s];
        one_limbs[0] = 1;
        let mut acc = self.mont_mul(&one_limbs, &self.r2);

        // Left-to-right square-and-multiply.
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_mont);
            }
        }

        // Convert out of the Montgomery domain.
        let out = self.mont_mul(&acc, &one_limbs);
        let mut big = BigUint { limbs: out };
        big.normalize();
        Ok(big)
    }
}

fn ge(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_bytes_be(&v.to_be_bytes())
    }

    #[test]
    fn construction_and_round_trip() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
        assert_eq!(BigUint::from_u64(42).low_u64(), 42);
        let v = BigUint::from_bytes_be(&[0, 0, 1, 2, 3]);
        assert_eq!(v.to_bytes_be(), vec![1, 2, 3]);
        assert_eq!(v.to_bytes_be_padded(5), vec![0, 0, 1, 2, 3]);
        assert_eq!(BigUint::from_hex("01fF").unwrap(), BigUint::from_u64(511));
        assert_eq!(BigUint::from_hex("zz"), None);
        assert_eq!(BigUint::from_u64(511).to_hex(), "1ff");
    }

    #[test]
    fn bit_operations() {
        let v = BigUint::from_u64(0b1011);
        assert_eq!(v.bit_len(), 4);
        assert!(v.bit(0) && v.bit(1) && !v.bit(2) && v.bit(3) && !v.bit(100));
        assert!(v.is_odd());
        assert!(!BigUint::from_u64(4).is_odd());
        assert_eq!(BigUint::zero().bit_len(), 0);
        let big_val = BigUint::one().shl(130);
        assert_eq!(big_val.bit_len(), 131);
        assert!(big_val.bit(130));
    }

    #[test]
    fn add_sub_mul_match_u128() {
        let pairs: [(u128, u128); 6] = [
            (0, 0),
            (1, u64::MAX as u128),
            (u64::MAX as u128, u64::MAX as u128),
            (1 << 100, (1 << 90) + 12345),
            (987654321987654321, 123456789123456789),
            ((1 << 126) - 1, 3),
        ];
        for (a, b) in pairs {
            let ba = big(a);
            let bb = big(b);
            assert_eq!(ba.add(&bb), big(a + b), "add {a} {b}");
            if a >= b {
                assert_eq!(ba.checked_sub(&bb), Some(big(a - b)), "sub {a} {b}");
            } else {
                assert_eq!(ba.checked_sub(&bb), None);
            }
            if let Some(prod) = a.checked_mul(b) {
                assert_eq!(ba.mul(&bb), big(prod), "mul {a} {b}");
            }
        }
    }

    #[test]
    fn shifts() {
        let v = big(0x1234_5678_9abc_def0_1122_3344_5566_7788);
        assert_eq!(v.shl(0), v);
        assert_eq!(v.shr(0), v);
        assert_eq!(v.shl(64).shr(64), v);
        assert_eq!(v.shl(3).shr(3), v);
        assert_eq!(v.shr(200), BigUint::zero());
        assert_eq!(BigUint::one().shl(127), big(1 << 127));
    }

    #[test]
    fn div_rem_matches_u128() {
        let cases: [(u128, u128); 7] = [
            (0, 7),
            (13, 7),
            (7, 13),
            (u128::MAX, 3),
            (u128::MAX, u64::MAX as u128),
            (1 << 100, 1000003),
            (999999999999999999999999, 123456789),
        ];
        for (a, b) in cases {
            let (q, r) = big(a).div_rem(&big(b)).unwrap();
            assert_eq!(q, big(a / b), "quot {a}/{b}");
            assert_eq!(r, big(a % b), "rem {a}%{b}");
        }
        assert!(big(5).div_rem(&BigUint::zero()).is_err());
    }

    #[test]
    fn division_identity_large() {
        let mut rng = Drbg::from_seed([21u8; 32]);
        for _ in 0..20 {
            let a = BigUint::from_bytes_be(&rng.bytes(48));
            let b = BigUint::from_bytes_be(&rng.bytes(20));
            if b.is_zero() {
                continue;
            }
            let (q, r) = a.div_rem(&b).unwrap();
            assert!(r < b);
            assert_eq!(q.mul(&b).add(&r), a);
        }
    }

    #[test]
    fn mod_arithmetic() {
        let m = big(1000003);
        let a = big(999999);
        let b = big(777777);
        assert_eq!(a.mod_add(&b, &m).unwrap(), big((999999 + 777777) % 1000003));
        assert_eq!(a.mod_sub(&b, &m).unwrap(), big(999999 - 777777));
        assert_eq!(b.mod_sub(&a, &m).unwrap(), big(777777 + 1000003 - 999999));
        assert_eq!(a.mod_mul(&b, &m).unwrap(), big((999999 * 777777) % 1000003));
    }

    #[test]
    fn mod_exp_small_values() {
        // 3^20 mod 1000003, cross-checked with u128 arithmetic.
        let mut expected: u128 = 1;
        for _ in 0..20 {
            expected = expected * 3 % 1000003;
        }
        assert_eq!(
            big(3).mod_exp(&big(20), &big(1000003)).unwrap(),
            big(expected)
        );
        // Fermat's little theorem: a^(p-1) = 1 mod p for prime p.
        let p = big(1000003);
        for a in [2u128, 5, 123456] {
            assert_eq!(
                big(a).mod_exp(&big(1000002), &p).unwrap(),
                BigUint::one(),
                "fermat for {a}"
            );
        }
        // Edge cases.
        assert_eq!(
            big(5).mod_exp(&BigUint::zero(), &p).unwrap(),
            BigUint::one()
        );
        assert_eq!(
            big(5).mod_exp(&big(3), &BigUint::one()).unwrap(),
            BigUint::zero()
        );
        assert!(big(5).mod_exp(&big(3), &BigUint::zero()).is_err());
    }

    #[test]
    fn mod_exp_even_modulus_fallback() {
        assert_eq!(
            big(7).mod_exp(&big(13), &big(1000)).unwrap(),
            big(7u128.pow(13) % 1000)
        );
    }

    #[test]
    fn montgomery_matches_naive_on_random_inputs() {
        let mut rng = Drbg::from_seed([23u8; 32]);
        // A 256-bit odd modulus.
        let mut modulus_bytes = rng.bytes(32);
        modulus_bytes[31] |= 1;
        modulus_bytes[0] |= 0x80;
        let m = BigUint::from_bytes_be(&modulus_bytes);
        for _ in 0..5 {
            let base = BigUint::from_bytes_be(&rng.bytes(32));
            let exp = BigUint::from_bytes_be(&rng.bytes(8));
            let fast = base.mod_exp(&exp, &m).unwrap();
            // Naive square-and-multiply for cross-checking.
            let mut naive = BigUint::one();
            let mut b = base.rem(&m).unwrap();
            for i in 0..exp.bit_len() {
                if exp.bit(i) {
                    naive = naive.mod_mul(&b, &m).unwrap();
                }
                b = b.mod_mul(&b, &m).unwrap();
            }
            assert_eq!(fast, naive);
        }
    }

    #[test]
    fn mod_inverse_basic() {
        let p = big(1000003);
        for a in [2u128, 3, 999999, 500000] {
            let inv = big(a).mod_inverse(&p).unwrap();
            assert_eq!(
                big(a).mod_mul(&inv, &p).unwrap(),
                BigUint::one(),
                "inverse of {a}"
            );
        }
        // Non-invertible: gcd(6, 9) != 1.
        assert!(big(6).mod_inverse(&big(9)).is_err());
        // Invertible in a composite modulus.
        let inv = big(7).mod_inverse(&big(9)).unwrap();
        assert_eq!(big(7).mod_mul(&inv, &big(9)).unwrap(), BigUint::one());
    }

    #[test]
    fn random_below_is_in_range() {
        let mut rng = Drbg::from_seed([29u8; 32]);
        let bound = big(1_000_000_007);
        for _ in 0..100 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
        let nz = BigUint::random_nonzero_below(&mut rng, &big(2));
        assert_eq!(nz, BigUint::one());
        assert_eq!(
            BigUint::random_below(&mut rng, &BigUint::zero()),
            BigUint::zero()
        );
    }

    #[test]
    fn ordering() {
        assert!(big(5) > big(3));
        assert!(big(3) < big(5));
        assert!(big(1 << 100) > big(u64::MAX as u128));
        assert_eq!(big(7).cmp(&big(7)), core::cmp::Ordering::Equal);
    }
}
