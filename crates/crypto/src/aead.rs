//! Authenticated encryption with associated data (encrypt-then-MAC).
//!
//! Sealed blobs, attested-channel messages, and encrypted validation
//! predicates all need confidentiality *and* integrity. This module composes
//! ChaCha20 (confidentiality) with HMAC-SHA-256 (integrity) in the standard
//! encrypt-then-MAC construction: the MAC covers the nonce, the associated
//! data, and the ciphertext, with unambiguous length framing.

use crate::chacha20::{ChaCha20, KEY_LEN, NONCE_LEN};
use crate::ct::ct_eq;
use crate::hkdf::hkdf;
use crate::hmac::HmacSha256;
use crate::CryptoError;

/// Length of the authentication tag appended to ciphertexts.
pub const TAG_LEN: usize = 32;

/// Errors from AEAD operations (re-exported alias of [`CryptoError`]).
pub type AeadError = CryptoError;

/// An AEAD key: independent sub-keys for encryption and authentication derived
/// from one 32-byte master key.
///
/// # Examples
///
/// ```
/// use glimmer_crypto::aead::AeadKey;
/// let key = AeadKey::from_master(&[42u8; 32]);
/// let nonce = [1u8; 12];
/// let ct = key.seal(&nonce, b"context", b"private contribution");
/// let pt = key.open(&nonce, b"context", &ct).unwrap();
/// assert_eq!(pt, b"private contribution");
/// assert!(key.open(&nonce, b"wrong context", &ct).is_err());
/// ```
#[derive(Clone)]
pub struct AeadKey {
    enc_key: [u8; KEY_LEN],
    mac_key: [u8; KEY_LEN],
}

impl AeadKey {
    /// Derives an AEAD key from a 32-byte master secret.
    #[must_use]
    pub fn from_master(master: &[u8; 32]) -> Self {
        let okm = hkdf(b"glimmers-aead-v1", master, b"enc|mac", 64);
        let mut enc_key = [0u8; KEY_LEN];
        let mut mac_key = [0u8; KEY_LEN];
        enc_key.copy_from_slice(&okm[..32]);
        mac_key.copy_from_slice(&okm[32..]);
        AeadKey { enc_key, mac_key }
    }

    /// Derives an AEAD key from arbitrary-length keying material.
    #[must_use]
    pub fn from_material(material: &[u8]) -> Self {
        let master = crate::hkdf::derive_key_32(material, "aead-master");
        Self::from_master(&master)
    }

    /// Exports the derived sub-keys (`enc || mac`, 64 bytes) for sealed
    /// persistence.
    ///
    /// This deliberately reveals the working key material, so it must only
    /// ever be called on data that goes straight into a sealed blob (the
    /// enclave checkpoint/restore path). It exists because channel keys are
    /// derived from ephemeral DH exchanges whose secrets are long gone by
    /// checkpoint time — the derived keys are the only form that can be
    /// persisted.
    #[must_use]
    pub fn export_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.enc_key);
        out[32..].copy_from_slice(&self.mac_key);
        out
    }

    /// Rebuilds a key from [`AeadKey::export_bytes`] output (the inverse used
    /// when unsealing a checkpoint).
    #[must_use]
    pub fn from_export(bytes: &[u8; 64]) -> Self {
        let mut enc_key = [0u8; KEY_LEN];
        let mut mac_key = [0u8; KEY_LEN];
        enc_key.copy_from_slice(&bytes[..32]);
        mac_key.copy_from_slice(&bytes[32..]);
        AeadKey { enc_key, mac_key }
    }

    /// Encrypts `plaintext`, binding it to `aad`, and returns
    /// `ciphertext || tag`.
    #[must_use]
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        ChaCha20::new(&self.enc_key, nonce).apply(&mut out, 1);
        let tag = self.tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts `ciphertext || tag`, verifying the tag and the binding to
    /// `aad`.
    ///
    /// Returns [`CryptoError::VerificationFailed`] if the tag does not match
    /// and [`CryptoError::InvalidLength`] if the input is shorter than a tag.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        ciphertext_and_tag: &[u8],
    ) -> Result<Vec<u8>, AeadError> {
        if ciphertext_and_tag.len() < TAG_LEN {
            return Err(CryptoError::InvalidLength {
                got: ciphertext_and_tag.len(),
                expected: TAG_LEN,
            });
        }
        let split = ciphertext_and_tag.len() - TAG_LEN;
        let (ciphertext, tag) = ciphertext_and_tag.split_at(split);
        let expected = self.tag(nonce, aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::VerificationFailed);
        }
        let mut out = ciphertext.to_vec();
        ChaCha20::new(&self.enc_key, nonce).apply(&mut out, 1);
        Ok(out)
    }

    fn tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(nonce);
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(aad);
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.update(ciphertext);
        mac.finalize()
    }
}

/// One-shot seal with a key derived from `material`.
#[must_use]
pub fn seal(material: &[u8], nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    AeadKey::from_material(material).seal(nonce, aad, plaintext)
}

/// One-shot open with a key derived from `material`.
pub fn open(
    material: &[u8],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    ciphertext_and_tag: &[u8],
) -> Result<Vec<u8>, AeadError> {
    AeadKey::from_material(material).open(nonce, aad, ciphertext_and_tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let key = AeadKey::from_master(&[1u8; 32]);
        let nonce = [2u8; 12];
        let ct = key.seal(&nonce, b"aad", b"hello glimmer");
        assert_eq!(key.open(&nonce, b"aad", &ct).unwrap(), b"hello glimmer");
    }

    #[test]
    fn export_round_trips_to_an_equivalent_key() {
        let key = AeadKey::from_master(&[5u8; 32]);
        let restored = AeadKey::from_export(&key.export_bytes());
        let nonce = [9u8; 12];
        // The restored key opens what the original sealed, and vice versa.
        let ct = key.seal(&nonce, b"checkpoint", b"state");
        assert_eq!(restored.open(&nonce, b"checkpoint", &ct).unwrap(), b"state");
        let ct2 = restored.seal(&nonce, b"checkpoint", b"state2");
        assert_eq!(key.open(&nonce, b"checkpoint", &ct2).unwrap(), b"state2");
        assert_eq!(key.export_bytes(), restored.export_bytes());
    }

    #[test]
    fn tamper_detection() {
        let key = AeadKey::from_master(&[1u8; 32]);
        let nonce = [2u8; 12];
        let mut ct = key.seal(&nonce, b"aad", b"hello glimmer");
        // Flip a ciphertext bit.
        ct[0] ^= 1;
        assert_eq!(
            key.open(&nonce, b"aad", &ct),
            Err(CryptoError::VerificationFailed)
        );
        // Flip a tag bit.
        let mut ct2 = key.seal(&nonce, b"aad", b"hello glimmer");
        let last = ct2.len() - 1;
        ct2[last] ^= 1;
        assert_eq!(
            key.open(&nonce, b"aad", &ct2),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn wrong_aad_or_nonce_fails() {
        let key = AeadKey::from_master(&[1u8; 32]);
        let nonce = [2u8; 12];
        let ct = key.seal(&nonce, b"aad", b"data");
        assert!(key.open(&nonce, b"other", &ct).is_err());
        assert!(key.open(&[3u8; 12], b"aad", &ct).is_err());
    }

    #[test]
    fn wrong_key_fails() {
        let key = AeadKey::from_master(&[1u8; 32]);
        let other = AeadKey::from_master(&[9u8; 32]);
        let nonce = [2u8; 12];
        let ct = key.seal(&nonce, b"", b"data");
        assert!(other.open(&nonce, b"", &ct).is_err());
    }

    #[test]
    fn short_input_rejected() {
        let key = AeadKey::from_master(&[1u8; 32]);
        assert!(matches!(
            key.open(&[0u8; 12], b"", &[0u8; 5]),
            Err(CryptoError::InvalidLength { .. })
        ));
    }

    #[test]
    fn empty_plaintext_round_trip() {
        let key = AeadKey::from_material(b"some shared secret");
        let nonce = [7u8; 12];
        let ct = key.seal(&nonce, b"context", b"");
        assert_eq!(ct.len(), TAG_LEN);
        assert_eq!(key.open(&nonce, b"context", &ct).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn one_shot_helpers() {
        let nonce = [4u8; 12];
        let ct = seal(b"material", &nonce, b"aad", b"payload");
        assert_eq!(open(b"material", &nonce, b"aad", &ct).unwrap(), b"payload");
        assert!(open(b"other material", &nonce, b"aad", &ct).is_err());
    }
}
