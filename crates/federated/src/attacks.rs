//! Model-poisoning attacks (Figure 1d).
//!
//! The paper's central attack: because secure aggregation hides individual
//! contributions, "Alice could contribute a blinded local model ... that has
//! been maliciously manipulated to over-weight her personal political
//! convictions (i.e., contributing an illegal value of 538 for one model
//! parameter)". This module implements that attack and two stealthier
//! variants used in the experiments.

use crate::model::{LocalModel, ModelSchema, WEIGHT_MAX};

/// A poisoning strategy applied to an honest local model before submission.
#[derive(Debug, Clone, PartialEq)]
pub enum PoisonStrategy {
    /// The paper's attack: replace the weight of one slot with an out-of-range
    /// value (538 in the paper's example).
    OutOfRange {
        /// Schema slot to poison.
        slot: usize,
        /// The illegal value to submit.
        value: f64,
    },
    /// A stealthier attack: set the target slot to the maximum *legal* value
    /// and zero every competing slot (same `prev` word), biasing predictions
    /// while passing a plain range check.
    InRangeBias {
        /// Schema slot to promote.
        slot: usize,
    },
    /// Fabricate the whole contribution: every tracked slot gets the same
    /// constant weight, unrelated to any actual typing.
    Fabricated {
        /// The constant weight to report for every slot.
        value: f64,
    },
    /// Scale every weight by a factor (gradient-boosting style poisoning).
    Scaled {
        /// Multiplicative factor applied to every weight.
        factor: f64,
    },
}

impl PoisonStrategy {
    /// A short label used in experiment output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PoisonStrategy::OutOfRange { .. } => "out-of-range",
            PoisonStrategy::InRangeBias { .. } => "in-range-bias",
            PoisonStrategy::Fabricated { .. } => "fabricated",
            PoisonStrategy::Scaled { .. } => "scaled",
        }
    }

    /// Whether a plain `[0,1]` range check catches this strategy on a model
    /// that was honest before poisoning.
    #[must_use]
    pub fn caught_by_range_check(&self) -> bool {
        match self {
            PoisonStrategy::OutOfRange { value, .. } => !(0.0..=WEIGHT_MAX).contains(value),
            PoisonStrategy::InRangeBias { .. } => false,
            PoisonStrategy::Fabricated { value } => !(0.0..=WEIGHT_MAX).contains(value),
            PoisonStrategy::Scaled { factor } => *factor > 1.0 || *factor < 0.0,
        }
    }
}

/// Applies a poisoning strategy to an honest contribution, returning the
/// malicious contribution the attacker would submit.
#[must_use]
pub fn apply_poison(
    schema: &ModelSchema,
    honest: &LocalModel,
    strategy: &PoisonStrategy,
) -> LocalModel {
    let mut weights = honest.weights.clone();
    match strategy {
        PoisonStrategy::OutOfRange { slot, value } => {
            if let Some(w) = weights.get_mut(*slot) {
                *w = *value;
            }
        }
        PoisonStrategy::InRangeBias { slot } => {
            if let Some((prev, _)) = schema.slot(*slot) {
                for (i, (p, _)) in schema.slots().iter().enumerate() {
                    if *p == prev {
                        weights[i] = 0.0;
                    }
                }
                weights[*slot] = WEIGHT_MAX;
            }
        }
        PoisonStrategy::Fabricated { value } => {
            for w in weights.iter_mut() {
                *w = *value;
            }
        }
        PoisonStrategy::Scaled { factor } => {
            for w in weights.iter_mut() {
                *w *= factor;
            }
        }
    }
    LocalModel { weights }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::train_local_model;
    use crate::vocab::Vocabulary;

    fn schema() -> ModelSchema {
        let vocab = Vocabulary::new(["donald", "trump", "clinton", "voting", "for"]);
        ModelSchema::dense(vocab, &["donald", "trump", "clinton", "voting", "for"])
    }

    fn honest(schema: &ModelSchema) -> LocalModel {
        let sentences = vec![
            schema.vocab().tokenize("voting for donald trump"),
            schema.vocab().tokenize("voting for donald clinton"),
        ];
        train_local_model(schema, &sentences).unwrap().0
    }

    #[test]
    fn out_of_range_attack_is_out_of_range() {
        let s = schema();
        let h = honest(&s);
        let slot = s.slot_of_words("donald", "trump").unwrap();
        let strategy = PoisonStrategy::OutOfRange { slot, value: 538.0 };
        let poisoned = apply_poison(&s, &h, &strategy);
        assert_eq!(poisoned.weights[slot], 538.0);
        assert!(h.in_valid_range());
        assert!(!poisoned.in_valid_range());
        assert!(strategy.caught_by_range_check());
        assert_eq!(strategy.label(), "out-of-range");
    }

    #[test]
    fn in_range_bias_passes_range_check_but_skews() {
        let s = schema();
        let h = honest(&s);
        let trump_slot = s.slot_of_words("donald", "trump").unwrap();
        let clinton_slot = s.slot_of_words("donald", "clinton").unwrap();
        let strategy = PoisonStrategy::InRangeBias { slot: trump_slot };
        let poisoned = apply_poison(&s, &h, &strategy);
        assert!(poisoned.in_valid_range());
        assert!(!strategy.caught_by_range_check());
        assert_eq!(poisoned.weights[trump_slot], 1.0);
        assert_eq!(poisoned.weights[clinton_slot], 0.0);
        // Honest model had 0.5 / 0.5.
        assert!((h.weights[trump_slot] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fabricated_and_scaled_attacks() {
        let s = schema();
        let h = honest(&s);
        let fabricated = apply_poison(&s, &h, &PoisonStrategy::Fabricated { value: 0.9 });
        assert!(fabricated.weights.iter().all(|&w| (w - 0.9).abs() < 1e-12));
        assert!(!PoisonStrategy::Fabricated { value: 0.9 }.caught_by_range_check());
        assert!(PoisonStrategy::Fabricated { value: 538.0 }.caught_by_range_check());

        let scaled = apply_poison(&s, &h, &PoisonStrategy::Scaled { factor: 10.0 });
        let slot = s.slot_of_words("donald", "trump").unwrap();
        assert!((scaled.weights[slot] - h.weights[slot] * 10.0).abs() < 1e-9);
        assert!(PoisonStrategy::Scaled { factor: 10.0 }.caught_by_range_check());
        assert!(!PoisonStrategy::Scaled { factor: 0.5 }.caught_by_range_check());
    }

    #[test]
    fn poisoning_out_of_bounds_slot_is_a_no_op() {
        let s = schema();
        let h = honest(&s);
        let poisoned = apply_poison(
            &s,
            &h,
            &PoisonStrategy::OutOfRange {
                slot: 999_999,
                value: 538.0,
            },
        );
        assert_eq!(poisoned, h);
    }
}
