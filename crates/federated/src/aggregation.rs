//! Aggregation: plain federated averaging and blinded-sum aggregation.
//!
//! The service never sees raw weights in the Glimmer design; it receives
//! blinded fixed-point vectors and sums them, relying on the zero-sum
//! blinding to cancel (Figure 1c). This module provides both the plaintext
//! baseline (Figure 1b) and the fixed-point sum the blinded pipeline uses.

use crate::fixed::{add_vectors, decode_weights};
use crate::model::{GlobalModel, LocalModel, ModelSchema};
use crate::{FederatedError, Result};

/// Plain federated averaging over raw local models (the Figure 1b baseline,
/// no privacy).
pub fn aggregate_mean(schema: &ModelSchema, contributions: &[LocalModel]) -> Result<GlobalModel> {
    if contributions.is_empty() {
        return Err(FederatedError::EmptyRound);
    }
    for c in contributions {
        schema.check_dimension(&c.weights)?;
    }
    let mut weights = schema.zero_weights();
    for c in contributions {
        for (acc, w) in weights.iter_mut().zip(c.weights.iter()) {
            *acc += w;
        }
    }
    let n = contributions.len() as f64;
    for w in weights.iter_mut() {
        *w /= n;
    }
    Ok(GlobalModel {
        weights,
        contributors: contributions.len(),
    })
}

/// Sums fixed-point (possibly blinded) vectors and divides by the number of
/// contributions to recover the average model.
///
/// When the inputs are blinded with zero-sum masks, the masks cancel in the
/// sum and the result equals the plaintext average (to fixed-point
/// resolution).
pub fn aggregate_sum_fixed(
    schema: &ModelSchema,
    contributions: &[Vec<u64>],
) -> Result<GlobalModel> {
    if contributions.is_empty() {
        return Err(FederatedError::EmptyRound);
    }
    let dim = schema.dimension();
    for c in contributions {
        if c.len() != dim {
            return Err(FederatedError::DimensionMismatch {
                got: c.len(),
                expected: dim,
            });
        }
    }
    let mut acc = vec![0u64; dim];
    for c in contributions {
        acc = add_vectors(&acc, c);
    }
    let sum = decode_weights(&acc);
    let n = contributions.len() as f64;
    Ok(GlobalModel {
        weights: sum.into_iter().map(|w| w / n).collect(),
        contributors: contributions.len(),
    })
}

/// A running aggregation round that accepts contributions one at a time,
/// which is how the keyboard service consumes endorsed contributions.
#[derive(Debug, Clone)]
pub struct FederatedRound {
    dimension: usize,
    acc: Vec<u64>,
    contributors: usize,
}

impl FederatedRound {
    /// Starts an empty round for a schema.
    #[must_use]
    pub fn new(schema: &ModelSchema) -> Self {
        FederatedRound {
            dimension: schema.dimension(),
            acc: vec![0u64; schema.dimension()],
            contributors: 0,
        }
    }

    /// Adds one fixed-point (blinded or raw) contribution.
    pub fn add(&mut self, contribution: &[u64]) -> Result<()> {
        if contribution.len() != self.dimension {
            return Err(FederatedError::DimensionMismatch {
                got: contribution.len(),
                expected: self.dimension,
            });
        }
        self.acc = add_vectors(&self.acc, contribution);
        self.contributors += 1;
        Ok(())
    }

    /// Adds a correction vector (e.g., a blinding dropout correction) to the
    /// accumulator without counting it as a contribution.
    pub fn add_correction(&mut self, correction: &[u64]) -> Result<()> {
        if correction.len() != self.dimension {
            return Err(FederatedError::DimensionMismatch {
                got: correction.len(),
                expected: self.dimension,
            });
        }
        self.acc = add_vectors(&self.acc, correction);
        Ok(())
    }

    /// Number of contributions accepted so far.
    #[must_use]
    pub fn contributors(&self) -> usize {
        self.contributors
    }

    /// Finalizes the round into a global model (average of contributions).
    pub fn finalize(&self) -> Result<GlobalModel> {
        if self.contributors == 0 {
            return Err(FederatedError::EmptyRound);
        }
        let sum = decode_weights(&self.acc);
        let n = self.contributors as f64;
        Ok(GlobalModel {
            weights: sum.into_iter().map(|w| w / n).collect(),
            contributors: self.contributors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::encode_weights;
    use crate::vocab::Vocabulary;

    fn schema() -> ModelSchema {
        let vocab = Vocabulary::new(["a", "b", "c"]);
        ModelSchema::dense(vocab, &["a", "b", "c"])
    }

    fn local(schema: &ModelSchema, fill: f64) -> LocalModel {
        LocalModel::new(schema, vec![fill; schema.dimension()]).unwrap()
    }

    #[test]
    fn mean_aggregation() {
        let s = schema();
        let contributions = vec![local(&s, 0.2), local(&s, 0.4), local(&s, 0.6)];
        let global = aggregate_mean(&s, &contributions).unwrap();
        assert_eq!(global.contributors, 3);
        for w in &global.weights {
            assert!((w - 0.4).abs() < 1e-12);
        }
        assert_eq!(aggregate_mean(&s, &[]), Err(FederatedError::EmptyRound));
        let wrong_dim = LocalModel {
            weights: vec![0.1; 2],
        };
        assert!(aggregate_mean(&s, &[wrong_dim]).is_err());
    }

    #[test]
    fn fixed_sum_matches_mean_aggregation() {
        let s = schema();
        let contributions = vec![
            local(&s, 0.25),
            local(&s, 0.5),
            local(&s, 0.75),
            local(&s, 1.0),
        ];
        let plain = aggregate_mean(&s, &contributions).unwrap();
        let encoded: Vec<Vec<u64>> = contributions
            .iter()
            .map(|c| encode_weights(&c.weights))
            .collect();
        let fixed = aggregate_sum_fixed(&s, &encoded).unwrap();
        for (a, b) in plain.weights.iter().zip(fixed.weights.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!(aggregate_sum_fixed(&s, &[]).is_err());
        assert!(aggregate_sum_fixed(&s, &[vec![0u64; 3]]).is_err());
    }

    #[test]
    fn incremental_round_matches_batch() {
        let s = schema();
        let contributions = [local(&s, 0.1), local(&s, 0.9)];
        let mut round = FederatedRound::new(&s);
        assert!(round.finalize().is_err());
        for c in &contributions {
            round.add(&encode_weights(&c.weights)).unwrap();
        }
        assert_eq!(round.contributors(), 2);
        let incremental = round.finalize().unwrap();
        let batch = aggregate_mean(&s, &contributions).unwrap();
        for (a, b) in incremental.weights.iter().zip(batch.weights.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!(round.add(&[0u64; 2]).is_err());
    }
}
