//! The shared word vocabulary.
//!
//! The predictive-keyboard service publishes a vocabulary so that every
//! client maps words to the same parameter indices. Words outside the
//! vocabulary are mapped to an out-of-vocabulary token.

use crate::FederatedError;
use std::collections::HashMap;

/// Identifier of the out-of-vocabulary token (always index 0).
pub const OOV: u32 = 0;

/// A bidirectional word ↔ id mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vocabulary {
    words: Vec<String>,
    index: HashMap<String, u32>,
}

impl Vocabulary {
    /// Builds a vocabulary from a list of words.
    ///
    /// Index 0 is reserved for the out-of-vocabulary token `<oov>`; duplicate
    /// and empty words are ignored.
    #[must_use]
    pub fn new<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut vocab = Vocabulary {
            words: vec!["<oov>".to_string()],
            index: HashMap::from([("<oov>".to_string(), 0)]),
        };
        for word in words {
            vocab.insert(word.as_ref());
        }
        vocab
    }

    fn insert(&mut self, word: &str) {
        let normalized = word.trim().to_lowercase();
        if normalized.is_empty() || self.index.contains_key(&normalized) {
            return;
        }
        let id = self.words.len() as u32;
        self.words.push(normalized.clone());
        self.index.insert(normalized, id);
    }

    /// Number of entries, including the OOV token.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Always false: the OOV token is always present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Maps a word to its id, falling back to [`OOV`].
    #[must_use]
    pub fn id(&self, word: &str) -> u32 {
        let normalized = word.trim().to_lowercase();
        self.index.get(&normalized).copied().unwrap_or(OOV)
    }

    /// Maps a word to its id, erroring for unknown words.
    pub fn id_strict(&self, word: &str) -> Result<u32, FederatedError> {
        let normalized = word.trim().to_lowercase();
        self.index
            .get(&normalized)
            .copied()
            .ok_or_else(|| FederatedError::UnknownWord(word.to_string()))
    }

    /// Maps an id back to its word (OOV for out-of-range ids).
    #[must_use]
    pub fn word(&self, id: u32) -> &str {
        self.words
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("<oov>")
    }

    /// Tokenizes a sentence into ids (whitespace split, lowercased,
    /// punctuation stripped from word edges).
    #[must_use]
    pub fn tokenize(&self, sentence: &str) -> Vec<u32> {
        sentence
            .split_whitespace()
            .map(|w| w.trim_matches(|c: char| !c.is_alphanumeric() && c != '\''))
            .filter(|w| !w.is_empty())
            .map(|w| self.id(w))
            .collect()
    }

    /// Iterates over `(id, word)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (i as u32, w.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_dedups_and_normalizes() {
        let vocab = Vocabulary::new(["Donald", "Trump", "donald", "  ", "voting"]);
        // <oov> + donald + trump + voting.
        assert_eq!(vocab.len(), 4);
        assert!(!vocab.is_empty());
        assert_eq!(vocab.id("donald"), vocab.id("DONALD"));
        assert_ne!(vocab.id("donald"), OOV);
        assert_eq!(vocab.id("unknown-word"), OOV);
        assert_eq!(vocab.word(vocab.id("trump")), "trump");
        assert_eq!(vocab.word(9999), "<oov>");
    }

    #[test]
    fn strict_lookup() {
        let vocab = Vocabulary::new(["alpha"]);
        assert!(vocab.id_strict("alpha").is_ok());
        assert_eq!(
            vocab.id_strict("beta"),
            Err(FederatedError::UnknownWord("beta".to_string()))
        );
    }

    #[test]
    fn tokenization_strips_punctuation() {
        let vocab = Vocabulary::new(["i'm", "voting", "for", "donald", "trump"]);
        let ids = vocab.tokenize("I'm voting for Donald Trump.");
        assert_eq!(ids.len(), 5);
        assert!(ids.iter().all(|&id| id != OOV));
        let with_unknown = vocab.tokenize("I'm voting for Bernie!");
        assert_eq!(*with_unknown.last().unwrap(), OOV);
        assert!(vocab.tokenize("   ").is_empty());
    }

    #[test]
    fn iteration_covers_all_words() {
        let vocab = Vocabulary::new(["a", "b"]);
        let collected: Vec<(u32, &str)> = vocab.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[0], (0, "<oov>"));
        assert_eq!(collected[1], (1, "a"));
    }
}
