//! The bigram next-word model: schema, local contributions, global model.
//!
//! Figure 1b of the paper sketches the model as "a weight between 0 and 1
//! for an ordered pair of words". The service publishes a [`ModelSchema`]
//! listing which ordered pairs (slots) are tracked; a client's contribution
//! is a [`LocalModel`] — one weight per slot, where the weight is the
//! client's empirical probability of typing `next` right after `prev`. The
//! service maintains a [`GlobalModel`] aggregated over many contributions.

use crate::vocab::Vocabulary;
use crate::{FederatedError, Result};
use std::collections::HashMap;

/// The valid range for a single model parameter, as stated in the paper
/// ("a value between 0 and 1 is expected").
pub const WEIGHT_MIN: f64 = 0.0;

/// Upper end of the valid parameter range.
pub const WEIGHT_MAX: f64 = 1.0;

/// The parameter space shared by the service and every client.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSchema {
    vocab: Vocabulary,
    slots: Vec<(u32, u32)>,
    slot_index: HashMap<(u32, u32), usize>,
}

impl ModelSchema {
    /// Builds a schema tracking every ordered pair among `pair_words`
    /// (typically the most frequent vocabulary words).
    ///
    /// The slot list is ordered deterministically so every participant agrees
    /// on parameter indices.
    #[must_use]
    pub fn dense(vocab: Vocabulary, pair_words: &[&str]) -> Self {
        let mut ids: Vec<u32> = pair_words.iter().map(|w| vocab.id(w)).collect();
        ids.sort_unstable();
        ids.dedup();
        let mut slots = Vec::with_capacity(ids.len() * ids.len());
        for &prev in &ids {
            for &next in &ids {
                if prev != next {
                    slots.push((prev, next));
                }
            }
        }
        Self::from_slots(vocab, slots)
    }

    /// Builds a schema from an explicit slot list.
    #[must_use]
    pub fn from_slots(vocab: Vocabulary, slots: Vec<(u32, u32)>) -> Self {
        let slot_index = slots
            .iter()
            .enumerate()
            .map(|(i, pair)| (*pair, i))
            .collect();
        ModelSchema {
            vocab,
            slots,
            slot_index,
        }
    }

    /// The shared vocabulary.
    #[must_use]
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of parameters (slots).
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.slots.len()
    }

    /// The ordered word-pair for a slot index.
    #[must_use]
    pub fn slot(&self, index: usize) -> Option<(u32, u32)> {
        self.slots.get(index).copied()
    }

    /// The slot index for an ordered word-id pair, if tracked.
    #[must_use]
    pub fn slot_of(&self, prev: u32, next: u32) -> Option<usize> {
        self.slot_index.get(&(prev, next)).copied()
    }

    /// The slot index for an ordered word pair given as strings.
    #[must_use]
    pub fn slot_of_words(&self, prev: &str, next: &str) -> Option<usize> {
        self.slot_of(self.vocab.id(prev), self.vocab.id(next))
    }

    /// All slots.
    #[must_use]
    pub fn slots(&self) -> &[(u32, u32)] {
        &self.slots
    }

    /// Creates an all-zero parameter vector of the right dimension.
    #[must_use]
    pub fn zero_weights(&self) -> Vec<f64> {
        vec![0.0; self.dimension()]
    }

    /// Validates that a weight vector has the right dimension.
    pub fn check_dimension(&self, weights: &[f64]) -> Result<()> {
        if weights.len() != self.dimension() {
            return Err(FederatedError::DimensionMismatch {
                got: weights.len(),
                expected: self.dimension(),
            });
        }
        Ok(())
    }
}

/// One client's local contribution: a weight per schema slot.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalModel {
    /// Parameter vector, one entry per schema slot.
    pub weights: Vec<f64>,
}

impl LocalModel {
    /// Creates a local model, checking the dimension against the schema.
    pub fn new(schema: &ModelSchema, weights: Vec<f64>) -> Result<Self> {
        schema.check_dimension(&weights)?;
        Ok(LocalModel { weights })
    }

    /// True when every weight lies in the valid `[0, 1]` range.
    #[must_use]
    pub fn in_valid_range(&self) -> bool {
        self.weights
            .iter()
            .all(|w| (WEIGHT_MIN..=WEIGHT_MAX).contains(w) && w.is_finite())
    }
}

/// The service's aggregated model.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalModel {
    /// Aggregated weights, one per schema slot.
    pub weights: Vec<f64>,
    /// Number of contributions aggregated into the weights.
    pub contributors: usize,
}

impl GlobalModel {
    /// An empty global model for a schema.
    #[must_use]
    pub fn empty(schema: &ModelSchema) -> Self {
        GlobalModel {
            weights: schema.zero_weights(),
            contributors: 0,
        }
    }

    /// Predicts the most likely next words after `prev`, best first.
    ///
    /// Returns up to `k` `(word_id, weight)` pairs with non-zero weight.
    #[must_use]
    pub fn predict_next(&self, schema: &ModelSchema, prev: u32, k: usize) -> Vec<(u32, f64)> {
        let mut candidates: Vec<(u32, f64)> = schema
            .slots()
            .iter()
            .enumerate()
            .filter(|(_, (p, _))| *p == prev)
            .map(|(i, (_, n))| (*n, self.weights[i]))
            .filter(|(_, w)| *w > 0.0)
            .collect();
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(core::cmp::Ordering::Equal));
        candidates.truncate(k);
        candidates
    }

    /// Predicts next words for a word given as a string.
    #[must_use]
    pub fn predict_next_word(
        &self,
        schema: &ModelSchema,
        prev: &str,
        k: usize,
    ) -> Vec<(String, f64)> {
        self.predict_next(schema, schema.vocab().id(prev), k)
            .into_iter()
            .map(|(id, w)| (schema.vocab().word(id).to_string(), w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> ModelSchema {
        let vocab = Vocabulary::new(["donald", "trump", "voting", "for", "don't", "like"]);
        ModelSchema::dense(
            vocab,
            &["donald", "trump", "voting", "for", "don't", "like"],
        )
    }

    #[test]
    fn dense_schema_has_all_ordered_pairs() {
        let s = schema();
        // 6 words → 6*5 ordered pairs.
        assert_eq!(s.dimension(), 30);
        let donald = s.vocab().id("donald");
        let trump = s.vocab().id("trump");
        let idx = s.slot_of(donald, trump).unwrap();
        assert_eq!(s.slot(idx), Some((donald, trump)));
        assert_eq!(s.slot_of_words("donald", "trump"), Some(idx));
        // Self pairs are not tracked.
        assert_eq!(s.slot_of(donald, donald), None);
        assert_eq!(s.slot(9999), None);
    }

    #[test]
    fn schema_is_deterministic() {
        assert_eq!(schema(), schema());
        assert_eq!(schema().slots(), schema().slots());
    }

    #[test]
    fn local_model_dimension_and_range_checks() {
        let s = schema();
        assert!(LocalModel::new(&s, vec![0.0; 5]).is_err());
        let model = LocalModel::new(&s, s.zero_weights()).unwrap();
        assert!(model.in_valid_range());

        let mut poisoned = s.zero_weights();
        poisoned[0] = 538.0; // The paper's illegal value.
        let poisoned = LocalModel::new(&s, poisoned).unwrap();
        assert!(!poisoned.in_valid_range());

        let mut negative = s.zero_weights();
        negative[0] = -0.1;
        assert!(!LocalModel::new(&s, negative).unwrap().in_valid_range());

        let mut nan = s.zero_weights();
        nan[0] = f64::NAN;
        assert!(!LocalModel::new(&s, nan).unwrap().in_valid_range());
    }

    #[test]
    fn prediction_orders_by_weight() {
        let s = schema();
        let mut global = GlobalModel::empty(&s);
        let donald = s.vocab().id("donald");
        let trump = s.vocab().id("trump");
        let voting = s.vocab().id("voting");
        global.weights[s.slot_of(donald, trump).unwrap()] = 0.9;
        global.weights[s.slot_of(donald, voting).unwrap()] = 0.2;

        let predictions = global.predict_next(&s, donald, 5);
        assert_eq!(predictions.len(), 2);
        assert_eq!(predictions[0].0, trump);
        assert_eq!(predictions[1].0, voting);

        let words = global.predict_next_word(&s, "donald", 1);
        assert_eq!(words, vec![("trump".to_string(), 0.9)]);

        // Unknown previous word yields no predictions.
        assert!(global.predict_next_word(&s, "zebra", 3).is_empty());
    }

    #[test]
    fn empty_global_model() {
        let s = schema();
        let g = GlobalModel::empty(&s);
        assert_eq!(g.contributors, 0);
        assert_eq!(g.weights.len(), s.dimension());
        assert!(g.predict_next(&s, s.vocab().id("donald"), 3).is_empty());
    }
}
