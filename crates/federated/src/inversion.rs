//! Model-inversion attack on individual contributions.
//!
//! Section 1 of the paper notes that "learned models, even ones much more
//! sophisticated than our strawman illustration, can still reveal information
//! about the raw inputs used to train those models (e.g., machine-learning
//! models can be inverted)". For the bigram strawman the inversion is direct:
//! a non-zero weight in a user's *individual* partial model reveals that the
//! user typed that word pair. This module measures how much an
//! honest-but-curious service learns from (a) raw per-user contributions and
//! (b) blinded contributions, which is Experiment E9.

use crate::model::ModelSchema;
use std::collections::HashSet;

/// The outcome of a membership-inversion attempt over one user's contribution.
#[derive(Debug, Clone, PartialEq)]
pub struct InversionOutcome {
    /// Number of bigrams the attacker claimed the user typed.
    pub claimed: usize,
    /// Of those, how many the user actually typed (true positives).
    pub true_positives: usize,
    /// Bigrams the user typed that the attacker missed.
    pub false_negatives: usize,
    /// Bigrams the attacker claimed that the user did not type.
    pub false_positives: usize,
}

impl InversionOutcome {
    /// Precision of the attacker's claims (1.0 when nothing is claimed).
    #[must_use]
    pub fn precision(&self) -> f64 {
        if self.claimed == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.claimed as f64
        }
    }

    /// Recall over the user's actual bigrams (1.0 when the user typed none).
    #[must_use]
    pub fn recall(&self) -> f64 {
        let actual = self.true_positives + self.false_negatives;
        if actual == 0 {
            1.0
        } else {
            self.true_positives as f64 / actual as f64
        }
    }

    /// F1 score of the attack.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Runs the membership-inversion attack: the attacker observes one user's
/// contribution vector and claims the user typed every tracked bigram whose
/// weight exceeds `threshold`.
///
/// `actual_bigrams` is the ground-truth set of tracked slots the user really
/// typed (known to the experiment harness, not to the attacker).
#[must_use]
pub fn invert_membership(
    schema: &ModelSchema,
    observed_weights: &[f64],
    actual_bigrams: &HashSet<usize>,
    threshold: f64,
) -> InversionOutcome {
    let mut claimed_set = HashSet::new();
    for (i, w) in observed_weights.iter().enumerate().take(schema.dimension()) {
        if *w > threshold {
            claimed_set.insert(i);
        }
    }
    let true_positives = claimed_set.intersection(actual_bigrams).count();
    let false_positives = claimed_set.len() - true_positives;
    let false_negatives = actual_bigrams.len() - true_positives;
    InversionOutcome {
        claimed: claimed_set.len(),
        true_positives,
        false_negatives,
        false_positives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{decode_weights, encode_weights};
    use crate::trainer::train_local_model;
    use crate::vocab::Vocabulary;

    fn schema() -> ModelSchema {
        let vocab = Vocabulary::new(["i'm", "voting", "for", "donald", "trump", "don't", "like"]);
        ModelSchema::dense(
            vocab,
            &["i'm", "voting", "for", "donald", "trump", "don't", "like"],
        )
    }

    fn actual_slots(schema: &ModelSchema, sentences: &[Vec<u32>]) -> HashSet<usize> {
        let mut out = HashSet::new();
        for sentence in sentences {
            for w in sentence.windows(2) {
                if let Some(slot) = schema.slot_of(w[0], w[1]) {
                    out.insert(slot);
                }
            }
        }
        out
    }

    #[test]
    fn raw_contribution_is_fully_invertible() {
        let s = schema();
        let sentences = vec![s.vocab().tokenize("i'm voting for donald trump")];
        let (model, _) = train_local_model(&s, &sentences).unwrap();
        let actual = actual_slots(&s, &sentences);
        assert!(!actual.is_empty());

        let outcome = invert_membership(&s, &model.weights, &actual, 0.0);
        // Perfect recovery: every typed bigram has a positive weight and no
        // untyped tracked bigram does.
        assert_eq!(outcome.true_positives, actual.len());
        assert_eq!(outcome.false_positives, 0);
        assert_eq!(outcome.false_negatives, 0);
        assert_eq!(outcome.precision(), 1.0);
        assert_eq!(outcome.recall(), 1.0);
        assert_eq!(outcome.f1(), 1.0);
    }

    #[test]
    fn blinded_contribution_defeats_inversion() {
        let s = schema();
        let sentences = vec![s.vocab().tokenize("i'm voting for donald trump")];
        let (model, _) = train_local_model(&s, &sentences).unwrap();
        let actual = actual_slots(&s, &sentences);

        // Simulate blinding: add a large pseudo-random mask to the fixed-point
        // encoding, as the Glimmer's blinding component does.
        let encoded = encode_weights(&model.weights);
        let masked: Vec<u64> = encoded
            .iter()
            .enumerate()
            .map(|(i, v)| v.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)))
            .collect();
        let observed = decode_weights(&masked);

        let outcome = invert_membership(&s, &observed, &actual, 0.0);
        // The attacker's claims are now uncorrelated with the truth: precision
        // is no better than the base rate of actual bigrams among claimed ones.
        assert!(outcome.precision() < 0.5);
    }

    #[test]
    fn empty_cases() {
        let s = schema();
        let outcome = invert_membership(&s, &s.zero_weights(), &HashSet::new(), 0.0);
        assert_eq!(outcome.claimed, 0);
        assert_eq!(outcome.precision(), 1.0);
        assert_eq!(outcome.recall(), 1.0);
        assert_eq!(outcome.f1(), 1.0);

        // Claims without ground truth are all false positives.
        let mut weights = s.zero_weights();
        weights[0] = 0.5;
        let outcome = invert_membership(&s, &weights, &HashSet::new(), 0.0);
        assert_eq!(outcome.false_positives, 1);
        assert_eq!(outcome.precision(), 0.0);
        assert_eq!(outcome.f1(), 0.0);
    }
}
