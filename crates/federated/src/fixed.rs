//! Fixed-point encoding of model parameters.
//!
//! Additive blinding (Figure 1c and Section 3) requires exact arithmetic:
//! the blinding values must cancel perfectly when the service sums the
//! blinded contributions. Floating point does not guarantee that, so model
//! weights are converted to a signed fixed-point representation carried in
//! `u64` with wrapping (mod 2^64) arithmetic. Sums of millions of in-range
//! weights stay far below the wrap-around point, so decoded aggregates are
//! exact to the fixed-point resolution.

/// Fixed-point scale: the integer representation of the weight `1.0`.
pub const FIXED_ONE: u64 = 1 << 24;

/// Encodes one weight into fixed point (signed, two's complement in `u64`).
#[must_use]
pub fn encode_weight(w: f64) -> u64 {
    let scaled = (w * FIXED_ONE as f64).round();
    // Clamp to the i64 range to avoid undefined casts for absurd inputs, but
    // preserve out-of-[0,1] values: the poisoning experiments rely on being
    // able to encode the paper's illegal 538.
    let clamped = scaled.clamp(i64::MIN as f64, i64::MAX as f64);
    (clamped as i64) as u64
}

/// Decodes one fixed-point value back into a float.
#[must_use]
pub fn decode_weight(v: u64) -> f64 {
    (v as i64) as f64 / FIXED_ONE as f64
}

/// Encodes a weight vector.
#[must_use]
pub fn encode_weights(weights: &[f64]) -> Vec<u64> {
    weights.iter().map(|&w| encode_weight(w)).collect()
}

/// Decodes a fixed-point vector.
#[must_use]
pub fn decode_weights(values: &[u64]) -> Vec<f64> {
    values.iter().map(|&v| decode_weight(v)).collect()
}

/// Adds two fixed-point vectors element-wise with wrapping arithmetic.
///
/// Panics in debug builds if the lengths differ; callers validate dimensions
/// at the protocol layer.
#[must_use]
pub fn add_vectors(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| x.wrapping_add(*y))
        .collect()
}

/// Subtracts `b` from `a` element-wise with wrapping arithmetic.
#[must_use]
pub fn sub_vectors(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| x.wrapping_sub(*y))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_precision() {
        for w in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9999, 1.0] {
            let decoded = decode_weight(encode_weight(w));
            assert!((decoded - w).abs() < 1e-6, "{w} -> {decoded}");
        }
    }

    #[test]
    fn negative_and_oversized_values_survive() {
        // The poisoning attack needs to encode 538 and negative drift.
        assert!((decode_weight(encode_weight(538.0)) - 538.0).abs() < 1e-6);
        assert!((decode_weight(encode_weight(-3.5)) + 3.5).abs() < 1e-6);
    }

    #[test]
    fn vector_round_trip() {
        let weights = vec![0.0, 0.33, 0.66, 1.0, 538.0];
        let decoded = decode_weights(&encode_weights(&weights));
        for (a, b) in weights.iter().zip(decoded.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn addition_matches_float_addition() {
        let a = vec![0.1, 0.5, 0.9];
        let b = vec![0.2, 0.4, 0.05];
        let sum = decode_weights(&add_vectors(&encode_weights(&a), &encode_weights(&b)));
        for (s, (x, y)) in sum.iter().zip(a.iter().zip(b.iter())) {
            assert!((s - (x + y)).abs() < 1e-6);
        }
    }

    #[test]
    fn add_then_sub_is_identity() {
        let a = encode_weights(&[0.7, 0.2]);
        let mask = vec![u64::MAX - 5, 12345];
        assert_eq!(sub_vectors(&add_vectors(&a, &mask), &mask), a);
    }

    #[test]
    fn large_sums_do_not_lose_exactness() {
        // One million clients contributing 0.5 each.
        let encoded = encode_weight(0.5);
        let mut acc = 0u64;
        for _ in 0..1_000_000 {
            acc = acc.wrapping_add(encoded);
        }
        let total = decode_weight(acc);
        assert!((total - 500_000.0).abs() < 1e-3, "total {total}");
    }
}
