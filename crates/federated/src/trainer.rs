//! Local training: turning one user's keyboard trace into a contribution.
//!
//! The local model is the empirical conditional frequency of each tracked
//! bigram: for schema slot `(prev, next)`, the weight is
//! `count(prev→next) / count(prev→·)` over the user's own sentences — a
//! value in `[0, 1]` as the service expects.

use crate::model::{LocalModel, ModelSchema};
use crate::Result;
use std::collections::HashMap;

/// Summary statistics from local training, useful as private validation data
/// for the Glimmer (the NAB-style corroboration predicate compares these to
/// the submitted weights).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Total number of tokens typed.
    pub tokens: usize,
    /// Total number of sentences typed.
    pub sentences: usize,
    /// Raw bigram counts over tracked and untracked pairs alike.
    pub bigram_counts: HashMap<(u32, u32), u32>,
}

/// Trains a local bigram model from tokenized sentences.
///
/// Returns the model and the trace statistics it was derived from.
pub fn train_local_model(
    schema: &ModelSchema,
    sentences: &[Vec<u32>],
) -> Result<(LocalModel, TraceStats)> {
    let mut bigram_counts: HashMap<(u32, u32), u32> = HashMap::new();
    let mut prev_counts: HashMap<u32, u32> = HashMap::new();
    let mut tokens = 0usize;

    for sentence in sentences {
        tokens += sentence.len();
        for window in sentence.windows(2) {
            let (prev, next) = (window[0], window[1]);
            *bigram_counts.entry((prev, next)).or_insert(0) += 1;
            *prev_counts.entry(prev).or_insert(0) += 1;
        }
    }

    let mut weights = schema.zero_weights();
    for (i, (prev, next)) in schema.slots().iter().enumerate() {
        let pair = bigram_counts.get(&(*prev, *next)).copied().unwrap_or(0);
        let total = prev_counts.get(prev).copied().unwrap_or(0);
        if total > 0 {
            weights[i] = f64::from(pair) / f64::from(total);
        }
    }

    let model = LocalModel::new(schema, weights)?;
    Ok((
        model,
        TraceStats {
            tokens,
            sentences: sentences.len(),
            bigram_counts,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;

    fn schema() -> ModelSchema {
        let vocab = Vocabulary::new(["i'm", "voting", "for", "donald", "trump", "don't", "like"]);
        ModelSchema::dense(
            vocab,
            &["i'm", "voting", "for", "donald", "trump", "don't", "like"],
        )
    }

    #[test]
    fn alice_types_trump_after_donald() {
        let s = schema();
        let sentences = vec![
            s.vocab().tokenize("I'm voting for Donald Trump"),
            s.vocab().tokenize("I'm voting for Donald Trump"),
        ];
        let (model, stats) = train_local_model(&s, &sentences).unwrap();
        assert!(model.in_valid_range());
        assert_eq!(stats.sentences, 2);
        assert_eq!(stats.tokens, 10);

        let slot = s.slot_of_words("donald", "trump").unwrap();
        assert!((model.weights[slot] - 1.0).abs() < 1e-9);

        // A bigram the user never typed has weight zero.
        let unused = s.slot_of_words("trump", "donald").unwrap();
        assert_eq!(model.weights[unused], 0.0);
    }

    #[test]
    fn weights_are_conditional_frequencies() {
        let s = schema();
        // After "donald": trump twice, like once → 2/3 and 1/3.
        let sentences = vec![
            s.vocab().tokenize("donald trump"),
            s.vocab().tokenize("donald trump"),
            s.vocab().tokenize("donald like"),
        ];
        let (model, _) = train_local_model(&s, &sentences).unwrap();
        let trump_slot = s.slot_of_words("donald", "trump").unwrap();
        let like_slot = s.slot_of_words("donald", "like").unwrap();
        assert!((model.weights[trump_slot] - 2.0 / 3.0).abs() < 1e-9);
        assert!((model.weights[like_slot] - 1.0 / 3.0).abs() < 1e-9);
        // Conditional frequencies after one word sum to at most 1.
        let sum: f64 = s
            .slots()
            .iter()
            .enumerate()
            .filter(|(_, (p, _))| *p == s.vocab().id("donald"))
            .map(|(i, _)| model.weights[i])
            .sum();
        assert!(sum <= 1.0 + 1e-9);
    }

    #[test]
    fn empty_trace_gives_zero_model() {
        let s = schema();
        let (model, stats) = train_local_model(&s, &[]).unwrap();
        assert!(model.weights.iter().all(|&w| w == 0.0));
        assert_eq!(stats.tokens, 0);
        assert_eq!(stats.sentences, 0);
        assert!(stats.bigram_counts.is_empty());
    }

    #[test]
    fn single_word_sentences_produce_no_bigrams() {
        let s = schema();
        let sentences = vec![s.vocab().tokenize("trump"), s.vocab().tokenize("donald")];
        let (model, stats) = train_local_model(&s, &sentences).unwrap();
        assert!(model.weights.iter().all(|&w| w == 0.0));
        assert_eq!(stats.tokens, 2);
        assert!(stats.bigram_counts.is_empty());
    }

    #[test]
    fn stats_record_untracked_bigrams_too() {
        let s = schema();
        // "bernie" is out of vocabulary; the bigram (for, <oov>) is counted in
        // the stats even though the schema does not track OOV pairs.
        let sentences = vec![s.vocab().tokenize("voting for bernie")];
        let (_, stats) = train_local_model(&s, &sentences).unwrap();
        let oov_pair = (s.vocab().id("for"), 0u32);
        assert_eq!(stats.bigram_counts.get(&oov_pair), Some(&1));
    }
}
