//! Federated-learning substrate for the Glimmers reproduction.
//!
//! Figure 1 of the paper motivates Glimmers with a federated next-word
//! prediction service: every client trains a local model on its own keyboard
//! traces, the service aggregates the local models into a global one, and a
//! malicious client can poison the global model because secure aggregation
//! hides individual contributions from the service. This crate implements
//! that entire pipeline:
//!
//! * [`vocab`] — the shared word vocabulary.
//! * [`model`] — the bigram model schema and parameter vectors (the
//!   "weight between 0 and 1 for an ordered pair of words" of Figure 1b).
//! * [`trainer`] — local training from a user's keyboard trace.
//! * [`fixed`] — fixed-point encoding used so that additive blinding and
//!   aggregation are exact over `u64` arithmetic.
//! * [`aggregation`] — plain federated averaging and blinded-sum aggregation.
//! * [`attacks`] — the poisoning strategies of Figure 1d (the out-of-range
//!   "538" contribution and friends).
//! * [`inversion`] — the model-inversion attack (Fredrikson et al.) that
//!   motivates hiding individual contributions in the first place.
//! * [`metrics`] — next-word prediction accuracy, parameter error, and other
//!   model-quality measures used by the experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregation;
pub mod attacks;
pub mod fixed;
pub mod inversion;
pub mod metrics;
pub mod model;
pub mod trainer;
pub mod vocab;

pub use aggregation::{aggregate_mean, aggregate_sum_fixed, FederatedRound};
pub use attacks::{apply_poison, PoisonStrategy};
pub use fixed::{decode_weights, encode_weights, FIXED_ONE};
pub use inversion::{invert_membership, InversionOutcome};
pub use metrics::{l2_error, top_k_accuracy, ModelQuality};
pub use model::{GlobalModel, LocalModel, ModelSchema};
pub use trainer::train_local_model;
pub use vocab::Vocabulary;

/// Errors produced by the federated-learning substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FederatedError {
    /// A contribution's dimension does not match the schema.
    DimensionMismatch {
        /// Dimension supplied.
        got: usize,
        /// Dimension the schema requires.
        expected: usize,
    },
    /// An aggregation round had no contributions.
    EmptyRound,
    /// A word was not present in the vocabulary.
    UnknownWord(String),
}

impl core::fmt::Display for FederatedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FederatedError::DimensionMismatch { got, expected } => {
                write!(f, "dimension mismatch: got {got}, expected {expected}")
            }
            FederatedError::EmptyRound => write!(f, "aggregation round has no contributions"),
            FederatedError::UnknownWord(w) => write!(f, "word not in vocabulary: {w}"),
        }
    }
}

impl std::error::Error for FederatedError {}

/// Result alias for this crate.
pub type Result<T> = core::result::Result<T, FederatedError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(FederatedError::DimensionMismatch {
            got: 3,
            expected: 5
        }
        .to_string()
        .contains('5'));
        assert!(FederatedError::EmptyRound
            .to_string()
            .contains("no contributions"));
        assert!(FederatedError::UnknownWord("trump".into())
            .to_string()
            .contains("trump"));
    }
}
