//! Model-quality metrics used by the experiments.
//!
//! The experiments compare global models trained with and without Glimmer
//! protection under poisoning (E3/E4). The headline metrics are top-k
//! next-word accuracy over held-out sentences, the L2 distance to a reference
//! model, and the fraction of out-of-range parameters.

use crate::model::{GlobalModel, ModelSchema, WEIGHT_MAX, WEIGHT_MIN};

/// Aggregated quality numbers for one global model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelQuality {
    /// Fraction of held-out bigrams whose true next word was the top-1
    /// prediction.
    pub top1_accuracy: f64,
    /// Fraction of held-out bigrams whose true next word was within the top-3
    /// predictions.
    pub top3_accuracy: f64,
    /// Number of bigram test cases evaluated.
    pub cases: usize,
    /// L2 distance to the reference (honest) model, if one was supplied.
    pub l2_to_reference: Option<f64>,
    /// Fraction of parameters outside the valid `[0, 1]` range.
    pub out_of_range_fraction: f64,
}

/// Computes top-k accuracy of `model` over held-out tokenized sentences.
///
/// Every adjacent pair `(prev, next)` in the test sentences whose `prev` has
/// at least one prediction is a test case.
#[must_use]
pub fn top_k_accuracy(
    schema: &ModelSchema,
    model: &GlobalModel,
    test_sentences: &[Vec<u32>],
    k: usize,
) -> (f64, usize) {
    let mut cases = 0usize;
    let mut hits = 0usize;
    for sentence in test_sentences {
        for window in sentence.windows(2) {
            let (prev, next) = (window[0], window[1]);
            let predictions = model.predict_next(schema, prev, k);
            if predictions.is_empty() {
                continue;
            }
            cases += 1;
            if predictions.iter().any(|(id, _)| *id == next) {
                hits += 1;
            }
        }
    }
    if cases == 0 {
        (0.0, 0)
    } else {
        (hits as f64 / cases as f64, cases)
    }
}

/// L2 distance between two weight vectors (0 when lengths differ is avoided
/// by truncating to the shorter length, which only happens in tests).
#[must_use]
pub fn l2_error(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

/// Fraction of parameters outside `[0, 1]`.
#[must_use]
pub fn out_of_range_fraction(weights: &[f64]) -> f64 {
    if weights.is_empty() {
        return 0.0;
    }
    let bad = weights
        .iter()
        .filter(|w| !(WEIGHT_MIN..=WEIGHT_MAX).contains(*w) || !w.is_finite())
        .count();
    bad as f64 / weights.len() as f64
}

/// Computes the full quality summary for a model.
#[must_use]
pub fn evaluate(
    schema: &ModelSchema,
    model: &GlobalModel,
    test_sentences: &[Vec<u32>],
    reference: Option<&GlobalModel>,
) -> ModelQuality {
    let (top1, cases) = top_k_accuracy(schema, model, test_sentences, 1);
    let (top3, _) = top_k_accuracy(schema, model, test_sentences, 3);
    ModelQuality {
        top1_accuracy: top1,
        top3_accuracy: top3,
        cases,
        l2_to_reference: reference.map(|r| l2_error(&model.weights, &r.weights)),
        out_of_range_fraction: out_of_range_fraction(&model.weights),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::aggregate_mean;
    use crate::trainer::train_local_model;
    use crate::vocab::Vocabulary;

    fn schema() -> ModelSchema {
        let vocab = Vocabulary::new(["voting", "for", "donald", "trump", "clinton"]);
        ModelSchema::dense(vocab, &["voting", "for", "donald", "trump", "clinton"])
    }

    #[test]
    fn accurate_model_scores_high() {
        let s = schema();
        let train = vec![
            s.vocab().tokenize("voting for donald trump"),
            s.vocab().tokenize("voting for donald trump"),
            s.vocab().tokenize("voting for donald clinton"),
        ];
        let (local, _) = train_local_model(&s, &train).unwrap();
        let global = aggregate_mean(&s, &[local]).unwrap();

        let test = vec![s.vocab().tokenize("voting for donald trump")];
        let quality = evaluate(&s, &global, &test, None);
        assert_eq!(quality.cases, 3);
        assert!(quality.top1_accuracy > 0.99);
        assert!(quality.top3_accuracy >= quality.top1_accuracy);
        assert_eq!(quality.out_of_range_fraction, 0.0);
        assert!(quality.l2_to_reference.is_none());
    }

    #[test]
    fn skewed_model_scores_lower_than_honest() {
        let s = schema();
        let train = vec![
            s.vocab().tokenize("voting for donald trump"),
            s.vocab().tokenize("voting for donald trump"),
        ];
        let (honest, _) = train_local_model(&s, &train).unwrap();
        let honest_global = aggregate_mean(&s, std::slice::from_ref(&honest)).unwrap();

        // Poisoned global model: "donald" now predicts "clinton".
        let mut poisoned_global = honest_global.clone();
        let trump_slot = s.slot_of_words("donald", "trump").unwrap();
        let clinton_slot = s.slot_of_words("donald", "clinton").unwrap();
        poisoned_global.weights[trump_slot] = 0.0;
        poisoned_global.weights[clinton_slot] = 538.0;

        let test = vec![s.vocab().tokenize("voting for donald trump")];
        let honest_q = evaluate(&s, &honest_global, &test, None);
        let poisoned_q = evaluate(&s, &poisoned_global, &test, Some(&honest_global));
        assert!(honest_q.top1_accuracy > poisoned_q.top1_accuracy);
        assert!(poisoned_q.out_of_range_fraction > 0.0);
        assert!(poisoned_q.l2_to_reference.unwrap() > 100.0);
    }

    #[test]
    fn metric_edge_cases() {
        let s = schema();
        let empty = GlobalModel::empty(&s);
        let (acc, cases) = top_k_accuracy(&s, &empty, &[s.vocab().tokenize("donald trump")], 1);
        assert_eq!(acc, 0.0);
        assert_eq!(cases, 0);
        assert_eq!(l2_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((l2_error(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(out_of_range_fraction(&[]), 0.0);
        assert_eq!(out_of_range_fraction(&[0.5, 1.5]), 0.5);
        assert_eq!(out_of_range_fraction(&[f64::NAN, 0.2]), 0.5);
    }
}
