//! Property-based tests for the replay scenario codec and the chunked
//! parallel loader: the codec round-trips and rejects garbage without
//! panicking, and for any file size × chunk count × excess every record is
//! parsed exactly once — no record split, lost, or double-read.

use glimmer_workloads::replay::{
    chunk_spans, load_chunks, parse_line, ChunkSpan, ParseSummary, ReplayRecord, ScenarioMix,
    ScenarioSpec, CHUNK_EXCESS,
};
use proptest::prelude::*;

fn mix_for(selector: u8) -> ScenarioMix {
    match selector % 5 {
        0 => ScenarioMix::Steady,
        1 => ScenarioMix::Diurnal { period: 37 },
        2 => ScenarioMix::TenantSkew { hot_share: 0.8 },
        3 => ScenarioMix::AbuseBurst {
            abusive_fraction: 0.5,
            period: 24,
            burst_len: 6,
        },
        _ => ScenarioMix::ReconnectStorm { burst_len: 5 },
    }
}

fn scenario(records: u64, selector: u8, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        tenants: 4,
        devices_per_tenant: 32,
        records,
        mix: mix_for(selector),
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn codec_round_trips(
        tenant in any::<u32>(),
        device in any::<u64>(),
        tick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let record = ReplayRecord { tenant, device, tick, seed };
        let line = record.encode();
        prop_assert_eq!(line.as_bytes().last(), Some(&b'\n'));
        let parsed = parse_line(line.trim_end().as_bytes()).unwrap();
        prop_assert_eq!(parsed, record);
    }

    #[test]
    fn parser_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Any byte soup either parses (all-digit fields) or errors; if it
        // parses, re-encoding parses back to the same record.
        if let Ok(record) = parse_line(&bytes) {
            let again = parse_line(record.encode().trim_end().as_bytes()).unwrap();
            prop_assert_eq!(again, record);
        }
    }

    #[test]
    fn truncated_lines_error_or_parse_without_panic(
        tenant in any::<u32>(),
        device in any::<u64>(),
        tick in any::<u64>(),
        seed in any::<u64>(),
        cut in any::<u16>(),
    ) {
        let record = ReplayRecord { tenant, device, tick, seed };
        let line = record.encode();
        let trimmed = line.trim_end().as_bytes();
        let cut = (cut as usize) % (trimmed.len() + 1);
        let prefix = &trimmed[..cut];
        // A truncated prefix must never panic; losing a separator must be
        // rejected outright.
        let result = parse_line(prefix);
        if prefix.iter().filter(|&&b| b == b';').count() < 3 {
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn chunk_spans_partition_any_length(
        len in 0u64..50_000,
        chunks in 0usize..64,
    ) {
        let spans = chunk_spans(len, chunks);
        if len == 0 {
            prop_assert!(spans.is_empty());
        } else {
            prop_assert_eq!(spans[0].start, 0);
            prop_assert_eq!(spans.last().unwrap().end, len);
            for pair in spans.windows(2) {
                prop_assert_eq!(pair[0].end, pair[1].start);
            }
            for span in &spans {
                prop_assert!(!span.is_empty());
            }
        }
    }

    #[test]
    fn every_record_parsed_exactly_once(
        records in 0u64..220,
        selector in any::<u8>(),
        seed in any::<u64>(),
        chunks in 1usize..24,
        excess in 0usize..260,
    ) {
        let spec = scenario(records, selector, seed);
        let truth = spec.records_vec();
        let mut data = Vec::new();
        spec.write_scenario(&mut data).unwrap();

        let loads = load_chunks(&data[..], chunks, excess).unwrap();
        let flat: Vec<ReplayRecord> = loads
            .iter()
            .flat_map(|l| l.records.iter().copied())
            .collect();
        prop_assert_eq!(flat, truth);
        let total = loads.iter().fold(ParseSummary::default(), |mut a, l| {
            a.merge(&l.summary);
            a
        });
        prop_assert_eq!(total.records, records);
        prop_assert_eq!(total.parse_errors, 0);
        // The spans the loader used partition the file.
        let spans: Vec<ChunkSpan> = loads.iter().map(|l| l.span).collect();
        prop_assert_eq!(spans, chunk_spans(data.len() as u64, chunks));
    }

    #[test]
    fn garbage_interleaved_records_still_exactly_once(
        records in 1u64..120,
        seed in any::<u64>(),
        chunks in 1usize..16,
        garbage in proptest::collection::vec("[a-z ;!]{1,30}", 0..6),
    ) {
        // Interleave malformed lines between valid ones: valid records must
        // all survive exactly once and garbage must be counted, not fatal.
        let spec = scenario(records, 0, seed);
        let truth = spec.records_vec();
        let mut data = Vec::new();
        let mut line = Vec::new();
        let mut expected_errors = 0u64;
        for (i, record) in truth.iter().enumerate() {
            line.clear();
            record.encode_into(&mut line);
            data.extend_from_slice(&line);
            if let Some(g) = garbage.get(i % (garbage.len().max(1))) {
                if i % 7 == 3 && parse_line(g.as_bytes()).is_err() {
                    data.extend_from_slice(g.as_bytes());
                    data.push(b'\n');
                    expected_errors += 1;
                }
            }
        }
        let loads = load_chunks(&data[..], chunks, CHUNK_EXCESS).unwrap();
        let flat: Vec<ReplayRecord> = loads
            .iter()
            .flat_map(|l| l.records.iter().copied())
            .collect();
        prop_assert_eq!(flat, truth);
        let total = loads.iter().fold(ParseSummary::default(), |mut a, l| {
            a.merge(&l.summary);
            a
        });
        prop_assert_eq!(total.parse_errors, expected_errors);
    }
}
