//! Recorded-traffic scenario files and the chunked parallel replay loader.
//!
//! The paper's economics only show up at scale: millions of devices pushing
//! contributions through a small trusted front end. Driving that scale from
//! an in-process loop (E11–E16) conflates generator cost with gateway cost,
//! so this module gives every scenario a shared **on-disk representation**
//! that can be generated once and replayed at full hardware speed.
//!
//! # Scenario format
//!
//! A scenario file is plain ASCII lines, one record per line:
//!
//! ```text
//! tenant;device;tick;seed\n
//! ```
//!
//! All four fields are decimal `u64` (tenant additionally must fit `u32`).
//! `tick` is the arrival tick — non-decreasing across the file — and `seed`
//! deterministically expands into the record's payload samples via
//! [`payload_samples`], so a multi-hundred-MB file still round-trips
//! bit-for-bit from a [`ScenarioSpec`]. The top bit of `seed`
//! ([`ABUSE_FLAG`]) marks an abusive record whose expanded payload contains
//! out-of-range samples the enclave policy rejects.
//!
//! # Chunked parallel loading (the 1brc `CHUNK_EXCESS` idiom)
//!
//! [`load_chunks`] splits the file into `N` near-equal byte ranges
//! ([`chunk_spans`]) and parses each on its own reader. A byte range almost
//! never falls on a record boundary, so ownership is defined positionally:
//! **a record belongs to the span containing its first byte.** A reader
//! whose span starts mid-record skips forward to the first line that starts
//! inside its span (the byte after the first `\n` at or past `start - 1`),
//! and keeps parsing past its span end until the last line it owns is
//! terminated. Each reader's window therefore extends [`CHUNK_EXCESS`]
//! bytes past its span (growing further on demand), and together the
//! readers parse **every record exactly once** — no record is split, lost,
//! or double-read, for any file size × chunk count × excess.
//!
//! The per-record parse path is allocation-free: records are `Copy`, field
//! parsing is a manual checked decimal scan, and each reader reserves its
//! output vector once from a line-count bound before parsing.

use glimmer_crypto::drbg::Drbg;
use std::fmt;
use std::io::{self, Write};

/// Top bit of [`ReplayRecord::seed`]: set for records whose payload expands
/// to out-of-range (abusive) samples.
pub const ABUSE_FLAG: u64 = 1 << 63;

/// Upper bound on an encoded record line, terminator included (10 digits of
/// tenant + 3 × 20 digits + 3 separators + `\n`). Capacity hint only —
/// correctness never depends on it.
pub const MAX_LINE_BYTES: usize = 80;

/// Smallest possible encoded record line (`0;0;0;0\n`). Used to bound the
/// per-chunk record count so output vectors are reserved exactly once.
pub const MIN_LINE_BYTES: usize = 8;

/// Default read-ahead past a chunk's span end. A window this far past the
/// span almost always already contains the final owned record's terminator;
/// when it does not (pathological line lengths, tiny excess in tests), the
/// loader grows the window until it does, so any value — including `0` — is
/// correct.
pub const CHUNK_EXCESS: usize = 128;

/// One replayed arrival: which device of which tenant sends at which tick,
/// and the seed its payload expands from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplayRecord {
    /// Tenant index (maps to a tenant name via [`replay_tenant_name`]).
    pub tenant: u32,
    /// Device identifier within the tenant (the session's `client_id`).
    pub device: u64,
    /// Arrival tick; non-decreasing across a generated scenario.
    pub tick: u64,
    /// Payload seed; top bit ([`ABUSE_FLAG`]) marks an abusive payload.
    pub seed: u64,
}

impl ReplayRecord {
    /// True when the record's payload expands to out-of-range samples.
    #[must_use]
    pub fn is_abusive(&self) -> bool {
        self.seed & ABUSE_FLAG != 0
    }

    /// Appends the record's encoded line (terminator included) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        // `writeln!` into a Vec cannot fail.
        let _ = writeln!(
            out,
            "{};{};{};{}",
            self.tenant, self.device, self.tick, self.seed
        );
    }

    /// The record's encoded line as a `String` (terminator included).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = Vec::with_capacity(MAX_LINE_BYTES);
        self.encode_into(&mut out);
        String::from_utf8(out).expect("record encoding is ASCII")
    }
}

/// Why a line failed to parse as a [`ReplayRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// The line does not have exactly four `;`-separated fields.
    FieldCount,
    /// A field is empty.
    EmptyField,
    /// A field contains a non-digit byte.
    NonDigit,
    /// A field overflows `u64`.
    Overflow,
    /// The tenant field does not fit `u32`.
    TenantRange,
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::FieldCount => write!(f, "expected four ';'-separated fields"),
            RecordError::EmptyField => write!(f, "empty field"),
            RecordError::NonDigit => write!(f, "non-digit byte in field"),
            RecordError::Overflow => write!(f, "field overflows u64"),
            RecordError::TenantRange => write!(f, "tenant does not fit u32"),
        }
    }
}

impl std::error::Error for RecordError {}

/// Parses one line (terminator already stripped) into a record.
///
/// Never panics: truncated, empty-field, non-numeric, or overflowing lines
/// come back as a [`RecordError`]. The parse is allocation-free — a single
/// pass of checked decimal accumulation.
pub fn parse_line(line: &[u8]) -> Result<ReplayRecord, RecordError> {
    let mut fields = [0u64; 4];
    let mut idx = 0usize;
    let mut val = 0u64;
    let mut digits = 0usize;
    for &b in line {
        if b == b';' {
            if digits == 0 {
                return Err(RecordError::EmptyField);
            }
            if idx >= 3 {
                return Err(RecordError::FieldCount);
            }
            fields[idx] = val;
            idx += 1;
            val = 0;
            digits = 0;
        } else if b.is_ascii_digit() {
            val = val
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(b - b'0')))
                .ok_or(RecordError::Overflow)?;
            digits += 1;
        } else {
            return Err(RecordError::NonDigit);
        }
    }
    if idx != 3 {
        return Err(RecordError::FieldCount);
    }
    if digits == 0 {
        return Err(RecordError::EmptyField);
    }
    fields[3] = val;
    let tenant = u32::try_from(fields[0]).map_err(|_| RecordError::TenantRange)?;
    Ok(ReplayRecord {
        tenant,
        device: fields[1],
        tick: fields[2],
        seed: fields[3],
    })
}

/// Expands a record seed into its payload samples, reusing `out` (cleared,
/// then filled to `dimension`) so steady-state expansion allocates nothing.
///
/// Honest seeds produce samples in `[0.2, 0.8]` — inside the `[0, 1]` range
/// the IoT glimmer endorses. Seeds carrying [`ABUSE_FLAG`] inject
/// out-of-range samples (the first, then every third position) so the
/// enclave policy rejects the contribution.
pub fn payload_samples(seed: u64, dimension: usize, out: &mut Vec<f64>) {
    out.clear();
    out.reserve(dimension);
    let abusive = seed & ABUSE_FLAG != 0;
    let mut state = seed;
    for i in 0..dimension {
        let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        let v = if abusive && (i == 0 || i % 3 == 2) {
            5.0 + 40.0 * u
        } else {
            0.2 + 0.6 * u
        };
        out.push(v);
    }
}

/// The tenant name a replay tenant index maps to. Zero-padded to two digits
/// so lexicographic tenant order (how the gateway lists tenants) matches
/// index order for up to 100 tenants.
#[must_use]
pub fn replay_tenant_name(tenant: u32) -> String {
    format!("replay-{tenant:02}.example")
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which statistical structure a generated scenario has.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioMix {
    /// Uniform tenants and devices, one arrival per tick, all honest.
    Steady,
    /// Arrival density follows a cosine day curve of `period` records:
    /// ticks advance slowly at the peak (dense arrivals) and fast in the
    /// trough (sparse arrivals).
    Diurnal {
        /// Records per simulated day.
        period: u64,
    },
    /// Tenant 0 receives `hot_share` of the traffic; the rest is uniform
    /// over all tenants.
    TenantSkew {
        /// Fraction of records routed to the hot tenant.
        hot_share: f64,
    },
    /// Periodic abuse: within each `period`-record window the first
    /// `burst_len` records are abusive with probability `abusive_fraction`.
    AbuseBurst {
        /// Probability a burst record carries [`ABUSE_FLAG`].
        abusive_fraction: f64,
        /// Records per burst cycle.
        period: u64,
        /// Burst length in records at the start of each cycle.
        burst_len: u64,
    },
    /// Reconnect storms: every `4 * burst_len` records, `burst_len`
    /// *distinct consecutive* devices all arrive at the same tick.
    ReconnectStorm {
        /// Devices reconnecting per storm.
        burst_len: u64,
    },
}

/// Deterministic description of a scenario file: expand it with
/// [`ScenarioSpec::for_each_record`] or write it with
/// [`generate_scenario_file`]. The same spec always produces the same
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Tenant count (tenant indices `0..tenants`).
    pub tenants: u32,
    /// Devices per tenant (device ids `0..devices_per_tenant`).
    pub devices_per_tenant: u64,
    /// Total records to generate.
    pub records: u64,
    /// Statistical structure of the traffic.
    pub mix: ScenarioMix,
    /// Generator seed.
    pub seed: u64,
}

/// Size summary of a written scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioFileInfo {
    /// Records written.
    pub records: u64,
    /// Bytes written.
    pub bytes: u64,
}

impl ScenarioSpec {
    /// Streams the scenario's records through `f` in file order without
    /// materialising them, stopping at the first error `f` returns.
    pub fn try_for_each_record<E>(
        &self,
        mut f: impl FnMut(ReplayRecord) -> Result<(), E>,
    ) -> Result<(), E> {
        let mut rng =
            Drbg::from_material(&[&self.seed.to_le_bytes()[..], b"replay-scenario"].concat());
        let tenants = u64::from(self.tenants.max(1));
        let devices = self.devices_per_tenant.max(1);
        let mut tick = 0u64;
        for i in 0..self.records {
            let mut abusive = false;
            let (tenant, device) = match self.mix {
                ScenarioMix::Steady => {
                    tick += 1;
                    (rng.gen_range(tenants), rng.gen_range(devices))
                }
                ScenarioMix::Diurnal { period } => {
                    let p = period.max(2);
                    let phase = (i % p) as f64 / p as f64;
                    let intensity = 0.5 - 0.5 * (phase * std::f64::consts::TAU).cos();
                    tick += if rng.next_bool(intensity) { 1 } else { 3 };
                    (rng.gen_range(tenants), rng.gen_range(devices))
                }
                ScenarioMix::TenantSkew { hot_share } => {
                    tick += 1;
                    let tenant = if rng.next_bool(hot_share) {
                        0
                    } else {
                        rng.gen_range(tenants)
                    };
                    (tenant, rng.gen_range(devices))
                }
                ScenarioMix::AbuseBurst {
                    abusive_fraction,
                    period,
                    burst_len,
                } => {
                    tick += 1;
                    if i % period.max(1) < burst_len {
                        abusive = rng.next_bool(abusive_fraction);
                    }
                    (rng.gen_range(tenants), rng.gen_range(devices))
                }
                ScenarioMix::ReconnectStorm { burst_len } => {
                    let bl = burst_len.max(1);
                    let pos = i % (bl * 4);
                    if pos < bl {
                        // Storm: distinct consecutive devices, same tick.
                        let _ = rng.next_u64();
                        (rng.gen_range(tenants), pos % devices)
                    } else {
                        tick += 1;
                        (rng.gen_range(tenants), rng.gen_range(devices))
                    }
                }
            };
            let mut seed = rng.next_u64() & !ABUSE_FLAG;
            if abusive {
                seed |= ABUSE_FLAG;
            }
            f(ReplayRecord {
                tenant: tenant as u32,
                device,
                tick,
                seed,
            })?;
        }
        Ok(())
    }

    /// Streams the scenario's records through `f` in file order.
    pub fn for_each_record(&self, mut f: impl FnMut(ReplayRecord)) {
        let _ = self.try_for_each_record::<()>(|r| {
            f(r);
            Ok(())
        });
    }

    /// The scenario's records, materialised in file order. Ground truth for
    /// exactly-once loader tests; prefer [`ScenarioSpec::for_each_record`]
    /// for large scenarios.
    #[must_use]
    pub fn records_vec(&self) -> Vec<ReplayRecord> {
        let mut out = Vec::with_capacity(usize::try_from(self.records).unwrap_or(0));
        self.for_each_record(|r| out.push(r));
        out
    }

    /// Writes the scenario's encoded lines to `w`, returning the size
    /// summary. One reused line buffer — no per-record allocation.
    pub fn write_scenario<W: Write>(&self, w: &mut W) -> io::Result<ScenarioFileInfo> {
        let mut line = Vec::with_capacity(MAX_LINE_BYTES);
        let mut info = ScenarioFileInfo {
            records: 0,
            bytes: 0,
        };
        self.try_for_each_record::<io::Error>(|r| {
            line.clear();
            r.encode_into(&mut line);
            w.write_all(&line)?;
            info.records += 1;
            info.bytes += line.len() as u64;
            Ok(())
        })?;
        Ok(info)
    }
}

/// Generates the scenario file at `path` (truncating any existing file),
/// buffered in 1 MiB writes.
pub fn generate_scenario_file(
    path: &std::path::Path,
    spec: &ScenarioSpec,
) -> io::Result<ScenarioFileInfo> {
    let file = std::fs::File::create(path)?;
    let mut w = io::BufWriter::with_capacity(1 << 20, file);
    let info = spec.write_scenario(&mut w)?;
    w.flush()?;
    Ok(info)
}

/// One reader's byte range: `[start, end)` over the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSpan {
    /// First byte of the span (inclusive).
    pub start: u64,
    /// One past the last byte of the span (exclusive).
    pub end: u64,
}

impl ChunkSpan {
    /// Bytes covered by the span.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the span covers no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits `len` bytes into `chunks` contiguous, non-empty, near-equal
/// spans covering `[0, len)` exactly. The chunk count is clamped to
/// `[1, len]` so no span is ever empty; a zero-length file yields no
/// spans.
#[must_use]
pub fn chunk_spans(len: u64, chunks: usize) -> Vec<ChunkSpan> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = (chunks.max(1) as u64).min(len);
    let mut spans = Vec::with_capacity(usize::try_from(chunks).unwrap_or(1));
    for i in 0..chunks {
        let start = (u128::from(len) * u128::from(i) / u128::from(chunks)) as u64;
        let end = (u128::from(len) * u128::from(i + 1) / u128::from(chunks)) as u64;
        spans.push(ChunkSpan { start, end });
    }
    spans
}

/// Per-chunk parse accounting, mirrored into the gateway telemetry's
/// ingest counters by the replay driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParseSummary {
    /// Records parsed successfully.
    pub records: u64,
    /// Malformed lines rejected (counted, never panicked on).
    pub parse_errors: u64,
}

impl ParseSummary {
    /// Accumulates another summary into this one.
    pub fn merge(&mut self, other: &ParseSummary) {
        self.records += other.records;
        self.parse_errors += other.parse_errors;
    }
}

/// Parses every record **owned** by `span` out of `window`, appending to
/// `out`.
///
/// `window` holds the file bytes `[base, base + window.len())`. The caller
/// must supply `base <= span.start.saturating_sub(1)` (so the boundary
/// byte before the span is visible) and a window reaching at least the
/// terminator of the last owned record — [`load_chunks`] grows windows
/// until that holds. Ownership rule: a record is owned iff its first byte
/// lies in `[span.start, span.end)`. Empty lines are skipped silently;
/// malformed lines are counted in [`ParseSummary::parse_errors`].
pub fn parse_window(
    window: &[u8],
    base: u64,
    span: ChunkSpan,
    out: &mut Vec<ReplayRecord>,
) -> ParseSummary {
    let mut summary = ParseSummary::default();
    if span.is_empty() {
        return summary;
    }
    debug_assert!(base <= span.start.saturating_sub(1) || span.start == 0);
    let mut pos = if span.start == 0 {
        0usize
    } else {
        // Skip the record the previous span owns: the first owned line
        // starts right after the first terminator at or past start - 1.
        let from = usize::try_from(span.start - 1 - base).expect("window offset fits usize");
        match window[from.min(window.len())..]
            .iter()
            .position(|&b| b == b'\n')
        {
            Some(nl) => from + nl + 1,
            None => return summary, // span starts inside the file's last record
        }
    };
    // Reserve once from the tightest line-count bound so pushes never
    // reallocate: every record line is at least MIN_LINE_BYTES long.
    let owned_bytes = usize::try_from(span.end.saturating_sub(base + pos as u64)).unwrap_or(0);
    out.reserve(owned_bytes / MIN_LINE_BYTES + 1);
    while pos < window.len() && base + (pos as u64) < span.end {
        let line_end = window[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(window.len(), |nl| pos + nl);
        let line = &window[pos..line_end];
        if !line.is_empty() {
            match parse_line(line) {
                Ok(record) => {
                    out.push(record);
                    summary.records += 1;
                }
                Err(_) => summary.parse_errors += 1,
            }
        }
        pos = line_end + 1;
    }
    summary
}

/// [`parse_window`] over a fully in-memory file (`base == 0`).
pub fn parse_span(data: &[u8], span: ChunkSpan, out: &mut Vec<ReplayRecord>) -> ParseSummary {
    parse_window(data, 0, span, out)
}

/// A byte source the chunked loader can read at arbitrary offsets from
/// multiple reader threads at once.
pub trait ChunkSource: Sync {
    /// Total length in bytes.
    fn len(&self) -> u64;

    /// True when the source holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads at `offset`, filling as much of `buf` as the source can
    /// provide (short only at end-of-source).
    fn read_full_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize>;
}

impl ChunkSource for [u8] {
    fn len(&self) -> u64 {
        <[u8]>::len(self) as u64
    }

    fn read_full_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let start = usize::try_from(offset).unwrap_or(<[u8]>::len(self));
        let end = (start + buf.len()).min(<[u8]>::len(self));
        let n = end.saturating_sub(start);
        buf[..n].copy_from_slice(&self[start..end]);
        Ok(n)
    }
}

/// A scenario file opened for positional multi-reader access.
///
/// On Unix, readers use `pread` (no shared cursor, no locking). Elsewhere
/// a mutex-guarded seek+read keeps the same interface, trading the
/// parallel win for portability.
#[derive(Debug)]
pub struct FileSource {
    len: u64,
    #[cfg(unix)]
    file: std::fs::File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<std::fs::File>,
}

impl FileSource {
    /// Opens `path` read-only.
    pub fn open(path: &std::path::Path) -> io::Result<FileSource> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        Ok(FileSource {
            len,
            #[cfg(unix)]
            file,
            #[cfg(not(unix))]
            file: std::sync::Mutex::new(file),
        })
    }
}

impl ChunkSource for FileSource {
    fn len(&self) -> u64 {
        self.len
    }

    #[cfg(unix)]
    fn read_full_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        use std::os::unix::fs::FileExt;
        let mut read = 0usize;
        while read < buf.len() {
            match self.file.read_at(&mut buf[read..], offset + read as u64) {
                Ok(0) => break,
                Ok(n) => read += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(read)
    }

    #[cfg(not(unix))]
    fn read_full_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        use std::io::{Read, Seek};
        // Recover from poisoning rather than cascading a reader thread's
        // panic into every other reader: the guarded state is a bare file
        // handle whose seek position is re-set before every read anyway.
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        file.seek(io::SeekFrom::Start(offset))?;
        let mut read = 0usize;
        while read < buf.len() {
            match file.read(&mut buf[read..]) {
                Ok(0) => break,
                Ok(n) => read += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(read)
    }
}

/// A scenario file mapped read-only into memory for zero-copy multi-reader
/// access.
///
/// On Linux (x86_64/aarch64) this is a real `mmap(2)` mapping created with
/// raw syscalls (the workspace takes no libc dependency), unmapped with
/// `munmap(2)` on drop: chunk readers parse straight out of the page cache
/// with no per-window read syscalls. On every other target
/// [`MmapSource::map`] degrades to reading the file into an owned buffer —
/// same interface, no mapping — exactly how core pinning degrades in the
/// gateway's affinity shim.
///
/// The mapping assumes the file is not truncated while mapped (truncation
/// under an mmap consumer turns reads into `SIGBUS` on any platform); the
/// replay pipeline only maps scenario files it generated itself. Pair with
/// [`load_spans`] for fully copy-free loading, or use it as a
/// [`ChunkSource`] anywhere a [`FileSource`] fits.
#[derive(Debug)]
pub struct MmapSource {
    inner: mmap_imp::Mapping,
}

impl MmapSource {
    /// Maps `path` read-only (falls back to an owned full read on targets
    /// without the mmap shim).
    pub fn map(path: &std::path::Path) -> io::Result<MmapSource> {
        Ok(MmapSource {
            inner: mmap_imp::Mapping::map(path)?,
        })
    }

    /// True when this target actually memory-maps; false when
    /// [`MmapSource::map`] falls back to an owned read.
    #[must_use]
    pub fn is_mapped() -> bool {
        mmap_imp::IS_MAPPED
    }

    /// The file bytes, borrowed from the mapping (or the fallback buffer).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        self.inner.as_bytes()
    }
}

impl ChunkSource for MmapSource {
    fn len(&self) -> u64 {
        self.as_bytes().len() as u64
    }

    fn read_full_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.as_bytes().read_full_at(offset, buf)
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
/// The one `unsafe` corner of replay loading: raw `mmap`/`munmap` syscalls
/// and the slice view over the live mapping.
///
/// Invariants keeping this sound:
/// * The mapping is `PROT_READ` + `MAP_PRIVATE` over a file opened
///   read-only and is never written through; concurrent reads from many
///   threads are therefore data-race-free (`Send`/`Sync` below).
/// * A successful `mmap` return is a page-aligned pointer valid for `len`
///   bytes until the matching `munmap` in `Drop`; the `&[u8]` view borrows
///   from `&self`, so no slice outlives the mapping.
/// * The inline asm clobbers are exactly the Linux syscall ABI's
///   (`rcx`/`r11` on x86_64; `x8` plus argument registers on aarch64), the
///   same convention as the gateway's `sched_setaffinity` shim.
#[allow(unsafe_code)]
mod mmap_imp {
    use std::io;
    use std::os::fd::AsRawFd;

    pub(super) const IS_MAPPED: bool = true;

    #[derive(Debug)]
    pub(super) struct Mapping {
        ptr: *mut u8,
        len: usize,
    }

    // SAFETY: the mapping is immutable, private to this process, and lives
    // until Drop; sharing the pointer across threads only ever reads.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        pub(super) fn map(path: &std::path::Path) -> io::Result<Mapping> {
            let file = std::fs::File::open(path)?;
            let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidInput, "file too large to map")
            })?;
            if len == 0 {
                // `mmap` rejects zero-length mappings; an empty file needs
                // no mapping at all (and `Drop` skips the `munmap`).
                return Ok(Mapping {
                    ptr: std::ptr::NonNull::dangling().as_ptr(),
                    len: 0,
                });
            }
            let ret = mmap_read_private(file.as_raw_fd(), len);
            if (-4095..0).contains(&ret) {
                return Err(io::Error::from_raw_os_error(-ret as i32));
            }
            // The fd can close here: POSIX keeps the mapping alive.
            Ok(Mapping {
                ptr: ret as *mut u8,
                len,
            })
        }

        pub(super) fn as_bytes(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: see module docs — ptr/len come from a successful
            // PROT_READ mapping held until Drop, and the borrow is tied to
            // `&self`.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            if self.len != 0 {
                // A failed munmap at drop time just leaves the range
                // reserved; there is nothing useful to do with the error.
                let _ = munmap(self.ptr, self.len);
            }
        }
    }

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    fn mmap_read_private(fd: i32, len: usize) -> i64 {
        const SYS_MMAP: i64 = 9;
        let ret: i64;
        // SAFETY: see module docs — the kernel allocates the mapping, no
        // Rust memory is passed in; standard x86_64 syscall clobbers.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MMAP => ret,
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") i64::from(fd),
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "x86_64")]
    fn munmap(ptr: *mut u8, len: usize) -> i64 {
        const SYS_MUNMAP: i64 = 11;
        let ret: i64;
        // SAFETY: see module docs — `ptr`/`len` name exactly the mapping
        // being dropped; standard x86_64 syscall clobbers.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MUNMAP => ret,
                in("rdi") ptr,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    fn mmap_read_private(fd: i32, len: usize) -> i64 {
        const SYS_MMAP: i64 = 222;
        let ret: i64;
        // SAFETY: see module docs — standard aarch64 syscall convention
        // (number in x8, `svc 0`).
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") SYS_MMAP,
                inlateout("x0") 0i64 => ret,
                in("x1") len,
                in("x2") PROT_READ,
                in("x3") MAP_PRIVATE,
                in("x4") i64::from(fd),
                in("x5") 0i64,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    fn munmap(ptr: *mut u8, len: usize) -> i64 {
        const SYS_MUNMAP: i64 = 215;
        let ret: i64;
        // SAFETY: see module docs — `ptr`/`len` name exactly the mapping
        // being dropped; standard aarch64 syscall convention.
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") SYS_MUNMAP,
                inlateout("x0") ptr as i64 => ret,
                in("x1") len,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod mmap_imp {
    use std::io;

    pub(super) const IS_MAPPED: bool = false;

    #[derive(Debug)]
    pub(super) struct Mapping {
        data: Vec<u8>,
    }

    impl Mapping {
        pub(super) fn map(path: &std::path::Path) -> io::Result<Mapping> {
            Ok(Mapping {
                data: std::fs::read(path)?,
            })
        }

        pub(super) fn as_bytes(&self) -> &[u8] {
            &self.data
        }
    }
}

/// One loaded chunk: its span, its owned records in file order, and the
/// parse accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkLoad {
    /// The byte range this reader owned.
    pub span: ChunkSpan,
    /// Records owned by the span, in file order.
    pub records: Vec<ReplayRecord>,
    /// Parse accounting for the span.
    pub summary: ParseSummary,
}

fn load_one_chunk<S: ChunkSource + ?Sized>(
    source: &S,
    span: ChunkSpan,
    excess: usize,
) -> io::Result<ChunkLoad> {
    let len = source.len();
    let window_start = span.start.saturating_sub(1);
    let mut window_end = (span.end + excess as u64).min(len);
    let mut window = vec![0u8; usize::try_from(window_end - window_start).expect("window fits")];
    let mut filled = source.read_full_at(window_start, &mut window)?;
    loop {
        window.truncate(filled);
        let actual_end = window_start + filled as u64;
        if actual_end >= len {
            break; // window reaches end-of-file: every owned line is present
        }
        // Sufficient iff the window holds a terminator at or past
        // span.end - 1: the first such terminator ends the span's last
        // owned record (the line after it starts at or past span.end).
        let from = usize::try_from(span.end - 1 - window_start).expect("window offset fits");
        if window[from.min(window.len())..].contains(&b'\n') {
            break;
        }
        // Grow the window (doubling) until the last owned record closes.
        let grow = (window_end - window_start).max(MAX_LINE_BYTES as u64);
        window_end = (window_end + grow).min(len);
        let old = window.len();
        window.resize(
            usize::try_from(window_end - window_start).expect("window fits"),
            0,
        );
        filled = old + source.read_full_at(window_start + old as u64, &mut window[old..])?;
    }
    let mut records = Vec::new();
    let summary = parse_window(&window, window_start, span, &mut records);
    Ok(ChunkLoad {
        span,
        records,
        summary,
    })
}

/// Loads every record of `source` with `readers` parallel chunk readers,
/// each owning one [`chunk_spans`] byte range with `excess` bytes of
/// read-ahead. Returns one [`ChunkLoad`] per span, in file order —
/// concatenating their records reproduces the file's records exactly
/// once, for any reader count and any excess.
pub fn load_chunks<S: ChunkSource + ?Sized>(
    source: &S,
    readers: usize,
    excess: usize,
) -> io::Result<Vec<ChunkLoad>> {
    let spans = chunk_spans(source.len(), readers);
    if spans.len() <= 1 {
        return spans
            .into_iter()
            .map(|span| load_one_chunk(source, span, excess))
            .collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .into_iter()
            .map(|span| scope.spawn(move || load_one_chunk(source, span, excess)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chunk reader panicked"))
            .collect()
    })
}

/// Fully copy-free variant of [`load_chunks`] over an in-memory byte slice
/// — typically an [`MmapSource`] mapping. Each reader parses its span
/// straight out of `data`: no window allocation, no copy, no read syscalls.
/// Same exactly-once ownership rule and same result shape as
/// [`load_chunks`].
#[must_use]
pub fn load_spans(data: &[u8], readers: usize) -> Vec<ChunkLoad> {
    let spans = chunk_spans(<[u8]>::len(data) as u64, readers);
    let parse = |span: ChunkSpan| {
        let mut records = Vec::new();
        let summary = parse_span(data, span, &mut records);
        ChunkLoad {
            span,
            records,
            summary,
        }
    };
    if spans.len() <= 1 {
        return spans.into_iter().map(parse).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .into_iter()
            .map(|span| scope.spawn(move || parse(span)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("span reader panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(records: u64, mix: ScenarioMix) -> ScenarioSpec {
        ScenarioSpec {
            tenants: 3,
            devices_per_tenant: 16,
            records,
            mix,
            seed: 7,
        }
    }

    fn scenario_bytes(spec: &ScenarioSpec) -> Vec<u8> {
        let mut out = Vec::new();
        spec.write_scenario(&mut out).expect("in-memory write");
        out
    }

    #[test]
    fn encode_parse_round_trip() {
        let record = ReplayRecord {
            tenant: u32::MAX,
            device: u64::MAX,
            tick: 0,
            seed: ABUSE_FLAG | 12345,
        };
        let line = record.encode();
        let parsed = parse_line(line.trim_end().as_bytes()).expect("round trip");
        assert_eq!(parsed, record);
        assert!(parsed.is_abusive());
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicked_on() {
        for bad in [
            &b""[..],
            b"1;2;3",
            b"1;2;3;4;5",
            b"1;;3;4",
            b"1;2;x;4",
            b"99999999999999999999999;2;3;4",
            b"4294967296;2;3;4", // tenant > u32::MAX
            b"-1;2;3;4",
            b"1;2;3;4 ",
        ] {
            assert!(parse_line(bad).is_err(), "{:?} should fail", bad);
        }
    }

    #[test]
    fn generator_is_deterministic_and_ticks_are_monotonic() {
        for mix in [
            ScenarioMix::Steady,
            ScenarioMix::Diurnal { period: 64 },
            ScenarioMix::TenantSkew { hot_share: 0.8 },
            ScenarioMix::AbuseBurst {
                abusive_fraction: 0.5,
                period: 32,
                burst_len: 8,
            },
            ScenarioMix::ReconnectStorm { burst_len: 8 },
        ] {
            let s = spec(300, mix);
            let a = s.records_vec();
            let b = s.records_vec();
            assert_eq!(a, b);
            assert_eq!(a.len(), 300);
            assert!(a.windows(2).all(|w| w[0].tick <= w[1].tick), "{mix:?}");
            assert!(a.iter().all(|r| r.tenant < 3 && r.device < 16), "{mix:?}");
        }
    }

    #[test]
    fn abuse_burst_marks_records_and_storms_repeat_devices() {
        let s = spec(
            512,
            ScenarioMix::AbuseBurst {
                abusive_fraction: 1.0,
                period: 16,
                burst_len: 4,
            },
        );
        let records = s.records_vec();
        let abusive = records.iter().filter(|r| r.is_abusive()).count();
        assert_eq!(abusive, 512 / 16 * 4);

        let storm = spec(256, ScenarioMix::ReconnectStorm { burst_len: 8 });
        let records = storm.records_vec();
        // Each storm's 8 records share one tick and hit distinct devices.
        let first_storm = &records[0..8];
        assert!(first_storm.iter().all(|r| r.tick == first_storm[0].tick));
        let mut devices: Vec<u64> = first_storm.iter().map(|r| r.device).collect();
        devices.sort_unstable();
        devices.dedup();
        assert_eq!(devices.len(), 8);
    }

    #[test]
    fn skew_routes_most_traffic_to_hot_tenant() {
        let s = spec(2000, ScenarioMix::TenantSkew { hot_share: 0.9 });
        let records = s.records_vec();
        let hot = records.iter().filter(|r| r.tenant == 0).count();
        assert!(hot as f64 > 0.85 * records.len() as f64);
    }

    #[test]
    fn chunk_spans_cover_exactly() {
        for len in [0u64, 1, 7, 100, 1_000_003] {
            for chunks in [1usize, 2, 3, 4, 17, 2000] {
                let spans = chunk_spans(len, chunks);
                if len == 0 {
                    assert!(spans.is_empty());
                    continue;
                }
                assert_eq!(spans.len(), chunks.min(len as usize).max(1));
                assert_eq!(spans[0].start, 0);
                assert_eq!(spans.last().unwrap().end, len);
                assert!(spans.windows(2).all(|w| w[0].end == w[1].start));
                assert!(spans.iter().all(|s| !s.is_empty()));
            }
        }
    }

    #[test]
    fn chunked_parse_is_exactly_once_for_any_split() {
        let s = spec(200, ScenarioMix::Steady);
        let truth = s.records_vec();
        let data = scenario_bytes(&s);
        for chunks in [1usize, 2, 3, 4, 7, 13, 64] {
            for excess in [0usize, 1, 8, CHUNK_EXCESS, 1 << 16] {
                let loads = load_chunks(&data[..], chunks, excess).expect("in-memory load");
                let flat: Vec<ReplayRecord> = loads
                    .iter()
                    .flat_map(|l| l.records.iter().copied())
                    .collect();
                assert_eq!(flat, truth, "chunks={chunks} excess={excess}");
                assert!(loads.iter().all(|l| l.summary.parse_errors == 0));
            }
        }
    }

    #[test]
    fn garbage_lines_are_counted_per_chunk_not_fatal() {
        let s = spec(50, ScenarioMix::Steady);
        let mut data = scenario_bytes(&s);
        data.extend_from_slice(b"garbage line\n");
        data.extend_from_slice(b"1;2;3;4\n");
        data.extend_from_slice(b"\n"); // empty line: skipped silently
        let loads = load_chunks(&data[..], 4, CHUNK_EXCESS).expect("load");
        let total: ParseSummary = loads.iter().fold(ParseSummary::default(), |mut a, l| {
            a.merge(&l.summary);
            a
        });
        assert_eq!(total.records, 51);
        assert_eq!(total.parse_errors, 1);
    }

    #[test]
    fn file_source_matches_in_memory_loads() {
        let s = spec(400, ScenarioMix::Diurnal { period: 50 });
        let path = std::env::temp_dir().join(format!(
            "glimmer-replay-test-{}.scenario",
            std::process::id()
        ));
        let info = generate_scenario_file(&path, &s).expect("generate");
        assert_eq!(info.records, 400);
        let source = FileSource::open(&path).expect("open");
        assert_eq!(source.len(), info.bytes);
        let from_file = load_chunks(&source, 4, CHUNK_EXCESS).expect("file load");
        let data = std::fs::read(&path).expect("read back");
        let in_memory = load_chunks(&data[..], 4, CHUNK_EXCESS).expect("memory load");
        assert_eq!(from_file, in_memory);
        assert_eq!(
            from_file
                .iter()
                .map(|l| l.records.len() as u64)
                .sum::<u64>(),
            400
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mmap_source_matches_file_source_and_load_spans_is_exactly_once() {
        let s = spec(300, ScenarioMix::Steady);
        let truth = s.records_vec();
        let path = std::env::temp_dir().join(format!(
            "glimmer-replay-mmap-test-{}.scenario",
            std::process::id()
        ));
        let info = generate_scenario_file(&path, &s).expect("generate");
        let mmap = MmapSource::map(&path).expect("map");
        assert_eq!(ChunkSource::len(&mmap), info.bytes);
        assert_eq!(mmap.as_bytes(), &std::fs::read(&path).expect("read")[..]);
        // On Linux this is a real mapping; elsewhere the fallback read.
        assert_eq!(MmapSource::is_mapped(), cfg!(target_os = "linux"));

        // As a ChunkSource it loads identically to the pread path...
        let via_pread = load_chunks(&FileSource::open(&path).expect("open"), 4, CHUNK_EXCESS)
            .expect("pread load");
        let via_mmap = load_chunks(&mmap, 4, CHUNK_EXCESS).expect("mmap load");
        assert_eq!(via_mmap, via_pread);
        // ...and the copy-free span loader owns every record exactly once,
        // for any reader count.
        for readers in [1usize, 2, 3, 7, 64] {
            let loads = load_spans(mmap.as_bytes(), readers);
            let flat: Vec<ReplayRecord> = loads
                .iter()
                .flat_map(|l| l.records.iter().copied())
                .collect();
            assert_eq!(flat, truth, "readers={readers}");
            assert!(loads.iter().all(|l| l.summary.parse_errors == 0));
        }
        drop(mmap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mmap_source_handles_empty_and_missing_files() {
        let path = std::env::temp_dir().join(format!(
            "glimmer-replay-mmap-empty-{}.scenario",
            std::process::id()
        ));
        std::fs::write(&path, b"").expect("write empty");
        let mmap = MmapSource::map(&path).expect("map empty");
        assert!(ChunkSource::is_empty(&mmap));
        assert!(mmap.as_bytes().is_empty());
        assert!(load_spans(mmap.as_bytes(), 4).is_empty());
        let _ = std::fs::remove_file(&path);
        assert!(MmapSource::map(&path).is_err(), "missing file is an error");
    }

    #[test]
    fn payload_samples_distinguish_honest_from_abusive() {
        let mut buf = Vec::new();
        payload_samples(42, 8, &mut buf);
        assert_eq!(buf.len(), 8);
        assert!(buf.iter().all(|s| (0.0..=1.0).contains(s)));
        let honest = buf.clone();
        payload_samples(42, 8, &mut buf);
        assert_eq!(buf, honest, "expansion is deterministic");
        payload_samples(42 | ABUSE_FLAG, 8, &mut buf);
        assert!(buf.iter().any(|s| *s > 1.0));
        payload_samples(7 | ABUSE_FLAG, 1, &mut buf);
        assert!(
            buf[0] > 1.0,
            "abusive payloads are abusive at any dimension"
        );
    }
}
