//! Mixed multi-tenant traffic for the gateway serving experiments (E11).
//!
//! Real glimmer-as-a-service hosts see interleaved traffic from many tenants
//! at once: different services, different device populations, different
//! misbehaviour rates. This generator produces, from one seed, a set of
//! tenant traffic profiles plus a deterministic interleaved arrival schedule
//! the gateway experiments replay.

use crate::iot::DeviceBehaviour;
use glimmer_crypto::drbg::Drbg;

/// One device's planned request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceTraffic {
    /// Device identifier (the `client_id` its contributions carry).
    pub device_id: u64,
    /// Ground-truth behaviour.
    pub behaviour: DeviceBehaviour,
    /// One sample vector per planned request.
    pub requests: Vec<Vec<f64>>,
}

impl DeviceTraffic {
    /// True when the device only ever sends in-range readings.
    #[must_use]
    pub fn is_honest(&self) -> bool {
        self.behaviour == DeviceBehaviour::Honest
    }
}

/// One tenant's device population.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantTraffic {
    /// Tenant name (application id).
    pub name: String,
    /// The tenant's devices.
    pub devices: Vec<DeviceTraffic>,
}

/// One arrival in the interleaved schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficEvent {
    /// Index into [`GatewayTrafficWorkload::tenants`].
    pub tenant: usize,
    /// Index into that tenant's `devices`.
    pub device: usize,
    /// Which of the device's requests arrives.
    pub request: usize,
}

/// Parameters for one tenant's traffic.
#[derive(Debug, Clone)]
pub struct TenantTrafficSpec {
    /// Tenant name.
    pub name: String,
    /// Device count.
    pub devices: usize,
    /// Requests each device sends.
    pub requests_per_device: usize,
    /// Samples per request (the contribution dimension).
    pub dimension: usize,
    /// Fraction of misbehaving devices.
    pub misbehaving_fraction: f64,
}

/// One device session's request stream, extracted from the interleaved
/// schedule for an async (task-per-session) driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStream {
    /// Index into [`GatewayTrafficWorkload::tenants`].
    pub tenant: usize,
    /// Index into that tenant's `devices`.
    pub device: usize,
    /// The device's request indices, in their schedule arrival order.
    pub requests: Vec<usize>,
}

/// The generated multi-tenant workload.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayTrafficWorkload {
    /// Per-tenant device populations.
    pub tenants: Vec<TenantTraffic>,
    /// Interleaved arrival order over every (tenant, device, request).
    pub schedule: Vec<TrafficEvent>,
}

impl GatewayTrafficWorkload {
    /// Generates the workload deterministically from `seed`.
    #[must_use]
    pub fn generate(specs: &[TenantTrafficSpec], seed: [u8; 32]) -> Self {
        let mut rng = Drbg::from_material(&[&seed[..], b"gateway-traffic"].concat());
        let mut tenants = Vec::with_capacity(specs.len());
        for spec in specs {
            let mut devices = Vec::with_capacity(spec.devices);
            for device_id in 0..spec.devices as u64 {
                let behaviour = if rng.next_bool(spec.misbehaving_fraction) {
                    if rng.next_bool(0.5) {
                        DeviceBehaviour::Spiky
                    } else {
                        DeviceBehaviour::Fabricating
                    }
                } else {
                    DeviceBehaviour::Honest
                };
                let baseline = 0.25 + rng.next_f64() * 0.5;
                let fabricated = rng.next_f64();
                let requests = (0..spec.requests_per_device)
                    .map(|r| {
                        (0..spec.dimension)
                            .map(|i| match behaviour {
                                DeviceBehaviour::Honest => {
                                    (baseline + rng.next_gaussian() * 0.05).clamp(0.0, 1.0)
                                }
                                DeviceBehaviour::Spiky => {
                                    if (r + i) % 5 == 2 {
                                        2.0 + rng.next_f64() * 20.0
                                    } else {
                                        (baseline + rng.next_gaussian() * 0.05).clamp(0.0, 1.0)
                                    }
                                }
                                DeviceBehaviour::Fabricating => fabricated,
                            })
                            .collect()
                    })
                    .collect();
                devices.push(DeviceTraffic {
                    device_id,
                    behaviour,
                    requests,
                });
            }
            tenants.push(TenantTraffic {
                name: spec.name.clone(),
                devices,
            });
        }

        // Deterministic interleave: list every arrival, then Fisher-Yates.
        let mut schedule = Vec::new();
        for (t, spec) in specs.iter().enumerate() {
            for d in 0..spec.devices {
                for r in 0..spec.requests_per_device {
                    schedule.push(TrafficEvent {
                        tenant: t,
                        device: d,
                        request: r,
                    });
                }
            }
        }
        for i in (1..schedule.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            schedule.swap(i, j);
        }
        GatewayTrafficWorkload { tenants, schedule }
    }

    /// Total planned requests across tenants.
    #[must_use]
    pub fn total_requests(&self) -> usize {
        self.schedule.len()
    }

    /// Requests whose device is honest (expected endorsements, mask
    /// permitting).
    #[must_use]
    pub fn honest_requests(&self) -> usize {
        self.schedule
            .iter()
            .filter(|e| self.tenants[e.tenant].devices[e.device].is_honest())
            .count()
    }

    /// The interleaved arrival schedule regrouped into **per-session
    /// streams** — the shape the async front-end consumes, where each
    /// spawned session task owns one device's traffic and submits it as its
    /// own request stream (`submit` per item, or `submit_many` over chunks
    /// of [`SessionStream::requests`]).
    ///
    /// Each stream lists the device's request indices in their arrival
    /// order, so per-session submission order is preserved exactly — the
    /// ordering guarantee a session actually has (slot queues are FIFO per
    /// arrival; cross-session interleave is a scheduling freedom). Streams
    /// come back in `(tenant, device)` order. Concatenating them does
    /// **not** reproduce [`GatewayTrafficWorkload::schedule`]'s global
    /// interleave, so a driver pair that must compare bit-for-bit has both
    /// sides consume the *same* view — experiment E15 feeds these streams
    /// to its blocking and async drivers alike, one `submit_many` group per
    /// session.
    #[must_use]
    pub fn session_streams(&self) -> Vec<SessionStream> {
        let mut streams: Vec<SessionStream> = self
            .tenants
            .iter()
            .enumerate()
            .flat_map(|(tenant, t)| {
                (0..t.devices.len()).map(move |device| SessionStream {
                    tenant,
                    device,
                    requests: Vec::new(),
                })
            })
            .collect();
        // Index of a (tenant, device) pair in the flattened stream vector.
        let mut base = Vec::with_capacity(self.tenants.len());
        let mut offset = 0;
        for t in &self.tenants {
            base.push(offset);
            offset += t.devices.len();
        }
        for event in &self.schedule {
            streams[base[event.tenant] + event.device]
                .requests
                .push(event.request);
        }
        streams
    }

    /// The arrival schedule chopped into bulk-producer submission groups of
    /// at most `batch` events, preserving arrival order (a `batch` of `0` is
    /// treated as `1`).
    ///
    /// This is the shape the gateway's batched admission path
    /// (`submit_batch`) consumes: a front-end that buffers arrivals for one
    /// scheduling quantum submits each chunk as one call, paying the
    /// admission and shard-command cost per chunk instead of per request.
    /// Concatenating the chunks reproduces the schedule exactly, so a
    /// batched replay serves the same traffic as a per-request replay.
    pub fn schedule_chunks(&self, batch: usize) -> impl Iterator<Item = &[TrafficEvent]> {
        self.schedule.chunks(batch.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<TenantTrafficSpec> {
        vec![
            TenantTrafficSpec {
                name: "iot-telemetry.example".to_string(),
                devices: 6,
                requests_per_device: 3,
                dimension: 4,
                misbehaving_fraction: 0.3,
            },
            TenantTrafficSpec {
                name: "nextwordpredictive.com".to_string(),
                devices: 4,
                requests_per_device: 2,
                dimension: 8,
                misbehaving_fraction: 0.0,
            },
        ]
    }

    #[test]
    fn generation_is_deterministic_and_complete() {
        let a = GatewayTrafficWorkload::generate(&specs(), [9u8; 32]);
        let b = GatewayTrafficWorkload::generate(&specs(), [9u8; 32]);
        assert_eq!(a, b);
        let c = GatewayTrafficWorkload::generate(&specs(), [10u8; 32]);
        assert_ne!(a.schedule, c.schedule);

        assert_eq!(a.total_requests(), 6 * 3 + 4 * 2);
        assert_eq!(a.tenants.len(), 2);
        assert_eq!(a.tenants[0].devices.len(), 6);
        assert!(a.tenants[0].devices.iter().all(|d| d.requests.len() == 3));
        assert!(a.tenants[0]
            .devices
            .iter()
            .all(|d| d.requests.iter().all(|r| r.len() == 4)));

        // Every (tenant, device, request) triple appears exactly once.
        let mut seen: Vec<TrafficEvent> = a.schedule.clone();
        seen.sort_by_key(|e| (e.tenant, e.device, e.request));
        seen.dedup();
        assert_eq!(seen.len(), a.total_requests());
    }

    #[test]
    fn schedule_chunks_partition_the_schedule_in_order() {
        let w = GatewayTrafficWorkload::generate(&specs(), [12u8; 32]);
        for batch in [1usize, 4, 7, 1000] {
            let chunks: Vec<&[TrafficEvent]> = w.schedule_chunks(batch).collect();
            // Every chunk but the last is full; concatenation reproduces the
            // schedule exactly.
            assert!(chunks[..chunks.len() - 1].iter().all(|c| c.len() == batch));
            let flat: Vec<TrafficEvent> = chunks.into_iter().flatten().copied().collect();
            assert_eq!(flat, w.schedule);
        }
        // A zero batch degrades to per-request chunks instead of panicking.
        assert_eq!(w.schedule_chunks(0).count(), w.total_requests());
    }

    #[test]
    fn session_streams_partition_the_schedule_per_device_in_order() {
        let w = GatewayTrafficWorkload::generate(&specs(), [13u8; 32]);
        let streams = w.session_streams();
        // One stream per (tenant, device), in deterministic order.
        assert_eq!(streams.len(), 6 + 4);
        let keys: Vec<(usize, usize)> = streams.iter().map(|s| (s.tenant, s.device)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        // Together the streams carry every scheduled request exactly once.
        assert_eq!(
            streams.iter().map(|s| s.requests.len()).sum::<usize>(),
            w.total_requests()
        );
        // Each stream preserves its device's arrival order from the
        // interleaved schedule.
        for stream in &streams {
            let from_schedule: Vec<usize> = w
                .schedule
                .iter()
                .filter(|e| e.tenant == stream.tenant && e.device == stream.device)
                .map(|e| e.request)
                .collect();
            assert_eq!(stream.requests, from_schedule);
        }
    }

    #[test]
    fn behaviour_signatures_hold() {
        let w = GatewayTrafficWorkload::generate(&specs(), [11u8; 32]);
        for device in w.tenants.iter().flat_map(|t| &t.devices) {
            match device.behaviour {
                DeviceBehaviour::Honest => assert!(device
                    .requests
                    .iter()
                    .all(|r| r.iter().all(|s| (0.0..=1.0).contains(s)))),
                DeviceBehaviour::Spiky => {
                    assert!(device.requests.iter().any(|r| r.iter().any(|s| *s > 1.0)))
                }
                DeviceBehaviour::Fabricating => {
                    let first = device.requests[0][0];
                    assert!(device
                        .requests
                        .iter()
                        .all(|r| r.iter().all(|s| (*s - first).abs() < 1e-12)));
                }
            }
        }
        // All keyboard-tenant devices were forced honest.
        assert!(w.tenants[1].devices.iter().all(DeviceTraffic::is_honest));
        assert!(w.honest_requests() >= 4 * 2);
    }
}
