//! Geotagged photo contributions for the photos-for-maps scenario.
//!
//! Honest contributors photograph places they actually visited (their GPS
//! track passes near the claimed location, and the photo comes from their
//! registered camera). Cheaters claim locations they never visited, replay
//! photos from other cameras, or strip their location history.

use glimmer_crypto::drbg::Drbg;

/// How a photo contribution was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhotoKind {
    /// Taken at the claimed location by the registered camera.
    Honest,
    /// Claims a location the user never visited.
    SpoofedLocation,
    /// Photo from an unregistered camera (e.g., scraped from the web).
    WrongCamera,
    /// No location history available to corroborate the claim.
    MissingTrack,
}

/// One photo contribution plus the private context needed to validate it.
#[derive(Debug, Clone, PartialEq)]
pub struct PhotoContribution {
    /// Contributor's client id.
    pub client_id: u64,
    /// Ground-truth kind (known to the experiment only).
    pub kind: PhotoKind,
    /// Hash of the photo contents.
    pub photo_hash: [u8; 32],
    /// Claimed latitude.
    pub claimed_lat: f64,
    /// Claimed longitude.
    pub claimed_lon: f64,
    /// Private GPS track `(lat, lon, unix_seconds)`.
    pub gps_track: Vec<(f64, f64, u64)>,
    /// Private camera fingerprint of the capturing device.
    pub camera_fingerprint: [u8; 32],
}

/// Generator for photo-contribution workloads.
#[derive(Debug, Clone)]
pub struct PhotoWorkload {
    /// Generated contributions.
    pub contributions: Vec<PhotoContribution>,
    /// The camera fingerprint registered with the service for each client.
    pub registered_camera: [u8; 32],
}

/// A downtown-Toronto point of interest used as the map location.
pub const POI: (f64, f64) = (43.6426, -79.3871);

impl PhotoWorkload {
    /// Generates `count` contributions; `cheater_fraction` of them are split
    /// evenly across the three cheating kinds.
    #[must_use]
    pub fn generate(count: usize, cheater_fraction: f64, seed: [u8; 32]) -> Self {
        let mut rng = Drbg::from_seed(seed);
        let registered_camera = {
            let mut c = [0u8; 32];
            rng.fill_bytes(&mut c);
            c
        };
        let mut contributions = Vec::with_capacity(count);
        for client_id in 0..count {
            let kind = if rng.next_bool(cheater_fraction) {
                match rng.gen_range(3) {
                    0 => PhotoKind::SpoofedLocation,
                    1 => PhotoKind::WrongCamera,
                    _ => PhotoKind::MissingTrack,
                }
            } else {
                PhotoKind::Honest
            };

            let jitter = |rng: &mut Drbg, scale: f64| (rng.next_f64() - 0.5) * scale;
            let claimed_lat = POI.0 + jitter(&mut rng, 0.002);
            let claimed_lon = POI.1 + jitter(&mut rng, 0.002);

            // Honest users (and wrong-camera cheaters, who did visit) have a
            // track that passes near the claimed location; location spoofers
            // have tracks far away; missing-track cheaters have none.
            let gps_track = match kind {
                PhotoKind::Honest | PhotoKind::WrongCamera => (0..10)
                    .map(|i| {
                        (
                            claimed_lat + jitter(&mut rng, 0.004),
                            claimed_lon + jitter(&mut rng, 0.004),
                            1_700_000_000 + i * 300,
                        )
                    })
                    .collect(),
                PhotoKind::SpoofedLocation => (0..10)
                    .map(|i| {
                        (
                            48.85 + jitter(&mut rng, 0.01),
                            2.29 + jitter(&mut rng, 0.01),
                            1_700_000_000 + i * 300,
                        )
                    })
                    .collect(),
                PhotoKind::MissingTrack => Vec::new(),
            };

            let camera_fingerprint = if kind == PhotoKind::WrongCamera {
                let mut c = [0u8; 32];
                rng.fill_bytes(&mut c);
                c
            } else {
                registered_camera
            };

            let mut photo_hash = [0u8; 32];
            rng.fill_bytes(&mut photo_hash);

            contributions.push(PhotoContribution {
                client_id: client_id as u64,
                kind,
                photo_hash,
                claimed_lat,
                claimed_lon,
                gps_track,
                camera_fingerprint,
            });
        }
        PhotoWorkload {
            contributions,
            registered_camera,
        }
    }

    /// Number of honest contributions.
    #[must_use]
    pub fn honest_count(&self) -> usize {
        self.contributions
            .iter()
            .filter(|c| c.kind == PhotoKind::Honest)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_mixed() {
        let a = PhotoWorkload::generate(100, 0.4, [8u8; 32]);
        let b = PhotoWorkload::generate(100, 0.4, [8u8; 32]);
        assert_eq!(a.contributions, b.contributions);
        assert_eq!(a.contributions.len(), 100);
        let honest = a.honest_count();
        assert!(honest > 40 && honest < 80, "honest {honest}");
        // Cheater kinds all appear.
        for kind in [
            PhotoKind::SpoofedLocation,
            PhotoKind::WrongCamera,
            PhotoKind::MissingTrack,
        ] {
            assert!(a.contributions.iter().any(|c| c.kind == kind), "{kind:?}");
        }
    }

    #[test]
    fn ground_truth_structure() {
        let w = PhotoWorkload::generate(60, 0.5, [9u8; 32]);
        for c in &w.contributions {
            match c.kind {
                PhotoKind::Honest => {
                    assert_eq!(c.camera_fingerprint, w.registered_camera);
                    assert!(!c.gps_track.is_empty());
                    // Track points are near the claim (< ~1km in degrees).
                    assert!(c
                        .gps_track
                        .iter()
                        .all(|(lat, _, _)| (lat - c.claimed_lat).abs() < 0.01));
                }
                PhotoKind::SpoofedLocation => {
                    assert!(c
                        .gps_track
                        .iter()
                        .all(|(lat, _, _)| (lat - c.claimed_lat).abs() > 1.0));
                }
                PhotoKind::WrongCamera => {
                    assert_ne!(c.camera_fingerprint, w.registered_camera);
                }
                PhotoKind::MissingTrack => assert!(c.gps_track.is_empty()),
            }
        }
    }

    #[test]
    fn all_honest_when_fraction_zero() {
        let w = PhotoWorkload::generate(20, 0.0, [10u8; 32]);
        assert_eq!(w.honest_count(), 20);
    }
}
