//! Deterministic synthetic workload generators.
//!
//! The paper has no datasets: its scenarios are a predictive keyboard with
//! trending topics (Figure 1), crowd-sourced photos for maps, bot detection
//! over interaction signals (Section 4.1), and IoT telemetry (Section 4.2).
//! This crate generates the statistical structure those experiments need —
//! reproducibly, from a single seed — so every number in EXPERIMENTS.md can
//! be regenerated.
//!
//! * [`keyboard`] — per-user keyboard traces over a Zipf-distributed
//!   vocabulary with an injected trending phrase, plus the shared model
//!   schema.
//! * [`adversary`] — adversary mixes: which clients are malicious and which
//!   poisoning strategy they use.
//! * [`botsignals`] — human and bot interaction-signal sessions.
//! * [`photos`] — geotagged photo contributions with honest and spoofed GPS
//!   tracks.
//! * [`iot`] — sensor streams from well-behaved and faulty/malicious devices.
//! * [`gateway`] — interleaved multi-tenant traffic for the gateway serving
//!   experiments.
//! * [`replay`] — recorded-traffic scenario files (compact line format,
//!   deterministic generator) and the chunked parallel loader that replays
//!   them at full hardware speed.

// `deny`, not `forbid`: the replay loader's raw `mmap`/`munmap` syscall
// shim ([`replay::MmapSource`]) is necessarily `unsafe` and carries a
// scoped `allow` with its invariants documented; everything else stays
// safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod botsignals;
pub mod gateway;
pub mod iot;
pub mod keyboard;
pub mod photos;
pub mod replay;

pub use adversary::{AdversaryMix, ClientRole};
pub use botsignals::{BotSignalWorkload, Session, SessionKind};
pub use gateway::{
    DeviceTraffic, GatewayTrafficWorkload, TenantTraffic, TenantTrafficSpec, TrafficEvent,
};
pub use iot::{IotWorkload, SensorTrace};
pub use keyboard::{KeyboardWorkload, KeyboardWorkloadConfig, UserTrace};
pub use photos::{PhotoContribution, PhotoWorkload};
pub use replay::{
    ChunkLoad, ChunkSource, ChunkSpan, FileSource, ParseSummary, RecordError, ReplayRecord,
    ScenarioFileInfo, ScenarioMix, ScenarioSpec,
};
