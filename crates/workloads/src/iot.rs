//! IoT sensor streams for the glimmer-as-a-service scenario (Section 4.2).
//!
//! Devices report normalized sensor readings in `[0, 1]`. Well-behaved
//! devices produce smooth series around a per-device baseline; faulty or
//! malicious devices inject out-of-range spikes or constant fabricated
//! values.

use glimmer_crypto::drbg::Drbg;

/// How a device behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceBehaviour {
    /// Reports genuine, in-range readings.
    Honest,
    /// Injects out-of-range spikes (broken sensor or crude attack).
    Spiky,
    /// Reports a constant fabricated value.
    Fabricating,
}

/// One device's reported series.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorTrace {
    /// Device identifier.
    pub device_id: u64,
    /// Ground-truth behaviour.
    pub behaviour: DeviceBehaviour,
    /// Reported samples.
    pub samples: Vec<f64>,
}

/// Generator for IoT workloads.
#[derive(Debug, Clone)]
pub struct IotWorkload {
    /// Generated device traces.
    pub devices: Vec<SensorTrace>,
}

impl IotWorkload {
    /// Generates `devices` traces of `samples_per_device` readings each, with
    /// the given fraction of misbehaving devices.
    #[must_use]
    pub fn generate(
        devices: usize,
        samples_per_device: usize,
        misbehaving_fraction: f64,
        seed: [u8; 32],
    ) -> Self {
        let mut rng = Drbg::from_seed(seed);
        let mut out = Vec::with_capacity(devices);
        for device_id in 0..devices {
            let behaviour = if rng.next_bool(misbehaving_fraction) {
                if rng.next_bool(0.5) {
                    DeviceBehaviour::Spiky
                } else {
                    DeviceBehaviour::Fabricating
                }
            } else {
                DeviceBehaviour::Honest
            };
            let baseline = 0.3 + rng.next_f64() * 0.4;
            let fabricated = rng.next_f64();
            let samples = (0..samples_per_device)
                .map(|i| match behaviour {
                    DeviceBehaviour::Honest => {
                        (baseline + rng.next_gaussian() * 0.05).clamp(0.0, 1.0)
                    }
                    DeviceBehaviour::Spiky => {
                        if i % 7 == 3 {
                            5.0 + rng.next_f64() * 10.0
                        } else {
                            (baseline + rng.next_gaussian() * 0.05).clamp(0.0, 1.0)
                        }
                    }
                    DeviceBehaviour::Fabricating => fabricated,
                })
                .collect();
            out.push(SensorTrace {
                device_id: device_id as u64,
                behaviour,
                samples,
            });
        }
        IotWorkload { devices: out }
    }

    /// Number of honest devices.
    #[must_use]
    pub fn honest_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.behaviour == DeviceBehaviour::Honest)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_structure() {
        let a = IotWorkload::generate(40, 21, 0.3, [11u8; 32]);
        let b = IotWorkload::generate(40, 21, 0.3, [11u8; 32]);
        assert_eq!(a.devices, b.devices);
        assert_eq!(a.devices.len(), 40);
        assert!(a.devices.iter().all(|d| d.samples.len() == 21));
        let honest = a.honest_count();
        assert!(honest > 15 && honest < 40, "honest {honest}");
    }

    #[test]
    fn behaviour_signatures() {
        let w = IotWorkload::generate(60, 21, 0.5, [12u8; 32]);
        for d in &w.devices {
            match d.behaviour {
                DeviceBehaviour::Honest => {
                    assert!(d.samples.iter().all(|s| (0.0..=1.0).contains(s)));
                }
                DeviceBehaviour::Spiky => {
                    assert!(d.samples.iter().any(|s| *s > 1.0));
                }
                DeviceBehaviour::Fabricating => {
                    let first = d.samples[0];
                    assert!(d.samples.iter().all(|s| (*s - first).abs() < 1e-12));
                }
            }
        }
    }

    #[test]
    fn all_honest_when_fraction_zero() {
        let w = IotWorkload::generate(10, 5, 0.0, [13u8; 32]);
        assert_eq!(w.honest_count(), 10);
    }
}
