//! Keyboard-trace generation for the predictive-keyboard scenario (Figure 1).
//!
//! Users type sentences drawn from a set of templates over a Zipf-distributed
//! vocabulary. A configurable fraction of users also types a *trending
//! phrase* ("donald trump" in the paper's example), which is what the shared
//! model is supposed to learn and what no single honest user's model can
//! establish alone.

use glimmer_crypto::drbg::Drbg;
use glimmer_federated::{ModelSchema, Vocabulary};

/// Configuration for the keyboard workload.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyboardWorkloadConfig {
    /// Number of users (clients).
    pub users: usize,
    /// Number of distinct filler words in the vocabulary.
    pub vocab_size: usize,
    /// Number of sentences each user types.
    pub sentences_per_user: usize,
    /// Average words per sentence.
    pub words_per_sentence: usize,
    /// Fraction of users who type the trending phrase.
    pub trending_fraction: f64,
    /// Zipf exponent for filler-word frequencies.
    pub zipf_exponent: f64,
    /// Number of the most frequent words tracked by the model schema.
    pub schema_words: usize,
}

impl Default for KeyboardWorkloadConfig {
    fn default() -> Self {
        KeyboardWorkloadConfig {
            users: 64,
            vocab_size: 200,
            sentences_per_user: 30,
            words_per_sentence: 8,
            trending_fraction: 0.3,
            zipf_exponent: 1.1,
            schema_words: 24,
        }
    }
}

/// One user's keyboard trace.
#[derive(Debug, Clone, PartialEq)]
pub struct UserTrace {
    /// Client identifier.
    pub client_id: u64,
    /// Tokenized sentences (word ids in the shared vocabulary).
    pub sentences: Vec<Vec<u32>>,
    /// Whether this user typed the trending phrase.
    pub typed_trending: bool,
}

/// The generated workload: vocabulary, schema, per-user traces, and held-out
/// test sentences.
#[derive(Debug, Clone)]
pub struct KeyboardWorkload {
    /// The shared vocabulary published by the service.
    pub vocab: Vocabulary,
    /// The parameter schema published by the service.
    pub schema: ModelSchema,
    /// Per-user traces.
    pub users: Vec<UserTrace>,
    /// Held-out test sentences containing the trending phrase.
    pub test_sentences: Vec<Vec<u32>>,
    /// The trending bigram as `(prev, next)` word ids.
    pub trending_bigram: (u32, u32),
}

/// The trending phrase every experiment looks for.
pub const TRENDING_PREV: &str = "donald";
/// Second half of the trending phrase.
pub const TRENDING_NEXT: &str = "trump";

impl KeyboardWorkload {
    /// Generates a workload from a config and seed.
    #[must_use]
    pub fn generate(config: &KeyboardWorkloadConfig, seed: [u8; 32]) -> Self {
        let mut rng = Drbg::from_seed(seed);

        // Vocabulary: fixed phrase words + filler words w0..wN.
        let mut words: Vec<String> = vec![
            "i'm".into(),
            "voting".into(),
            "for".into(),
            TRENDING_PREV.into(),
            TRENDING_NEXT.into(),
            "don't".into(),
            "like".into(),
            "the".into(),
            "world".into(),
            "series".into(),
        ];
        for i in 0..config.vocab_size {
            words.push(format!("w{i}"));
        }
        let vocab = Vocabulary::new(words.iter().map(String::as_str));

        // Schema: all ordered pairs over the most frequent words (the fixed
        // phrase words plus the first filler words).
        let mut schema_words: Vec<&str> = words
            .iter()
            .take(config.schema_words.max(10))
            .map(String::as_str)
            .collect();
        schema_words.truncate(config.schema_words.max(10));
        let schema = ModelSchema::dense(vocab.clone(), &schema_words);

        // Zipf sampling weights for filler words.
        let zipf: Vec<f64> = (1..=config.vocab_size.max(1))
            .map(|r| 1.0 / (r as f64).powf(config.zipf_exponent))
            .collect();
        let zipf_total: f64 = zipf.iter().sum();

        let mut users = Vec::with_capacity(config.users);
        for client_id in 0..config.users {
            let mut user_rng = rng.fork(&format!("user-{client_id}"));
            let typed_trending = user_rng.next_bool(config.trending_fraction);
            let mut sentences = Vec::with_capacity(config.sentences_per_user);
            for s in 0..config.sentences_per_user {
                let sentence = if typed_trending && s % 5 == 0 {
                    // A trending-phrase sentence, as in Figure 1a.
                    if user_rng.next_bool(0.5) {
                        format!("i'm voting for {TRENDING_PREV} {TRENDING_NEXT}")
                    } else {
                        format!("don't like {TRENDING_PREV} {TRENDING_NEXT}")
                    }
                } else {
                    // Filler sentence from the Zipf vocabulary.
                    let len = 2 + user_rng.gen_range(config.words_per_sentence.max(3) as u64 - 2)
                        as usize;
                    let mut parts = Vec::with_capacity(len);
                    for _ in 0..len {
                        let mut pick = user_rng.next_f64() * zipf_total;
                        let mut idx = 0usize;
                        for (i, w) in zipf.iter().enumerate() {
                            if pick < *w {
                                idx = i;
                                break;
                            }
                            pick -= w;
                            idx = i;
                        }
                        parts.push(format!("w{idx}"));
                    }
                    parts.join(" ")
                };
                sentences.push(vocab.tokenize(&sentence));
            }
            users.push(UserTrace {
                client_id: client_id as u64,
                sentences,
                typed_trending,
            });
        }

        let test_sentences = vec![
            vocab.tokenize(&format!("i'm voting for {TRENDING_PREV} {TRENDING_NEXT}")),
            vocab.tokenize(&format!("don't like {TRENDING_PREV} {TRENDING_NEXT}")),
        ];
        let trending_bigram = (vocab.id(TRENDING_PREV), vocab.id(TRENDING_NEXT));

        KeyboardWorkload {
            vocab,
            schema,
            users,
            test_sentences,
            trending_bigram,
        }
    }

    /// Client ids of all users.
    #[must_use]
    pub fn client_ids(&self) -> Vec<u64> {
        self.users.iter().map(|u| u.client_id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimmer_federated::aggregation::aggregate_mean;
    use glimmer_federated::metrics::top_k_accuracy;
    use glimmer_federated::trainer::train_local_model;

    fn small_config() -> KeyboardWorkloadConfig {
        KeyboardWorkloadConfig {
            users: 24,
            vocab_size: 50,
            sentences_per_user: 20,
            ..KeyboardWorkloadConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = KeyboardWorkload::generate(&small_config(), [1u8; 32]);
        let b = KeyboardWorkload::generate(&small_config(), [1u8; 32]);
        assert_eq!(a.users, b.users);
        let c = KeyboardWorkload::generate(&small_config(), [2u8; 32]);
        assert_ne!(a.users, c.users);
    }

    #[test]
    fn structure_matches_config() {
        let config = small_config();
        let w = KeyboardWorkload::generate(&config, [3u8; 32]);
        assert_eq!(w.users.len(), config.users);
        assert!(w
            .users
            .iter()
            .all(|u| u.sentences.len() == config.sentences_per_user));
        assert_eq!(w.client_ids().len(), config.users);
        // Some but not all users type the trending phrase.
        let trending = w.users.iter().filter(|u| u.typed_trending).count();
        assert!(
            trending > 0 && trending < config.users,
            "trending {trending}"
        );
        // The trending bigram is tracked by the schema.
        assert!(w
            .schema
            .slot_of(w.trending_bigram.0, w.trending_bigram.1)
            .is_some());
        assert!(!w.test_sentences.is_empty());
    }

    #[test]
    fn federated_model_learns_the_trending_phrase() {
        // The Figure 1a/1b claim: the aggregated model predicts "trump" after
        // "donald" even though most individual users never typed it.
        let w = KeyboardWorkload::generate(&small_config(), [4u8; 32]);
        let locals: Vec<_> = w
            .users
            .iter()
            .map(|u| train_local_model(&w.schema, &u.sentences).unwrap().0)
            .collect();
        let global = aggregate_mean(&w.schema, &locals).unwrap();
        let predictions = global.predict_next(&w.schema, w.trending_bigram.0, 1);
        assert!(!predictions.is_empty());
        assert_eq!(predictions[0].0, w.trending_bigram.1);
        let (acc, cases) = top_k_accuracy(&w.schema, &global, &w.test_sentences, 3);
        assert!(cases > 0);
        assert!(acc > 0.5, "top-3 accuracy {acc}");

        // An individual non-trending user's model does not know the phrase.
        let non_trending = w.users.iter().position(|u| !u.typed_trending).unwrap();
        let solo = aggregate_mean(&w.schema, &locals[non_trending..=non_trending]).unwrap();
        assert!(solo
            .predict_next(&w.schema, w.trending_bigram.0, 1)
            .is_empty());
    }
}
