//! Adversary mixes: which clients misbehave and how.
//!
//! Experiments E3/E4 sweep the fraction of malicious clients and the
//! poisoning strategy (Figure 1d's out-of-range value, the stealthier
//! in-range bias, and fully fabricated models).

use glimmer_crypto::drbg::Drbg;
use glimmer_federated::attacks::PoisonStrategy;

/// The role assigned to one client in an experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientRole {
    /// Trains and submits honestly.
    Honest,
    /// Applies the given poisoning strategy before submission.
    Malicious(PoisonStrategy),
}

impl ClientRole {
    /// True for malicious roles.
    #[must_use]
    pub fn is_malicious(&self) -> bool {
        matches!(self, ClientRole::Malicious(_))
    }
}

/// An assignment of roles to clients.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryMix {
    roles: Vec<ClientRole>,
}

impl AdversaryMix {
    /// Assigns `malicious_fraction` of the `clients` to be malicious with the
    /// given strategy, chosen pseudo-randomly from `seed`.
    #[must_use]
    pub fn assign(
        clients: usize,
        malicious_fraction: f64,
        strategy: &PoisonStrategy,
        seed: [u8; 32],
    ) -> Self {
        let mut rng = Drbg::from_seed(seed);
        let malicious_count =
            ((clients as f64) * malicious_fraction.clamp(0.0, 1.0)).round() as usize;
        let mut indices: Vec<usize> = (0..clients).collect();
        rng.shuffle(&mut indices);
        let malicious: std::collections::HashSet<usize> =
            indices.into_iter().take(malicious_count).collect();
        let roles = (0..clients)
            .map(|i| {
                if malicious.contains(&i) {
                    ClientRole::Malicious(strategy.clone())
                } else {
                    ClientRole::Honest
                }
            })
            .collect();
        AdversaryMix { roles }
    }

    /// An all-honest mix.
    #[must_use]
    pub fn all_honest(clients: usize) -> Self {
        AdversaryMix {
            roles: vec![ClientRole::Honest; clients],
        }
    }

    /// The role of client `i`.
    #[must_use]
    pub fn role(&self, i: usize) -> &ClientRole {
        &self.roles[i]
    }

    /// All roles in client order.
    #[must_use]
    pub fn roles(&self) -> &[ClientRole] {
        &self.roles
    }

    /// Number of malicious clients.
    #[must_use]
    pub fn malicious_count(&self) -> usize {
        self.roles.iter().filter(|r| r.is_malicious()).count()
    }

    /// Number of clients in total.
    #[must_use]
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// True when no clients are assigned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }
}

/// The standard poisoning strategies swept by the experiments.
#[must_use]
pub fn standard_strategies(target_slot: usize) -> Vec<(&'static str, PoisonStrategy)> {
    vec![
        (
            "out-of-range-538",
            PoisonStrategy::OutOfRange {
                slot: target_slot,
                value: 538.0,
            },
        ),
        (
            "in-range-bias",
            PoisonStrategy::InRangeBias { slot: target_slot },
        ),
        ("fabricated", PoisonStrategy::Fabricated { value: 0.9 }),
        ("scaled-10x", PoisonStrategy::Scaled { factor: 10.0 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_respects_fraction() {
        let strategy = PoisonStrategy::Fabricated { value: 0.9 };
        let mix = AdversaryMix::assign(100, 0.25, &strategy, [1u8; 32]);
        assert_eq!(mix.len(), 100);
        assert!(!mix.is_empty());
        assert_eq!(mix.malicious_count(), 25);
        assert_eq!(mix.roles().len(), 100);

        let none = AdversaryMix::assign(10, 0.0, &strategy, [1u8; 32]);
        assert_eq!(none.malicious_count(), 0);
        let all = AdversaryMix::assign(10, 1.0, &strategy, [1u8; 32]);
        assert_eq!(all.malicious_count(), 10);
        // Out-of-range fractions are clamped.
        let clamped = AdversaryMix::assign(10, 7.0, &strategy, [1u8; 32]);
        assert_eq!(clamped.malicious_count(), 10);
    }

    #[test]
    fn assignment_is_deterministic_and_seed_sensitive() {
        let strategy = PoisonStrategy::Scaled { factor: 2.0 };
        let a = AdversaryMix::assign(50, 0.3, &strategy, [2u8; 32]);
        let b = AdversaryMix::assign(50, 0.3, &strategy, [2u8; 32]);
        assert_eq!(a, b);
        let c = AdversaryMix::assign(50, 0.3, &strategy, [3u8; 32]);
        assert_ne!(a, c);
    }

    #[test]
    fn roles_and_strategies() {
        let mix = AdversaryMix::all_honest(5);
        assert_eq!(mix.malicious_count(), 0);
        assert!(!mix.role(0).is_malicious());

        let strategies = standard_strategies(7);
        assert_eq!(strategies.len(), 4);
        assert!(strategies
            .iter()
            .any(|(name, _)| *name == "out-of-range-538"));
        for (_, s) in &strategies {
            let mix = AdversaryMix::assign(4, 0.5, s, [4u8; 32]);
            assert_eq!(mix.malicious_count(), 2);
            let malicious_role = mix.roles().iter().find(|r| r.is_malicious()).unwrap();
            assert!(matches!(malicious_role, ClientRole::Malicious(strategy) if strategy == s));
        }
    }
}
