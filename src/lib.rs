//! Umbrella crate for the Glimmers reproduction.
//!
//! Re-exports every workspace crate under a stable prefix so examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! * [`crypto`] — the from-scratch cryptographic substrate.
//! * [`sgx_sim`] — the SGX enclave simulator.
//! * [`wire`] — the public wire format.
//! * [`federated`] — the federated-learning substrate.
//! * [`core`] — the Glimmer itself (validation, blinding, signing, enclave
//!   program, attested channels, auditor, glimmer-as-a-service).
//! * [`services`] — the service-side components.
//! * [`workloads`] — deterministic synthetic workloads.
//! * [`gateway`] — the sharded, multi-tenant enclave-pool server for
//!   glimmer-as-a-service traffic.
//!
//! See `README.md` for a workspace tour, build/test/bench instructions, and
//! the gateway serving architecture; the experiment definitions (E1-E11)
//! live in `glimmer_bench`'s crate docs.

pub use glimmer_core as core;
pub use glimmer_crypto as crypto;
pub use glimmer_federated as federated;
pub use glimmer_gateway as gateway;
pub use glimmer_services as services;
pub use glimmer_wire as wire;
pub use glimmer_workloads as workloads;
pub use sgx_sim;
