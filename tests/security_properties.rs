//! Integration tests for the security properties the paper claims:
//! input confidentiality, input integrity, and the attestation trust chain.

use glimmers::core::blinding::BlindingService;
use glimmers::core::host::{GlimmerClient, GlimmerDescriptor};
use glimmers::core::protocol::{Contribution, ContributionPayload, PrivateData, ProcessResponse};
use glimmers::core::signing::ServiceKeyMaterial;
use glimmers::crypto::drbg::Drbg;
use glimmers::federated::fixed::encode_weights;
use glimmers::federated::{ModelSchema, Vocabulary};
use glimmers::services::keyboard::{KeyboardService, KeyboardServiceConfig};
use glimmers::services::ServiceError;
use glimmers::sgx_sim::{AttestationService, PlatformConfig};

const SEED: [u8; 32] = [200u8; 32];

fn small_schema() -> ModelSchema {
    let vocab = Vocabulary::new(["a", "b", "c", "d"]);
    ModelSchema::dense(vocab, &["a", "b", "c", "d"])
}

/// Input integrity: the host cannot forge an endorsement for a contribution
/// the Glimmer never validated, nor tamper with an endorsed one.
#[test]
fn endorsements_cannot_be_forged_or_tampered() {
    let schema = small_schema();
    let mut rng = Drbg::from_seed(SEED);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let mut glimmer = GlimmerClient::new(
        GlimmerDescriptor::keyboard_range_only(),
        PlatformConfig::default(),
        &mut rng,
    )
    .unwrap();
    glimmer
        .install_service_key(&material.secret_bytes())
        .unwrap();
    let masks = BlindingService::new([5u8; 32]).zero_sum_masks(0, &[0, 1], schema.dimension());
    glimmer.install_mask(&masks[0]).unwrap();

    let contribution = Contribution {
        app_id: "nextwordpredictive.com".to_string(),
        client_id: 0,
        round: 0,
        payload: ContributionPayload::ModelUpdate {
            weights: vec![0.25; schema.dimension()],
        },
    };
    let ProcessResponse::Endorsed(genuine) =
        glimmer.process(contribution, PrivateData::None).unwrap()
    else {
        panic!("expected endorsement");
    };

    let mut service = KeyboardService::new(
        KeyboardServiceConfig::default(),
        schema.clone(),
        Some(material.verifier()),
    );
    // The genuine endorsement is accepted.
    service.submit(&genuine).unwrap();

    // Tampering with the released payload breaks the endorsement.
    let mut tampered = genuine.clone();
    tampered.client_id = 7;
    tampered.released_payload[0] ^= 0xFF;
    assert_eq!(service.submit(&tampered), Err(ServiceError::BadEndorsement));

    // A forged endorsement (host never went through the Glimmer) with an
    // arbitrary signature is rejected.
    let mut forged = genuine.clone();
    forged.client_id = 8;
    forged.released_payload = {
        let mut enc = glimmers::wire::Encoder::new();
        enc.put_u64_vec(&encode_weights(&vec![538.0; schema.dimension()]));
        enc.into_bytes()
    };
    assert_eq!(service.submit(&forged), Err(ServiceError::BadEndorsement));
}

/// Input confidentiality: what leaves the Glimmer for a private payload is
/// blinded — the raw fixed-point weights never appear in the released bytes,
/// and an unblinded release is impossible because no mask means no release.
#[test]
fn private_contributions_never_leave_unblinded() {
    let schema = small_schema();
    let mut rng = Drbg::from_seed(SEED);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let mut glimmer = GlimmerClient::new(
        GlimmerDescriptor::keyboard_range_only(),
        PlatformConfig::default(),
        &mut rng,
    )
    .unwrap();
    glimmer
        .install_service_key(&material.secret_bytes())
        .unwrap();

    let weights = vec![0.625; schema.dimension()];
    let contribution = Contribution {
        app_id: "nextwordpredictive.com".to_string(),
        client_id: 0,
        round: 0,
        payload: ContributionPayload::ModelUpdate {
            weights: weights.clone(),
        },
    };
    // Without a blinding mask the Glimmer refuses to release anything.
    let response = glimmer
        .process(contribution.clone(), PrivateData::None)
        .unwrap();
    assert!(
        matches!(response, ProcessResponse::Rejected { ref reason } if reason.contains("mask"))
    );

    // With a mask, the released payload is blinded: the encoding of the raw
    // weights does not occur anywhere in the released bytes.
    let masks = BlindingService::new([6u8; 32]).zero_sum_masks(0, &[0, 1], schema.dimension());
    glimmer.install_mask(&masks[0]).unwrap();
    let ProcessResponse::Endorsed(endorsed) =
        glimmer.process(contribution, PrivateData::None).unwrap()
    else {
        panic!("expected endorsement");
    };
    assert!(endorsed.blinded);
    let raw_encoding = encode_weights(&weights);
    let raw_bytes: Vec<u8> = raw_encoding.iter().flat_map(|v| v.to_le_bytes()).collect();
    assert!(!endorsed
        .released_payload
        .windows(raw_bytes.len().min(8))
        .any(|w| w == &raw_bytes[..raw_bytes.len().min(8)]));
}

/// The attestation trust chain: the service only talks to approved Glimmer
/// measurements on provisioned, non-revoked platforms.
#[test]
fn attestation_chain_rejects_rogue_enclaves_and_revoked_platforms() {
    let mut rng = Drbg::from_seed(SEED);
    let mut avs = AttestationService::new([7u8; 32]);
    let service_key = glimmers::crypto::schnorr::SigningKey::generate(
        glimmers::crypto::dh::DhGroup::default_group(),
        &mut rng,
    )
    .unwrap();
    let approved_descriptor =
        GlimmerDescriptor::bot_detection_default(service_key.verifying_key().to_bytes(), 8);
    let approved_measurement = approved_descriptor.measurement();

    // A rogue enclave (different descriptor → different measurement) attests
    // fine but the service refuses the channel.
    let rogue_descriptor = GlimmerDescriptor::keyboard_default();
    let mut rogue =
        GlimmerClient::new(rogue_descriptor, PlatformConfig::default(), &mut rng).unwrap();
    rogue.provision_platform(&mut avs);
    let rogue_offer = rogue.start_channel().unwrap();
    let mut service = glimmers::services::botdetect::BotDetectionService::new(
        glimmers::core::validation::BotDetectorSpec::example(),
        service_key,
        approved_measurement,
        rng.fork("svc"),
    );
    assert!(service.accept_channel(&rogue_offer, &avs).is_err());

    // The approved Glimmer succeeds — until its platform is revoked.
    let mut client =
        GlimmerClient::new(approved_descriptor, PlatformConfig::default(), &mut rng).unwrap();
    client.provision_platform(&mut avs);
    let offer = client.start_channel().unwrap();
    assert!(service.accept_channel(&offer, &avs).is_ok());

    avs.revoke(client.platform().id());
    let offer_after_revocation = client.start_channel().unwrap();
    assert!(service
        .accept_channel(&offer_after_revocation, &avs)
        .is_err());
}
