//! Cross-crate integration tests: the paper's scenarios exercised end to end
//! through the public API of the umbrella crate.

use glimmers::core::blinding::BlindingService;
use glimmers::core::host::{GlimmerClient, GlimmerDescriptor};
use glimmers::core::policy::{check_verifiability, PolicyLimits};
use glimmers::core::protocol::{Contribution, ContributionPayload, PrivateData, ProcessResponse};
use glimmers::core::remote::{IotDeviceSession, RemoteGlimmerHost};
use glimmers::core::signing::ServiceKeyMaterial;
use glimmers::core::validation::BotDetectorSpec;
use glimmers::crypto::dh::DhGroup;
use glimmers::crypto::drbg::Drbg;
use glimmers::crypto::schnorr::SigningKey;
use glimmers::federated::attacks::{apply_poison, PoisonStrategy};
use glimmers::federated::trainer::train_local_model;
use glimmers::services::botdetect::BotDetectionService;
use glimmers::services::iot::IotTelemetryService;
use glimmers::services::keyboard::{KeyboardService, KeyboardServiceConfig};
use glimmers::services::maps::MapsService;
use glimmers::sgx_sim::{AttestationService, PlatformConfig};
use glimmers::workloads::botsignals::{BotSignalWorkload, SessionKind};
use glimmers::workloads::iot::IotWorkload;
use glimmers::workloads::keyboard::{KeyboardWorkload, KeyboardWorkloadConfig};
use glimmers::workloads::photos::{PhotoKind, PhotoWorkload};

const SEED: [u8; 32] = [123u8; 32];

/// Figure 1 + Figures 2/3: the poisoning attack succeeds against the bare
/// secure-aggregation service and is stopped by the Glimmer.
#[test]
fn keyboard_poisoning_blocked_by_glimmer() {
    let users = 12usize;
    let workload = KeyboardWorkload::generate(
        &KeyboardWorkloadConfig {
            users,
            vocab_size: 40,
            sentences_per_user: 15,
            ..KeyboardWorkloadConfig::default()
        },
        SEED,
    );
    let schema = workload.schema.clone();
    let mut rng = Drbg::from_seed(SEED);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let blinding = BlindingService::new([1u8; 32]);
    let masks = blinding.zero_sum_masks(0, &workload.client_ids(), schema.dimension());
    let trending_slot = schema
        .slot_of(workload.trending_bigram.0, workload.trending_bigram.1)
        .unwrap();
    let attack = PoisonStrategy::OutOfRange {
        slot: trending_slot,
        value: 538.0,
    };

    let mut service = KeyboardService::new(
        KeyboardServiceConfig::default(),
        schema.clone(),
        Some(material.verifier()),
    );
    let mut accepted_clients = Vec::new();
    let mut rejected = 0usize;
    for (i, user) in workload.users.iter().enumerate() {
        let (honest, _) = train_local_model(&schema, &user.sentences).unwrap();
        let submitted = if i == 0 {
            apply_poison(&schema, &honest, &attack)
        } else {
            honest
        };
        let mut glimmer = GlimmerClient::new(
            GlimmerDescriptor::keyboard_default(),
            PlatformConfig::default(),
            &mut rng,
        )
        .unwrap();
        glimmer
            .install_service_key(&material.secret_bytes())
            .unwrap();
        glimmer.install_mask(&masks[i]).unwrap();
        let contribution = Contribution {
            app_id: "nextwordpredictive.com".to_string(),
            client_id: user.client_id,
            round: 0,
            payload: ContributionPayload::ModelUpdate {
                weights: submitted.weights,
            },
        };
        match glimmer
            .process(
                contribution,
                PrivateData::KeyboardLog {
                    sentences: user.sentences.clone(),
                },
            )
            .unwrap()
        {
            ProcessResponse::Endorsed(e) => {
                service.submit(&e).unwrap();
                accepted_clients.push(user.client_id);
            }
            ProcessResponse::Rejected { reason } => {
                assert!(reason.contains("538"), "unexpected reason: {reason}");
                rejected += 1;
            }
        }
    }
    assert_eq!(rejected, 1);
    let correction = blinding.dropout_correction(
        0,
        &workload.client_ids(),
        schema.dimension(),
        &accepted_clients,
    );
    service.apply_dropout_correction(&correction).unwrap();
    let outcome = service.finalize_round().unwrap();
    assert_eq!(outcome.accepted, users - 1);
    // Every aggregated parameter is back in the legal range and the trending
    // phrase is still learned.
    assert!(outcome
        .model
        .weights
        .iter()
        .all(|w| (0.0..=1.0).contains(w)));
    let prediction = outcome
        .model
        .predict_next(&schema, workload.trending_bigram.0, 1);
    assert_eq!(prediction[0].0, workload.trending_bigram.1);
}

/// Section 4.1: confidential bot detection end to end over a real attested
/// channel, with the auditor bounding output to one bit per challenge.
#[test]
fn bot_detection_end_to_end() {
    let mut rng = Drbg::from_seed(SEED);
    let mut avs = AttestationService::new([2u8; 32]);
    let service_key = SigningKey::generate(DhGroup::default_group(), &mut rng).unwrap();
    let descriptor =
        GlimmerDescriptor::bot_detection_default(service_key.verifying_key().to_bytes(), 40);
    let approved = descriptor.measurement();
    let mut service = BotDetectionService::new(
        BotDetectorSpec::example(),
        service_key,
        approved,
        rng.fork("svc"),
    );
    let mut client = GlimmerClient::new(descriptor, PlatformConfig::default(), &mut rng).unwrap();
    client.provision_platform(&mut avs);
    let offer = client.start_channel().unwrap();
    let (accept, mut session) = service.accept_channel(&offer, &avs).unwrap();
    client.complete_channel(&accept).unwrap();
    client
        .install_encrypted_predicate(&service.encrypted_detector(&session))
        .unwrap();

    let workload = BotSignalWorkload::generate(30, 0.5, SEED);
    let mut correct = 0usize;
    for s in &workload.sessions {
        let challenge = service.issue_challenge(&mut session);
        let frame = client
            .confidential_check(
                challenge,
                PrivateData::BotSignals {
                    signals: s.signals.clone(),
                },
            )
            .unwrap();
        let verdict = service.accept_verdict(&mut session, &frame).unwrap();
        if verdict == (s.kind == SessionKind::Human) {
            correct += 1;
        }
    }
    assert!(correct as f64 / 30.0 > 0.85, "accuracy {correct}/30");
    // The Glimmer's auditor has released exactly one bit per session.
    assert_eq!(client.status().unwrap().verdict_bits_released, 30);
}

/// Photos-for-maps: honest photos are endorsed, every class of cheater is
/// rejected inside the client.
#[test]
fn photos_for_maps_filters_cheaters() {
    let mut rng = Drbg::from_seed(SEED);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let workload = PhotoWorkload::generate(16, 0.5, SEED);
    let mut service = MapsService::new("crowdmaps.example", material.verifier());

    let mut honest_accepted = 0usize;
    let mut cheaters_rejected = 0usize;
    for photo in &workload.contributions {
        let mut glimmer = GlimmerClient::new(
            GlimmerDescriptor::maps_default(workload.registered_camera),
            PlatformConfig::default(),
            &mut rng,
        )
        .unwrap();
        glimmer
            .install_service_key(&material.secret_bytes())
            .unwrap();
        let contribution = Contribution {
            app_id: "crowdmaps.example".to_string(),
            client_id: photo.client_id,
            round: 0,
            payload: ContributionPayload::Photo {
                photo_hash: photo.photo_hash,
                claimed_lat: photo.claimed_lat,
                claimed_lon: photo.claimed_lon,
            },
        };
        let private = PrivateData::GpsTrack {
            points: photo.gps_track.clone(),
            camera_fingerprint: photo.camera_fingerprint,
        };
        match glimmer.process(contribution, private).unwrap() {
            ProcessResponse::Endorsed(e) => {
                service.submit(&e).unwrap();
                assert_eq!(photo.kind, PhotoKind::Honest);
                honest_accepted += 1;
            }
            ProcessResponse::Rejected { .. } => {
                assert_ne!(photo.kind, PhotoKind::Honest);
                cheaters_rejected += 1;
            }
        }
    }
    assert_eq!(honest_accepted, workload.honest_count());
    assert_eq!(
        cheaters_rejected,
        workload.contributions.len() - workload.honest_count()
    );
    assert_eq!(service.photos().len(), honest_accepted);
}

/// Section 4.2: IoT devices contribute through a remote Glimmer host without
/// the host ever seeing plaintext, and the telemetry service recovers exact
/// means over the endorsed devices.
#[test]
fn iot_remote_glimmer_end_to_end() {
    let samples = 8usize;
    let mut rng = Drbg::from_seed(SEED);
    let mut avs = AttestationService::new([3u8; 32]);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let mut host = RemoteGlimmerHost::new(
        GlimmerDescriptor::iot_default(Vec::new()),
        PlatformConfig::default(),
        &mut rng,
        &mut avs,
    )
    .unwrap();
    host.client_mut()
        .install_service_key(&material.secret_bytes())
        .unwrap();

    let workload = IotWorkload::generate(8, samples, 0.25, SEED);
    let device_ids: Vec<u64> = workload.devices.iter().map(|d| d.device_id).collect();
    let blinding = BlindingService::new([4u8; 32]);
    let masks = blinding.zero_sum_masks(0, &device_ids, samples);
    let mut service =
        IotTelemetryService::new("iot-telemetry.example", material.verifier(), samples);

    let mut present = Vec::new();
    for (i, device) in workload.devices.iter().enumerate() {
        host.client_mut().install_mask(&masks[i]).unwrap();
        let offer = host.attestation_offer().unwrap();
        let (accept, mut session) =
            IotDeviceSession::connect(&offer, &avs, &host.measurement(), &mut rng).unwrap();
        host.accept_device(&accept).unwrap();
        let contribution = Contribution {
            app_id: "iot-telemetry.example".to_string(),
            client_id: device.device_id,
            round: 0,
            payload: ContributionPayload::IotReadings {
                samples: device.samples.clone(),
            },
        };
        let request = session.encrypt_request(contribution, PrivateData::None);
        let response = session
            .decrypt_response(&host.relay(&request).unwrap())
            .unwrap();
        if let ProcessResponse::Endorsed(e) = response {
            service.submit(&e).unwrap();
            present.push(device.device_id);
        }
    }
    assert!(!present.is_empty());
    if present.len() < workload.devices.len() {
        let correction = blinding.dropout_correction(0, &device_ids, samples, &present);
        service.apply_dropout_correction(&correction).unwrap();
    }
    let summary = service.finalize_round().unwrap();
    assert_eq!(summary.devices, present.len());
    // Means over endorsed (honest-passing) devices are in the valid range.
    assert!(summary
        .mean_readings
        .iter()
        .all(|v| (0.0..=1.0).contains(v)));
}

/// Section 3: every shipped Glimmer flavour satisfies the structural
/// verifiability policy.
#[test]
fn shipped_glimmers_are_verifiable() {
    for descriptor in [
        GlimmerDescriptor::keyboard_default(),
        GlimmerDescriptor::keyboard_range_only(),
        GlimmerDescriptor::keyboard_retrain(),
        GlimmerDescriptor::maps_default([0u8; 32]),
        GlimmerDescriptor::bot_detection_default(vec![0u8; 129], 64),
        GlimmerDescriptor::iot_default(Vec::new()),
    ] {
        let violations = check_verifiability(&descriptor, PolicyLimits::default());
        assert!(violations.is_empty(), "{}: {violations:?}", descriptor.name);
    }
}
