//! Section 4.2: glimmer-as-a-service for devices without trusted hardware.
//!
//! Run with `cargo run --example iot_remote_glimmer`.

use glimmers::core::blinding::BlindingService;
use glimmers::core::host::GlimmerDescriptor;
use glimmers::core::protocol::{Contribution, ContributionPayload, PrivateData, ProcessResponse};
use glimmers::core::remote::{IotDeviceSession, RemoteGlimmerHost};
use glimmers::core::signing::ServiceKeyMaterial;
use glimmers::crypto::drbg::Drbg;
use glimmers::services::iot::IotTelemetryService;
use glimmers::sgx_sim::{AttestationService, PlatformConfig};
use glimmers::workloads::iot::IotWorkload;

fn main() {
    let samples = 12usize;
    let mut rng = Drbg::from_seed([41u8; 32]);
    let mut avs = AttestationService::new([42u8; 32]);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();

    // A neutral third party hosts the Glimmer.
    let mut host = RemoteGlimmerHost::new(
        GlimmerDescriptor::iot_default(Vec::new()),
        PlatformConfig::default(),
        &mut rng,
        &mut avs,
    )
    .unwrap();
    host.client_mut()
        .install_service_key(&material.secret_bytes())
        .unwrap();

    let workload = IotWorkload::generate(12, samples, 0.25, [43u8; 32]);
    let device_ids: Vec<u64> = workload.devices.iter().map(|d| d.device_id).collect();
    let blinding = BlindingService::new([44u8; 32]);
    let masks = blinding.zero_sum_masks(0, &device_ids, samples);
    let mut service =
        IotTelemetryService::new("iot-telemetry.example", material.verifier(), samples);

    let mut present: Vec<u64> = Vec::new();
    for (i, device) in workload.devices.iter().enumerate() {
        host.client_mut().install_mask(&masks[i]).unwrap();
        // The device verifies the host's attestation before sending anything.
        let offer = host.attestation_offer().unwrap();
        let approved = host.measurement();
        let (accept, mut session) =
            IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
        host.accept_device(&accept).unwrap();

        let contribution = Contribution {
            app_id: "iot-telemetry.example".to_string(),
            client_id: device.device_id,
            round: 0,
            payload: ContributionPayload::IotReadings {
                samples: device.samples.clone(),
            },
        };
        let request = session.encrypt_request(contribution, PrivateData::None);
        let response = session
            .decrypt_response(&host.relay(&request).unwrap())
            .unwrap();
        match response {
            ProcessResponse::Endorsed(endorsed) => {
                service
                    .submit(&endorsed)
                    .expect("service accepts endorsed readings");
                present.push(device.device_id);
            }
            ProcessResponse::Rejected { reason } => {
                println!(
                    "device {} rejected by remote Glimmer: {reason}",
                    device.device_id
                );
            }
        }
    }
    if present.len() < workload.devices.len() {
        let correction = blinding.dropout_correction(0, &device_ids, samples, &present);
        service.apply_dropout_correction(&correction).unwrap();
    }
    let summary = service.finalize_round().unwrap();
    println!(
        "devices endorsed={} of {}; mean of first 4 readings = {:?}",
        summary.devices,
        workload.devices.len(),
        &summary.mean_readings[..4.min(summary.mean_readings.len())]
    );
    println!(
        "remote host enclave cycles: {}",
        host.cost_report().total_cycles
    );
}
