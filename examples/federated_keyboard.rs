//! The paper's running example end to end: federated next-word prediction,
//! the Figure 1d poisoning attack, and the Glimmer defense.
//!
//! Run with `cargo run --example federated_keyboard`.

use glimmers::core::blinding::BlindingService;
use glimmers::core::host::{GlimmerClient, GlimmerDescriptor};
use glimmers::core::protocol::{Contribution, ContributionPayload, PrivateData, ProcessResponse};
use glimmers::core::signing::ServiceKeyMaterial;
use glimmers::crypto::drbg::Drbg;
use glimmers::federated::attacks::{apply_poison, PoisonStrategy};
use glimmers::federated::fixed::encode_weights;
use glimmers::federated::trainer::train_local_model;
use glimmers::services::keyboard::{KeyboardService, KeyboardServiceConfig};
use glimmers::sgx_sim::PlatformConfig;
use glimmers::wire::Encoder;
use glimmers::workloads::keyboard::{KeyboardWorkload, KeyboardWorkloadConfig};

fn main() {
    let seed = [7u8; 32];
    let users = 24usize;
    let workload = KeyboardWorkload::generate(
        &KeyboardWorkloadConfig {
            users,
            vocab_size: 50,
            sentences_per_user: 20,
            ..KeyboardWorkloadConfig::default()
        },
        seed,
    );
    let schema = workload.schema.clone();
    let mut rng = Drbg::from_seed(seed);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let blinding = BlindingService::new([3u8; 32]);
    let masks = blinding.zero_sum_masks(0, &workload.client_ids(), schema.dimension());
    let trending_slot = schema
        .slot_of(workload.trending_bigram.0, workload.trending_bigram.1)
        .unwrap();

    for protected in [false, true] {
        let mut service = KeyboardService::new(
            KeyboardServiceConfig {
                require_endorsements: protected,
                ..KeyboardServiceConfig::default()
            },
            schema.clone(),
            Some(material.verifier()),
        );
        let mut rejected = 0usize;
        let mut present: Vec<u64> = Vec::new();
        for (i, user) in workload.users.iter().enumerate() {
            let (honest, _) = train_local_model(&schema, &user.sentences).unwrap();
            // Client 0 is Alice, the attacker from Figure 1d.
            let submitted = if i == 0 {
                apply_poison(
                    &schema,
                    &honest,
                    &PoisonStrategy::OutOfRange {
                        slot: trending_slot,
                        value: 538.0,
                    },
                )
            } else {
                honest
            };
            if protected {
                let mut glimmer = GlimmerClient::new(
                    GlimmerDescriptor::keyboard_default(),
                    PlatformConfig::default(),
                    &mut rng,
                )
                .unwrap();
                glimmer
                    .install_service_key(&material.secret_bytes())
                    .unwrap();
                glimmer.install_mask(&masks[i]).unwrap();
                let contribution = Contribution {
                    app_id: "nextwordpredictive.com".to_string(),
                    client_id: user.client_id,
                    round: 0,
                    payload: ContributionPayload::ModelUpdate {
                        weights: submitted.weights.clone(),
                    },
                };
                match glimmer
                    .process(
                        contribution,
                        PrivateData::KeyboardLog {
                            sentences: user.sentences.clone(),
                        },
                    )
                    .unwrap()
                {
                    ProcessResponse::Endorsed(e) => {
                        if service.submit(&e).is_err() {
                            rejected += 1;
                        } else {
                            present.push(user.client_id);
                        }
                    }
                    ProcessResponse::Rejected { reason } => {
                        rejected += 1;
                        if i == 0 {
                            println!("[protected] Alice's contribution rejected: {reason}");
                        }
                    }
                }
            } else {
                let blinded = masks[i].blind(&encode_weights(&submitted.weights));
                let mut enc = Encoder::new();
                enc.put_u64_vec(&blinded);
                let endorsed = glimmers::core::protocol::EndorsedContribution {
                    app_id: "nextwordpredictive.com".to_string(),
                    client_id: user.client_id,
                    round: 0,
                    released_payload: enc.into_bytes(),
                    blinded: true,
                    signature: Vec::new(),
                };
                if service.submit(&endorsed).is_err() {
                    rejected += 1;
                } else {
                    present.push(user.client_id);
                }
            }
        }
        // The blinding service supplies the correction for clients whose
        // contributions were rejected, so the surviving masks still cancel.
        if rejected > 0 {
            let correction = blinding.dropout_correction(
                0,
                &workload.client_ids(),
                schema.dimension(),
                &present,
            );
            service.apply_dropout_correction(&correction).unwrap();
        }
        let outcome = service.finalize_round().unwrap();
        let prediction = outcome.model.predict_next_word(&schema, "donald", 1);
        let mode = if protected {
            "protected "
        } else {
            "unprotected"
        };
        println!(
            "[{mode}] accepted={} rejected={} prediction after 'donald' = {:?} (weight shown is the aggregated parameter)",
            outcome.accepted, rejected, prediction
        );
    }
}
