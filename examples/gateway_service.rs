//! Glimmer-as-a-service at scale: a multi-tenant gateway serving interleaved
//! traffic from two services through a pool of pre-provisioned enclaves.
//!
//! Run with `cargo run --example gateway_service`.

use glimmers::core::blinding::BlindingService;
use glimmers::core::channel::AttestedChannel;
use glimmers::core::enclave_app::MaskDelivery;
use glimmers::core::host::GlimmerDescriptor;
use glimmers::core::protocol::{
    BatchOutcome, Contribution, ContributionPayload, PrivateData, ProcessResponse,
};
use glimmers::core::remote::IotDeviceSession;
use glimmers::core::signing::ServiceKeyMaterial;
use glimmers::crypto::dh::DhGroup;
use glimmers::crypto::drbg::Drbg;
use glimmers::crypto::schnorr::SigningKey;
use glimmers::gateway::{Gateway, GatewayConfig, TenantConfig};
use glimmers::services::iot::IotTelemetryService;
use glimmers::sgx_sim::AttestationService;
use glimmers::workloads::gateway::{GatewayTrafficWorkload, TenantTrafficSpec};

const IOT: &str = "iot-telemetry.example";
const KEYBOARD: &str = "nextwordpredictive.com";
const IOT_DIM: usize = 8;
const KEYBOARD_DIM: usize = 16;

fn main() {
    let mut rng = Drbg::from_seed([51u8; 32]);
    let mut avs = AttestationService::new([52u8; 32]);
    let iot_material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let keyboard_material = ServiceKeyMaterial::generate(&mut rng).unwrap();

    // The gateway operator enrolls two tenants and pre-provisions a pool of
    // enclaves for each: image build, attestation, and key installation all
    // happen here, before any device connects.
    let gateway = Gateway::new(
        GatewayConfig {
            slots_per_tenant: 3,
            // Two shard workers split the six slots; the handle stays `&self`
            // either way, so serving code is identical at any shard count.
            shards: 2,
            max_batch: 64,
            ..GatewayConfig::default()
        },
        vec![
            TenantConfig::new(
                IOT,
                GlimmerDescriptor::iot_default(Vec::new()),
                iot_material.secret_bytes(),
            ),
            TenantConfig::new(
                KEYBOARD,
                GlimmerDescriptor::keyboard_range_only(),
                keyboard_material.secret_bytes(),
            ),
        ],
        &mut avs,
        &mut rng,
    )
    .expect("gateway start-up");
    println!("gateway up: tenants {:?}", gateway.tenant_names());

    // Mixed traffic: 10 IoT devices (some misbehaving) and 6 keyboard
    // clients, interleaved.
    let workload = GatewayTrafficWorkload::generate(
        &[
            TenantTrafficSpec {
                name: IOT.to_string(),
                devices: 10,
                requests_per_device: 2,
                dimension: IOT_DIM,
                misbehaving_fraction: 0.3,
            },
            TenantTrafficSpec {
                name: KEYBOARD.to_string(),
                devices: 6,
                requests_per_device: 2,
                dimension: KEYBOARD_DIM,
                misbehaving_fraction: 0.0,
            },
        ],
        [53u8; 32],
    );

    // Each tenant's blinding service establishes its own attested channel
    // to every pool slot, so masks can travel to the enclaves sealed — the
    // gateway operator relays ciphertext it cannot open.
    let tenant_channel_key = SigningKey::generate(DhGroup::default_group(), &mut rng).unwrap();
    let mut slot_channels: Vec<Vec<AttestedChannel>> = Vec::new();
    for tenant in [IOT, KEYBOARD] {
        let measurement = gateway.measurement(tenant).unwrap();
        let mut channels = Vec::new();
        for slot in 0..gateway.slot_count(tenant).unwrap() {
            let offer = gateway.tenant_channel_offer(tenant, slot).unwrap();
            let (accept, channel) =
                AttestedChannel::respond(&offer, &avs, &measurement, &tenant_channel_key, &mut rng)
                    .unwrap();
            gateway
                .complete_tenant_channel(tenant, slot, &accept)
                .unwrap();
            channels.push(channel);
        }
        slot_channels.push(channels);
    }

    // Devices connect: each verifies its tenant's published measurement
    // through attestation before trusting the pool, then its blinding masks
    // are sealed to the slot its session landed on.
    let blinding = BlindingService::new([54u8; 32]);
    let mut sessions: Vec<Vec<(u64, IotDeviceSession)>> = Vec::new();
    for (t, tenant) in workload.tenants.iter().enumerate() {
        let approved = gateway.measurement(&tenant.name).unwrap();
        let dimension = if t == 0 { IOT_DIM } else { KEYBOARD_DIM };
        let ids: Vec<u64> = tenant.devices.iter().map(|d| d.device_id).collect();
        let mask_rounds: Vec<_> = (0..2u64)
            .map(|round| blinding.zero_sum_masks(round, &ids, dimension))
            .collect();
        let mut tenant_sessions = Vec::new();
        for (i, _device) in tenant.devices.iter().enumerate() {
            let (sid, offer) = gateway.open_session(&tenant.name).unwrap();
            let (accept, session) =
                IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
            gateway.complete_session(sid, &accept).unwrap();
            let slot = gateway.session_slot(sid).unwrap();
            for round in &mask_rounds {
                let mut nonce = [0u8; 12];
                rng.fill_bytes(&mut nonce);
                let MaskDelivery::Encrypted { nonce, ciphertext } = MaskDelivery::encrypted(
                    &round[i],
                    &slot_channels[t][slot].keys.service_to_glimmer,
                    nonce,
                ) else {
                    unreachable!("encrypted delivery");
                };
                gateway
                    .install_mask_encrypted(sid, nonce, ciphertext)
                    .unwrap();
            }
            tenant_sessions.push((sid, session));
        }
        sessions.push(tenant_sessions);
    }

    // Replay the interleaved arrival schedule.
    for event in &workload.schedule {
        let device = &workload.tenants[event.tenant].devices[event.device];
        let (sid, session) = &mut sessions[event.tenant][event.device];
        let payload = if event.tenant == 0 {
            ContributionPayload::IotReadings {
                samples: device.requests[event.request].clone(),
            }
        } else {
            ContributionPayload::ModelUpdate {
                weights: device.requests[event.request].clone(),
            }
        };
        let contribution = Contribution {
            app_id: workload.tenants[event.tenant].name.clone(),
            client_id: device.device_id,
            round: event.request as u64,
            payload,
        };
        let request = session.encrypt_request(contribution, PrivateData::None);
        gateway.submit(*sid, request).unwrap();
    }

    // Serve: batched drains, one ECALL per non-empty slot per round.
    let responses = gateway.drain_all().unwrap();

    // Devices decrypt their replies and forward IoT endorsements to the
    // telemetry service (round 0 only, for a clean aggregate).
    let mut iot_service = IotTelemetryService::new(IOT, iot_material.verifier(), IOT_DIM);
    let iot_ids: Vec<u64> = workload.tenants[0]
        .devices
        .iter()
        .map(|d| d.device_id)
        .collect();
    let mut present: Vec<u64> = Vec::new();
    for response in &responses {
        let BatchOutcome::Reply { ciphertext, .. } = &response.outcome else {
            continue;
        };
        let Some((_, session)) = sessions
            .iter_mut()
            .flatten()
            .find(|(sid, _)| *sid == response.session_id)
        else {
            continue;
        };
        match session.decrypt_response(ciphertext).unwrap() {
            ProcessResponse::Endorsed(endorsed)
                if &*response.tenant == IOT && endorsed.round == 0 =>
            {
                iot_service.submit(&endorsed).unwrap();
                present.push(endorsed.client_id);
            }
            ProcessResponse::Endorsed(_) => {}
            ProcessResponse::Rejected { reason } => {
                println!("rejected ({}): {reason}", response.tenant);
            }
        }
    }
    if present.len() < iot_ids.len() {
        let correction = blinding.dropout_correction(0, &iot_ids, IOT_DIM, &present);
        iot_service.apply_dropout_correction(&correction).unwrap();
    }
    let summary = iot_service.finalize_round().unwrap();
    println!(
        "iot round 0: {} devices aggregated, mean of first 4 readings = {:?}",
        summary.devices,
        &summary.mean_readings[..4]
    );

    // The gateway's own view: admission, batching, and amortization numbers.
    let stats = gateway.stats();
    for (name, tenant) in &stats.tenants {
        println!(
            "tenant {name}: submitted={} endorsed={} rejected={} failed={} throttled={}",
            tenant.submitted, tenant.endorsed, tenant.rejected, tenant.failed, tenant.throttled
        );
    }
    for row in &stats.slots {
        println!(
            "slot {}/{}: batches={} items={} mean_batch={:.1} cycles/item={:.0}",
            row.tenant,
            row.slot,
            row.stats.batches,
            row.stats.items,
            row.stats.mean_batch(),
            row.stats.cycles_per_item()
        );
    }
}
