//! Quickstart: one user contribution through the full Glimmer pipeline.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The flow matches Figure 3 of the paper: the client trains a local model on
//! the user's (private) keyboard trace, the Glimmer enclave validates it
//! against the private trace, blinds it, signs it with the service-provided
//! key, and the service verifies the endorsement before aggregating.

use glimmers::core::blinding::BlindingService;
use glimmers::core::host::{GlimmerClient, GlimmerDescriptor};
use glimmers::core::protocol::{Contribution, ContributionPayload, PrivateData, ProcessResponse};
use glimmers::core::signing::ServiceKeyMaterial;
use glimmers::crypto::drbg::Drbg;
use glimmers::federated::trainer::train_local_model;
use glimmers::federated::{ModelSchema, Vocabulary};
use glimmers::sgx_sim::PlatformConfig;

fn main() {
    let mut rng = Drbg::from_seed([1u8; 32]);

    // 1. The service publishes a vocabulary/schema and generates its
    //    endorsement key pair.
    let vocab = Vocabulary::new(["i'm", "voting", "for", "donald", "trump", "don't", "like"]);
    let schema = ModelSchema::dense(
        vocab,
        &["i'm", "voting", "for", "donald", "trump", "don't", "like"],
    );
    let material = ServiceKeyMaterial::generate(&mut rng).expect("key generation");

    // 2. The user types; the client trains a local model on the private trace.
    let sentences = vec![
        schema.vocab().tokenize("I'm voting for Donald Trump"),
        schema.vocab().tokenize("don't like Donald Trump"),
    ];
    let (local_model, _) = train_local_model(&schema, &sentences).expect("training");

    // 3. The client instantiates the vetted Glimmer enclave and provisions it.
    let mut glimmer = GlimmerClient::new(
        GlimmerDescriptor::keyboard_default(),
        PlatformConfig::default(),
        &mut rng,
    )
    .expect("enclave creation");
    println!("Glimmer measurement: {}", glimmer.measurement());
    let sealed = glimmer
        .install_service_key(&material.secret_bytes())
        .expect("provisioning");
    println!("service key sealed to the Glimmer ({} bytes)", sealed.len());

    // 4. The blinding service issues this round's zero-sum mask.
    let masks = BlindingService::new([2u8; 32]).zero_sum_masks(0, &[0, 1, 2], schema.dimension());
    glimmer.install_mask(&masks[0]).expect("mask install");

    // 5. Validate + blind + sign inside the enclave.
    let contribution = Contribution {
        app_id: "nextwordpredictive.com".to_string(),
        client_id: 0,
        round: 0,
        payload: ContributionPayload::ModelUpdate {
            weights: local_model.weights.clone(),
        },
    };
    let response = glimmer
        .process(contribution, PrivateData::KeyboardLog { sentences })
        .expect("enclave call");

    // 6. The service verifies the endorsement.
    match response {
        ProcessResponse::Endorsed(endorsed) => {
            material
                .verifier()
                .verify(&endorsed)
                .expect("endorsement verification");
            println!(
                "endorsed contribution: round={} blinded={} payload={} bytes signature={} bytes",
                endorsed.round,
                endorsed.blinded,
                endorsed.released_payload.len(),
                endorsed.signature.len()
            );
            println!("enclave cost: {:?}", glimmer.cost_report());
        }
        ProcessResponse::Rejected { reason } => println!("rejected: {reason}"),
    }
}
