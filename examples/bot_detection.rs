//! Section 4.1: bot detection with validation confidentiality.
//!
//! Run with `cargo run --example bot_detection`.
//!
//! The web service ships an encrypted detector to the attested Glimmer; the
//! Glimmer inspects the private interaction signals locally and releases
//! exactly one audited bit per challenge.

use glimmers::core::host::{GlimmerClient, GlimmerDescriptor};
use glimmers::core::protocol::PrivateData;
use glimmers::core::validation::BotDetectorSpec;
use glimmers::crypto::dh::DhGroup;
use glimmers::crypto::drbg::Drbg;
use glimmers::crypto::schnorr::SigningKey;
use glimmers::services::botdetect::BotDetectionService;
use glimmers::sgx_sim::{AttestationService, PlatformConfig};
use glimmers::workloads::botsignals::{BotSignalWorkload, SessionKind};

fn main() {
    let mut rng = Drbg::from_seed([21u8; 32]);
    let mut avs = AttestationService::new([22u8; 32]);

    // Service setup: identity key, secret detector, approved Glimmer hash.
    let service_key = SigningKey::generate(DhGroup::default_group(), &mut rng).unwrap();
    let descriptor =
        GlimmerDescriptor::bot_detection_default(service_key.verifying_key().to_bytes(), 64);
    let approved = descriptor.measurement();
    let mut service = BotDetectionService::new(
        BotDetectorSpec::example(),
        service_key,
        approved,
        rng.fork("service"),
    );

    // Client setup: attested channel + encrypted predicate install.
    let mut client = GlimmerClient::new(descriptor, PlatformConfig::default(), &mut rng).unwrap();
    client.provision_platform(&mut avs);
    let offer = client.start_channel().unwrap();
    let (accept, mut session) = service.accept_channel(&offer, &avs).unwrap();
    client.complete_channel(&accept).unwrap();
    let encrypted = service.encrypted_detector(&session);
    client.install_encrypted_predicate(&encrypted).unwrap();
    println!("attested Glimmer: {}", session.glimmer_measurement());

    // A mix of human and bot sessions.
    let workload = BotSignalWorkload::generate(20, 0.4, [23u8; 32]);
    let mut correct = 0usize;
    let mut bytes_released = 0usize;
    for s in &workload.sessions {
        let challenge = service.issue_challenge(&mut session);
        let frame = client
            .confidential_check(
                challenge,
                PrivateData::BotSignals {
                    signals: s.signals.clone(),
                },
            )
            .unwrap();
        bytes_released += frame.wire_len();
        let human = service.accept_verdict(&mut session, &frame).unwrap();
        if human == (s.kind == SessionKind::Human) {
            correct += 1;
        }
    }
    println!(
        "sessions={} bots={} correct={} bytes released per session={} (vs ~{} bytes of raw private signals)",
        workload.sessions.len(),
        workload.bot_count(),
        correct,
        bytes_released / workload.sessions.len(),
        workload.total_private_bytes() / workload.sessions.len(),
    );
}
