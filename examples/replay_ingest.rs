//! Replay ingest end-to-end: generate a scenario file, load it with
//! parallel chunk readers, and feed the records through a sharded gateway
//! on the batched admission path with bounded in-flight backpressure.
//!
//! This is the E17 pipeline at demo scale: the same loader and driver
//! idioms, small enough to read in one sitting. Run with
//! `cargo run --example replay_ingest`.

use std::collections::BTreeMap;

use glimmers::core::blinding::BlindingService;
use glimmers::core::host::GlimmerDescriptor;
use glimmers::core::protocol::{BatchOutcome, Contribution, ContributionPayload, PrivateData};
use glimmers::core::remote::IotDeviceSession;
use glimmers::core::signing::ServiceKeyMaterial;
use glimmers::crypto::drbg::Drbg;
use glimmers::gateway::{Gateway, GatewayConfig, GatewayError, TenantConfig};
use glimmers::sgx_sim::AttestationService;
use glimmers::workloads::replay::{
    generate_scenario_file, load_chunks, payload_samples, replay_tenant_name, FileSource,
    ReplayRecord, ScenarioMix, ScenarioSpec, CHUNK_EXCESS,
};

const DIMENSION: usize = 8;
const READERS: usize = 4;

fn main() {
    // ---- 1. Generate: a compact line-format scenario on disk. ----
    let spec = ScenarioSpec {
        tenants: 2,
        devices_per_tenant: 8,
        records: 64,
        mix: ScenarioMix::AbuseBurst {
            abusive_fraction: 0.25,
            period: 16,
            burst_len: 4,
        },
        seed: 7,
    };
    let path = std::env::temp_dir().join(format!(
        "glimmer-example-replay-{}.scenario",
        std::process::id()
    ));
    let info = generate_scenario_file(&path, &spec).expect("write scenario");
    println!(
        "generated {} records ({} bytes) at {}",
        info.records,
        info.bytes,
        path.display()
    );

    // ---- 2. Load: parallel chunk readers, every record exactly once. ----
    let source = FileSource::open(&path).expect("open scenario");
    let loads = load_chunks(&source, READERS, CHUNK_EXCESS).expect("load scenario");
    drop(source);
    let _ = std::fs::remove_file(&path);
    let records: Vec<ReplayRecord> = loads
        .iter()
        .flat_map(|l| l.records.iter().copied())
        .collect();
    let parse_errors: u64 = loads.iter().map(|l| l.summary.parse_errors).sum();
    println!(
        "loaded {} records with {} readers ({} chunks, busiest owns {}), {} parse errors",
        records.len(),
        READERS,
        loads.len(),
        loads.iter().map(|l| l.summary.records).max().unwrap_or(0),
        parse_errors
    );

    // ---- 3. Provision: a gateway tenant per scenario tenant, a session
    // per device the scenario actually names, masks per round. ----
    let mut rng = Drbg::from_seed([77u8; 32]);
    let mut avs = AttestationService::new([78u8; 32]);
    let mut rounds_per_device: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); 2];
    for r in &records {
        *rounds_per_device[r.tenant as usize]
            .entry(r.device)
            .or_insert(0) += 1;
    }
    let tenants: Vec<TenantConfig> = (0..spec.tenants)
        .map(|t| {
            let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
            TenantConfig::new(
                replay_tenant_name(t),
                GlimmerDescriptor::iot_default(Vec::new()),
                material.secret_bytes(),
            )
        })
        .collect();
    let gateway = Gateway::new(
        GatewayConfig {
            slots_per_tenant: 2,
            shards: 2,
            max_batch: 64,
            ..GatewayConfig::default()
        },
        tenants,
        &mut avs,
        &mut rng,
    )
    .expect("gateway start-up");
    let telemetry = gateway.telemetry_handle();
    telemetry.record_ingest_parsed(records.len() as u64);
    telemetry.record_ingest_parse_errors(parse_errors);

    // session + device round-counter per (tenant, device id).
    let mut sessions: Vec<BTreeMap<u64, (u64, IotDeviceSession, u64)>> =
        (0..2).map(|_| BTreeMap::new()).collect();
    for t in 0..spec.tenants {
        let name = replay_tenant_name(t);
        let approved = gateway.measurement(&name).unwrap();
        let device_ids: Vec<u64> = rounds_per_device[t as usize].keys().copied().collect();
        if device_ids.is_empty() {
            continue;
        }
        let max_rounds = *rounds_per_device[t as usize].values().max().unwrap();
        let blinding = BlindingService::new([80 + t as u8; 32]);
        let mask_rounds: Vec<_> = (0..max_rounds)
            .map(|round| blinding.zero_sum_masks(round, &device_ids, DIMENSION))
            .collect();
        for (i, device_id) in device_ids.iter().enumerate() {
            let (sid, offer) = gateway.open_session(&name).unwrap();
            let (accept, session) =
                IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
            gateway.complete_session(sid, &accept).unwrap();
            for round in &mask_rounds {
                gateway.install_mask(sid, &round[i]).unwrap();
            }
            sessions[t as usize].insert(*device_id, (sid, session, 0));
        }
    }
    println!(
        "provisioned {} sessions across {} tenants on {} shards",
        sessions.iter().map(BTreeMap::len).sum::<usize>(),
        spec.tenants,
        gateway.shard_count()
    );

    // ---- 4. Ingest: windows grouped per shard, bounded in-flight. ----
    let window = 16usize;
    let max_in_flight = 32usize;
    let mut samples = Vec::new();
    let mut shard_groups: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); gateway.shard_count()];
    let mut in_flight = 0usize;
    let mut responses = Vec::new();
    let mut quota_rejected = 0u64;
    for chunk in records.chunks(window) {
        if in_flight + chunk.len() > max_in_flight {
            responses.extend(gateway.drain_all().unwrap());
            in_flight = 0;
        }
        for record in chunk {
            let (sid, session, next_round) = sessions[record.tenant as usize]
                .get_mut(&record.device)
                .expect("session provisioned");
            payload_samples(record.seed, DIMENSION, &mut samples);
            let contribution = Contribution {
                app_id: replay_tenant_name(record.tenant),
                client_id: record.device,
                round: *next_round,
                payload: ContributionPayload::IotReadings {
                    samples: samples.clone(),
                },
            };
            *next_round += 1;
            let ciphertext = session.encrypt_request(contribution, PrivateData::None);
            let shard = gateway.session_shard(*sid).unwrap();
            shard_groups[shard].push((*sid, ciphertext));
        }
        for group in &mut shard_groups {
            if group.is_empty() {
                continue;
            }
            let count = group.len();
            match gateway.submit_batch(std::mem::take(group)) {
                Ok(()) => in_flight += count,
                // Quota rejections are counted, never silently dropped.
                Err(GatewayError::QuotaExceeded { .. } | GatewayError::Backpressure { .. }) => {
                    quota_rejected += count as u64;
                    telemetry.record_ingest_quota_rejected(count as u64);
                }
                Err(e) => panic!("ingest failed: {e}"),
            }
        }
    }
    responses.extend(gateway.drain_all().unwrap());

    // ---- 5. Report: outcomes plus the telemetry ingest counters. ----
    let endorsed = responses
        .iter()
        .filter(|r| matches!(r.outcome, BatchOutcome::Reply { endorsed: true, .. }))
        .count();
    println!(
        "replayed {} records: {} endorsed, {} rejected-or-failed, {} quota-rejected",
        records.len(),
        endorsed,
        responses.len() - endorsed,
        quota_rejected
    );
    let snapshot = gateway.telemetry();
    println!(
        "telemetry ingest counters: parsed={} parse_errors={} quota_rejected={}",
        snapshot.ingest_parsed, snapshot.ingest_parse_errors, snapshot.ingest_quota_rejected
    );
}
