//! The real front door: the multi-tenant gateway served over loopback TCP,
//! with devices running the full attested lifecycle as network clients.
//!
//! `gateway_service` drives the pool in-process; this example puts the
//! socket layer in between. `net::serve` binds a listener and runs the
//! whole edge — epoll reactor, frame codec, timer wheel — on ONE
//! front-door thread, while each device talks framed `glimmer_wire`
//! messages over its own `TcpStream` via `GatewayClient`. The trust
//! boundary is unchanged: the front door relays sealed bytes it cannot
//! open, and a connection may only operate on sessions it opened itself.
//!
//! Run with `cargo run --example socket_service`.

use glimmers::core::blinding::BlindingService;
use glimmers::core::host::GlimmerDescriptor;
use glimmers::core::protocol::{
    BatchOutcome, Contribution, ContributionPayload, PrivateData, ProcessResponse,
};
use glimmers::core::remote::IotDeviceSession;
use glimmers::core::signing::ServiceKeyMaterial;
use glimmers::crypto::drbg::Drbg;
use glimmers::gateway::frontend::AsyncGateway;
use glimmers::gateway::net::{self, GatewayClient};
use glimmers::gateway::{Gateway, GatewayConfig, TenantConfig};
use glimmers::sgx_sim::AttestationService;
use std::sync::Arc;
use std::time::Duration;

const APP: &str = "iot-telemetry.example";
const DIM: usize = 8;
const DEVICES: usize = 4;
const ROUNDS: u64 = 2;

fn main() {
    if !net::supported() {
        println!("socket front door unsupported on this target; nothing to demo");
        return;
    }

    let mut rng = Drbg::from_seed([71u8; 32]);
    let mut avs = AttestationService::new([72u8; 32]);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();

    // Operator side: provision the pool, then hand the gateway to the
    // front door. `serve` binds the configured address (port 0 → ephemeral)
    // and spawns the single serving thread.
    let gateway = Arc::new(
        Gateway::new(
            GatewayConfig {
                slots_per_tenant: 2,
                max_batch: 32,
                ..GatewayConfig::default()
            },
            vec![TenantConfig::new(
                APP,
                GlimmerDescriptor::iot_default(Vec::new()),
                material.secret_bytes(),
            )],
            &mut avs,
            &mut rng,
        )
        .expect("gateway start-up"),
    );
    let approved = gateway.measurement(APP).unwrap();
    let server = net::serve(AsyncGateway::from_arc(Arc::clone(&gateway)), None)
        .expect("front door start-up");
    println!("front door listening on {}", server.addr());

    // Device side: every device is a real TCP client. The attestation
    // handshake rides the socket — the offer and accept are opaque to the
    // front door, which never sees a channel key.
    let device_ids: Vec<u64> = (0..DEVICES as u64).map(|d| 100 + d).collect();
    let blinding = BlindingService::new([73u8; 32]);
    let mut devices: Vec<(GatewayClient, u64, IotDeviceSession)> = Vec::new();
    for i in 0..DEVICES {
        let mut client = GatewayClient::connect(server.addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let (sid, offer) = client.open_session(APP).unwrap();
        let (accept, session) = IotDeviceSession::connect(&offer, &avs, &approved, &mut rng)
            .expect("attested handshake over the socket");
        client.complete_session(sid, &accept).unwrap();
        for round in 0..ROUNDS {
            let masks = blinding.zero_sum_masks(round, &device_ids, DIM);
            client.install_mask(sid, &masks[i]).unwrap();
        }
        devices.push((client, sid, session));
    }
    println!(
        "{} devices connected, {} sessions live behind one front-door thread",
        DEVICES,
        gateway.live_sessions()
    );

    // Contributions: each device seals its readings to its own session key
    // and submits both rounds over its connection in one framed batch.
    for (i, (client, sid, session)) in devices.iter_mut().enumerate() {
        let requests: Vec<Vec<u8>> = (0..ROUNDS)
            .map(|round| {
                let contribution = Contribution {
                    app_id: APP.to_string(),
                    client_id: device_ids[i],
                    round,
                    payload: ContributionPayload::IotReadings {
                        samples: vec![0.1 + 0.2 * i as f64; DIM],
                    },
                };
                session.encrypt_request(contribution, PrivateData::None)
            })
            .collect();
        client.submit_many(*sid, requests).unwrap();
    }

    // One drain call batches every pending request into the enclaves and
    // pushes each reply back down the connection that owns its session.
    let routed = devices[0].0.drain().unwrap();
    println!("drain routed {routed} replies to their connections");

    // Each device reads its replies off its own socket and decrypts them
    // with its session key — proof the reply crossed no session boundary.
    let mut endorsed = 0usize;
    for (client, sid, session) in &mut devices {
        for _ in 0..ROUNDS {
            let envelope = client.next_reply().unwrap();
            assert_eq!(envelope.session_id, *sid);
            let BatchOutcome::Reply { ciphertext, .. } = &envelope.outcome else {
                panic!("expected a sealed reply");
            };
            match session.decrypt_response(ciphertext).unwrap() {
                ProcessResponse::Endorsed(e) => {
                    endorsed += 1;
                    println!(
                        "device {} round {}: endorsed (drain_seq {})",
                        e.client_id, e.round, envelope.drain_seq
                    );
                }
                ProcessResponse::Rejected { reason } => {
                    println!("device reply rejected: {reason}");
                }
            }
        }
    }
    println!("{endorsed} endorsements delivered over TCP");

    // Orderly teardown: close the device sessions, stop the front door
    // (the reactor thread parks in epoll until the doorbell rings), then
    // shut the pool down.
    for (client, sid, _) in &mut devices {
        client.close_session(*sid).unwrap();
    }
    drop(devices);
    server.stop();
    Arc::try_unwrap(gateway)
        .expect("front door released its handle")
        .shutdown()
        .expect("orderly pool shutdown");
    println!("front door stopped, pool shut down");
}
