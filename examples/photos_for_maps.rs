//! The photos-for-maps scenario: public contributions validated against
//! private location history and camera identity.
//!
//! Run with `cargo run --example photos_for_maps`.

use glimmers::core::host::{GlimmerClient, GlimmerDescriptor};
use glimmers::core::protocol::{Contribution, ContributionPayload, PrivateData, ProcessResponse};
use glimmers::core::signing::ServiceKeyMaterial;
use glimmers::crypto::drbg::Drbg;
use glimmers::services::maps::MapsService;
use glimmers::sgx_sim::PlatformConfig;
use glimmers::workloads::photos::{PhotoKind, PhotoWorkload};

fn main() {
    let mut rng = Drbg::from_seed([31u8; 32]);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let workload = PhotoWorkload::generate(20, 0.4, [32u8; 32]);
    let mut service = MapsService::new("crowdmaps.example", material.verifier());

    let mut glimmer_rejections = 0usize;
    for photo in &workload.contributions {
        let mut glimmer = GlimmerClient::new(
            GlimmerDescriptor::maps_default(workload.registered_camera),
            PlatformConfig::default(),
            &mut rng,
        )
        .unwrap();
        glimmer
            .install_service_key(&material.secret_bytes())
            .unwrap();
        let contribution = Contribution {
            app_id: "crowdmaps.example".to_string(),
            client_id: photo.client_id,
            round: 0,
            payload: ContributionPayload::Photo {
                photo_hash: photo.photo_hash,
                claimed_lat: photo.claimed_lat,
                claimed_lon: photo.claimed_lon,
            },
        };
        let private = PrivateData::GpsTrack {
            points: photo.gps_track.clone(),
            camera_fingerprint: photo.camera_fingerprint,
        };
        match glimmer.process(contribution, private).unwrap() {
            ProcessResponse::Endorsed(endorsed) => {
                service
                    .submit(&endorsed)
                    .expect("service accepts endorsed photos");
            }
            ProcessResponse::Rejected { reason } => {
                glimmer_rejections += 1;
                if photo.kind != PhotoKind::Honest {
                    println!("cheater ({:?}) rejected locally: {reason}", photo.kind);
                }
            }
        }
    }
    println!(
        "contributions={} honest={} accepted by service={} rejected by Glimmer={}",
        workload.contributions.len(),
        workload.honest_count(),
        service.photos().len(),
        glimmer_rejections
    );
    println!("map coverage cells: {}", service.coverage().len());
}
