//! An offline, API-compatible stand-in for the subset of the `criterion`
//! benchmarking crate this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! Criterion cannot be vendored. This shim keeps the same programming model
//! (`criterion_group!` / `criterion_main!`, benchmark groups, `Bencher::iter`,
//! throughput annotations) and performs honest wall-clock measurement: each
//! benchmark is warmed up for `warm_up_time`, then timed over `sample_size`
//! samples whose iteration counts are sized to fill `measurement_time`.
//! Results are printed as mean / min / max nanoseconds per iteration (plus
//! throughput when configured), so `cargo bench` output remains comparable
//! run-to-run even though the statistical machinery of real Criterion
//! (outlier classification, regression detection) is absent.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// A benchmark identifier composed of a function name and a parameter label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id such as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        if self.parameter.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, self.parameter)
        }
    }
}

/// Conversion into a printable benchmark id (so `bench_function` accepts both
/// string literals and [`BenchmarkId`]s, as real Criterion does).
pub trait IntoBenchmarkId {
    /// The rendered `group/name` label.
    fn into_id_string(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id_string(self) -> String {
        self.render()
    }
}

impl IntoBenchmarkId for &str {
    fn into_id_string(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id_string(self) -> String {
        self
    }
}

/// The measurement configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    significance_level: f64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            significance_level: 0.05,
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the measurement phase of one benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration before measurement starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API compatibility; the shim performs no significance
    /// testing.
    #[must_use]
    pub fn significance_level(mut self, sl: f64) -> Self {
        self.significance_level = sl;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_id_string();
        run_benchmark(self, &label, None, &mut f);
        self
    }
}

/// A named group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id_string());
        run_benchmark(self.criterion, &label, self.throughput, &mut f);
        self
    }

    /// Benchmarks `f` with an input value under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.render());
        run_benchmark(self.criterion, &label, self.throughput, &mut |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (drop would do; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` performs the timed loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(config: &Criterion, label: &str, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run single iterations until the warm-up budget is spent, and
    // estimate the per-iteration cost as we go.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut warm_elapsed = Duration::ZERO;
    while warm_start.elapsed() < config.warm_up_time || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_elapsed += b.elapsed;
        warm_iters += b.iters;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    let est_per_iter = warm_elapsed
        .checked_div(warm_iters as u32)
        .unwrap_or(Duration::from_nanos(1))
        .max(Duration::from_nanos(1));

    // Size each sample so all samples together roughly fill measurement_time.
    let per_sample = config.measurement_time / config.sample_size as u32;
    let iters_per_sample = (per_sample.as_nanos() / est_per_iter.as_nanos().max(1)).max(1) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let min = samples_ns.first().copied().unwrap_or(0.0);
    let max = samples_ns.last().copied().unwrap_or(0.0);

    let mut line = format!(
        "{label:<56} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
    if let Some(tp) = throughput {
        let per_second = 1e9 / mean;
        match tp {
            Throughput::Bytes(bytes) => {
                let bps = bytes as f64 * per_second;
                line.push_str(&format!(" thrpt: {}/s", format_bytes(bps)));
            }
            Throughput::Elements(elems) => {
                let eps = elems as f64 * per_second;
                line.push_str(&format!(" thrpt: {eps:.0} elem/s"));
            }
        }
    }
    println!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} us", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

fn format_bytes(bps: f64) -> String {
    if bps >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2} GiB", bps / (1024.0 * 1024.0 * 1024.0))
    } else if bps >= 1024.0 * 1024.0 {
        format!("{:.2} MiB", bps / (1024.0 * 1024.0))
    } else if bps >= 1024.0 {
        format!("{:.2} KiB", bps / 1024.0)
    } else {
        format!("{bps:.0} B")
    }
}

/// Declares a benchmark group runner, mirroring Criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(8));
        let mut count = 0u64;
        group.bench_function("counter", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn formatting_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("us"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(2e9).contains(" s"));
        assert!(format_bytes(10.0).contains('B'));
        assert!(format_bytes(10_000.0).contains("KiB"));
        assert!(format_bytes(2e7).contains("MiB"));
        assert!(format_bytes(2e10).contains("GiB"));
    }
}
