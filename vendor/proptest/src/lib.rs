//! An offline, API-compatible stand-in for the subset of the `proptest`
//! property-testing crate this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! proptest cannot be vendored. This shim keeps the same programming model —
//! the `proptest!` macro over `pattern in strategy` arguments, `any::<T>()`,
//! range and collection strategies, `prop_map`, `prop_oneof!`, and the
//! `prop_assert*` / `prop_assume!` macros — driven by a deterministic
//! splitmix64 generator seeded from the test name and case index. It runs
//! `ProptestConfig::cases` generated inputs per property. It does **not**
//! implement shrinking: a failing case panics with the assertion message, and
//! the deterministic seeding makes the failure reproducible.

// Let code inside this crate (the inline tests below) refer to the crate by
// its public name, exactly as downstream users do.
extern crate self as proptest;

pub mod test_runner {
    //! Configuration and the deterministic random source.

    /// Mirror of `proptest::test_runner::Config` (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful (non-rejected) cases required per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// Creates a config that runs `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Marker returned (via `Err`) when `prop_assume!` rejects a case.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// Deterministic splitmix64 generator.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name and case index, so every
        /// property sees a reproducible but distinct stream per case.
        #[must_use]
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut seed: u64 = 0x9E37_79B9_7F4A_7C15 ^ case.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            for b in test_name.bytes() {
                seed = seed.rotate_left(7) ^ u64::from(b);
                seed = seed.wrapping_mul(0x2545_F491_4F6C_DD1D);
            }
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Next 128 random bits.
        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Fills a byte slice.
        pub fn fill_bytes(&mut self, out: &mut [u8]) {
            for chunk in out.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| {
                self.generate(rng)
            }))
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among boxed strategies (backs `prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Creates the union; panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! unsigned_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u128() % span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u128 + 1;
                    start + (rng.next_u128() % span) as $t
                }
            }

            impl Strategy for core::ops::RangeFrom<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    // Rejection sampling: the start is almost always tiny
                    // relative to the type's range, so this terminates fast.
                    loop {
                        let v = (rng.next_u128() & (<$t>::MAX as u128)) as $t;
                        if v >= self.start {
                            return v;
                        }
                    }
                }
            }
        )*};
    }

    unsigned_range_strategies!(u8, u16, u32, u64, u128, usize);

    macro_rules! signed_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u128() % span) as i128) as $t
                }
            }
        )*};
    }

    signed_range_strategies!(i8, i16, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// String-literal strategies: a small regex subset of the form
    /// `[class]{min,max}` or `[class]{len}`, where the class may contain
    /// literal characters and `a-z`-style ranges.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
            let len = if max > min {
                min + rng.below((max - min + 1) as u64) as usize
            } else {
                min
            };
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let counts = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .to_string();
        let (min, max) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
            None => {
                let n = counts.parse().ok()?;
                (n, n)
            }
        };
        Some((alphabet, min, max))
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Strategy generating arbitrary values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    (rng.next_u128() & (<$t>::MAX as u128)) as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, u128, usize);

    macro_rules! signed_arbitrary {
        ($($t:ty : $u:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    <$u as Arbitrary>::arbitrary(rng) as $t
                }
            }
        )*};
    }

    signed_arbitrary!(i8: u8, i16: u16, i32: u32, i64: u64, i128: u128, isize: usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-bearing values across a wide magnitude range.
            // (Real proptest's default f64 strategy also excludes NaN, which
            // would break round-trip equality assertions.)
            let mantissa = (rng.next_u64() as i64) as f64;
            let scale = [1e-12, 1e-6, 1e-3, 1.0, 1e3, 1e6][rng.below(6) as usize];
            mantissa * scale
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.below(0x7F).max(0x20) as u32).unwrap_or('a')
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            rng.fill_bytes(&mut out);
            out
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_inclusive - self.size.min + 1;
            let len = self.size.min + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests over generated inputs.
///
/// Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut executed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while executed < config.cases {
                    let mut __proptest_rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    case += 1;
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &$strat,
                            &mut __proptest_rng,
                        );
                    )+
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::core::result::Result<(), $crate::test_runner::Rejected> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => executed += 1,
                        Err($crate::test_runner::Rejected) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(64).saturating_add(1024),
                                "too many cases rejected by prop_assume! in {}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics with the case's message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Rejects the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn string_pattern_generation() {
        let mut rng = crate::test_runner::TestRng::for_case("s", 0);
        for _ in 0..64 {
            let s = Strategy::generate(&"[a-z.]{1,20}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 20);
            assert!(s.chars().all(|c| c == '.' || c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(
            a in 3u64..17,
            b in 0usize..5,
            f in -2.0f64..2.0,
            bytes in proptest::collection::vec(any::<u8>(), 1..9),
            s in "[A-C]{2,4}",
            arr in any::<[u8; 12]>(),
        ) {
            prop_assume!(a != 16);
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(!bytes.is_empty() && bytes.len() < 9);
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert_eq!(arr.len(), 12);
            prop_assert_ne!(a, 16);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..4).prop_map(|x| x * 2),
            (10u32..14).prop_map(|x| x * 3),
        ]) {
            prop_assert!(v % 2 == 0 || v % 3 == 0);
        }
    }
}
